#!/usr/bin/env python
"""A multi-threaded I/O server: the motivating workload for threads.

One thread per client request; each request does some computation,
then an asynchronous disk read that blocks *only its thread* (the
library turns blocking I/O into SIGIO completions demultiplexed to the
requesting thread, delivery-model rule 4).  A single-threaded serial
baseline runs the same work for comparison -- the latency-hiding win
is exactly why the paper's intro positions threads as "a simple but
powerful model for exploiting parallelism".

    python examples/io_server.py
"""

from repro import PthreadsRuntime, ThreadAttr

REQUESTS = 8
COMPUTE_US = 400.0
DISK_LATENCY_US = 900.0


def handle_request(pt, request_id, stats):
    world = pt.runtime.world
    start = world.now
    yield pt.work_us(COMPUTE_US / 2)
    err, nbytes = yield pt.read(fd=3, nbytes=4096)
    assert err == 0 and nbytes == 4096
    yield pt.work_us(COMPUTE_US / 2)
    stats.append(world.us(world.now - start))


def threaded_server(pt):
    stats = []
    threads = []
    for i in range(REQUESTS):
        threads.append(
            (
                yield pt.create(
                    handle_request, i, stats,
                    attr=ThreadAttr(priority=50), name="req-%d" % i,
                )
            )
        )
    for t in threads:
        yield pt.join(t)
    return stats


def serial_server(pt):
    stats = []
    for i in range(REQUESTS):
        yield pt.call(handle_request, i, stats)
    return stats


def run(server_body, label):
    rt = PthreadsRuntime(model="sparc-ipx")
    rt.add_io_device("disk0", latency_us=DISK_LATENCY_US)
    box = {}

    def main(pt):
        box["stats"] = yield pt.call(server_body)

    rt.main(main, priority=60)
    rt.run()
    total = rt.world.now_us
    print(
        "%-10s total %8.0f us  (mean per-request latency %6.0f us, "
        "%d switches)"
        % (
            label,
            total,
            sum(box["stats"]) / len(box["stats"]),
            rt.dispatcher.context_switches,
        )
    )
    return total


if __name__ == "__main__":
    print(
        "%d requests, %.0f us compute + %.0f us disk each\n"
        % (REQUESTS, COMPUTE_US, DISK_LATENCY_US)
    )
    serial = run(serial_server, "serial")
    threaded = run(threaded_server, "threaded")
    print(
        "\nthreads overlap disk latency with computation: %.1fx speedup"
        % (serial / threaded)
    )
