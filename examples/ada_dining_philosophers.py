#!/usr/bin/env python
"""Dining philosophers in the Ada tasking layer.

Five philosopher tasks rendezvous with a waiter task whose *guarded
selective wait* only offers a "pickup" entry while both of that
philosopher's forks are free -- the classic deadlock-free Ada
formulation, exercising tasks, entry families, selective wait, and
delays on top of the Pthreads library.

    python examples/ada_dining_philosophers.py
"""

import sys

sys.path.insert(0, ".")

from repro.ada import AdaRuntime

N = 5
MEALS = 3


def waiter(ada, log):
    """Grants fork pairs through guarded accepts."""
    forks = [True] * N
    finished = [0]

    def pickup_handler(seat):
        def handler(pt):
            forks[seat] = forks[(seat + 1) % N] = False
            log.append(("eat", seat))
            yield pt.work(10)

        return handler

    def putdown_handler(pt, seat):
        forks[seat] = forks[(seat + 1) % N] = True
        yield pt.work(10)

    def done_handler(pt, seat):
        finished[0] += 1
        yield pt.work(1)

    while finished[0] < N:
        accepts = {"putdown": putdown_handler, "done": done_handler}
        for seat in range(N):
            if forks[seat] and forks[(seat + 1) % N]:
                # The guard: offer pickup only when both forks free.
                accepts["pickup%d" % seat] = pickup_handler(seat)
        yield ada.select(accepts)
    return "waiter-done"


def philosopher(ada, waiter_task, seat, log):
    for _meal in range(MEALS):
        yield ada.delay(0.0005)  # think
        yield ada.entry_call(waiter_task, "pickup%d" % seat)
        yield ada.delay(0.0008)  # eat
        yield ada.entry_call(waiter_task, "putdown", seat)
    yield ada.entry_call(waiter_task, "done", seat)
    return "phil-%d" % seat


def env(ada):
    log = []
    w = yield ada.spawn(waiter, log, name="waiter", priority=70)
    for seat in range(N):
        yield ada.spawn(
            philosopher, w, seat, log, name="phil-%d" % seat, priority=50
        )
    yield ada.await_dependents()
    meals = [0] * N
    for kind, seat in log:
        if kind == "eat":
            meals[seat] += 1
    print("meals per philosopher:", meals)
    assert meals == [MEALS] * N


if __name__ == "__main__":
    art = AdaRuntime(model="sparc-ipx")
    art.main_task(env)
    art.run()
    print(
        "completed in %.1f simulated us with %d context switches"
        % (art.world.now_us, art.rt.dispatcher.context_switches)
    )
