#!/usr/bin/env python
"""Quickstart: threads, a mutex, a condition variable, a join.

Thread bodies are Python generators receiving a ``pt`` facade; every
``yield`` executes one operation on the simulated machine.  Run:

    python examples/quickstart.py
"""

from repro import PthreadsRuntime, ThreadAttr


def worker(pt, m, cv, inbox, results, worker_id):
    """Consume numbers from the inbox until a None arrives."""
    while True:
        yield pt.mutex_lock(m)
        while not inbox:
            yield pt.cond_wait(cv, m)
        item = inbox.pop(0)
        yield pt.mutex_unlock(m)
        if item is None:
            return "worker-%d done" % worker_id
        yield pt.work(1_000)  # simulate real computation
        results.append((worker_id, item * item))


def main(pt):
    m = yield pt.mutex_init()
    cv = yield pt.cond_init()
    inbox, results = [], []

    workers = []
    for i in range(3):
        t = yield pt.create(
            worker, m, cv, inbox, results, i,
            attr=ThreadAttr(priority=50), name="worker-%d" % i,
        )
        workers.append(t)

    # Feed work, then one poison pill per worker.
    for item in list(range(9)) + [None] * 3:
        yield pt.mutex_lock(m)
        inbox.append(item)
        yield pt.cond_signal(cv)
        yield pt.mutex_unlock(m)
        yield pt.delay_us(200)

    for t in workers:
        err, value = yield pt.join(t)
        print("joined:", value)

    print("results:", sorted(results))


if __name__ == "__main__":
    rt = PthreadsRuntime(model="sparc-ipx")
    rt.main(main, priority=60)
    rt.run()
    print(
        "simulated time: %.1f us, context switches: %d"
        % (rt.world.now_us, rt.dispatcher.context_switches)
    )
