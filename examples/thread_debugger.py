#!/usr/bin/env python
"""The threads-aware debugger the paper's Future Work sketches.

"Information could be extracted from the thread control block and made
available to the user.  Context switches could become visible to the
user."  This example runs a small workload with tracing on, then shows:

- the per-thread state table (Inspector);
- the context-switch log;
- the execution timeline (who held the CPU when).

    python examples/thread_debugger.py
"""

from repro import Inspector, PthreadsRuntime, ThreadAttr, Timeline, Tracer


def sleeper(pt):
    yield pt.delay_us(4_000)
    return "slept"


def cruncher(pt, m):
    for _ in range(3):
        yield pt.mutex_lock(m)
        yield pt.work(20_000)
        yield pt.mutex_unlock(m)
    return "crunched"


def blocked_forever(pt, m_held):
    yield pt.mutex_lock(m_held)  # never succeeds during the snapshot
    yield pt.mutex_unlock(m_held)


def main(pt):
    m = yield pt.mutex_init()
    m_held = yield pt.mutex_init()
    yield pt.mutex_lock(m_held)

    threads = [
        (yield pt.create(sleeper, name="sleeper",
                         attr=ThreadAttr(priority=40))),
        (yield pt.create(cruncher, m, name="cruncher",
                         attr=ThreadAttr(priority=55))),
        (yield pt.create(blocked_forever, m_held, name="blocked",
                         attr=ThreadAttr(priority=45))),
    ]
    yield pt.delay_us(2_500)

    # --- the debugger's snapshot, mid-run -------------------------------
    rt = pt.runtime
    print("thread table at t=%.1f us:" % rt.world.now_us)
    print(Inspector(rt).render())
    print()

    yield pt.mutex_unlock(m_held)
    for t in threads:
        err, value = yield pt.join(t)


if __name__ == "__main__":
    tracer = Tracer()
    rt = PthreadsRuntime(model="sparc-ipx", trace=tracer)
    rt.main(main, priority=60)
    rt.run()

    print("context switches (the paper's 'visible to the user'):")
    for record in tracer.of_kind("dispatch")[:12]:
        print(
            "  @%8d cycles  ->  %s"
            % (record.time, record["thread"])
        )
    print("  ... (%d dispatches total)" % len(tracer.of_kind("dispatch")))
    print()
    print("execution timeline:")
    print(Timeline(tracer, end_time=rt.world.now).render(us_per_cycle=0.025))
