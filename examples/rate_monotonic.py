#!/usr/bin/env python
"""Rate-monotonic periodic tasks with a ceiling-protected resource.

The paper targets "real-time system environments": priority-driven
preemptive scheduling plus the ceiling protocol exist so periodic tasks
can share a resource with bounded blocking.  Three periodic threads
(shorter period = higher priority, the rate-monotonic assignment) log
samples into a shared buffer guarded by a priority-ceiling mutex; the
run reports per-task deadline behaviour with the protocol on and off.

    python examples/rate_monotonic.py
"""

from repro import MutexAttr, PthreadsRuntime, RuntimeConfig, ThreadAttr
from repro.core import config as cfg

#: (name, period_us, work_us, priority, uses_buffer).  Priorities are
#: rate-monotonic; the medium task is a pure compute hog that never
#: touches the shared buffer -- it exists to preempt the slow task
#: inside its critical section, the Figure 5 inversion shape.
TASKS = [
    ("fast", 2_000.0, 400.0, 90, True),
    ("medium", 5_000.0, 1_500.0, 60, False),
    ("slow", 11_000.0, 2_400.0, 30, True),
]
CYCLES = 8  # releases per task


def periodic(pt, name, period_us, work_us, mutex, stats, uses_buffer):
    world = pt.runtime.world
    release = world.now_us
    for _job in range(CYCLES):
        if uses_buffer:
            # Half the work is in a critical section on the buffer.
            yield pt.work_us(work_us / 2)
            yield pt.mutex_lock(mutex)
            yield pt.work_us(work_us / 2)
            yield pt.mutex_unlock(mutex)
        else:
            yield pt.work_us(work_us)
        finish = world.now_us
        response = finish - release
        stats.setdefault(name, []).append(response)
        release += period_us
        sleep_for = release - world.now_us
        if sleep_for > 0:
            yield pt.delay_us(sleep_for)


def run(protocol):
    rt = PthreadsRuntime(
        model="sparc-ipx",
        config=RuntimeConfig(timeslice_us=None, pool_size=8),
    )
    stats = {}

    def main(pt):
        mutex = yield pt.mutex_init(
            MutexAttr(protocol=protocol, prioceiling=95)
        )
        threads = []
        for name, period, work, prio, uses_buffer in TASKS:
            threads.append(
                (
                    yield pt.create(
                        periodic, name, period, work, mutex, stats,
                        uses_buffer,
                        attr=ThreadAttr(priority=prio), name=name,
                    )
                )
            )
        for t in threads:
            yield pt.join(t)

    rt.main(main, priority=100)
    rt.run()
    return stats


def report(protocol, stats):
    print("protocol = %s" % protocol)
    for name, period, work, prio, _uses in TASKS:
        responses = stats[name]
        worst = max(responses)
        misses = sum(1 for r in responses if r > period)
        print(
            "  %-7s period %7.0f us  worst response %8.0f us  "
            "deadline misses %d/%d"
            % (name, period, worst, misses, len(responses))
        )
    print()


if __name__ == "__main__":
    for protocol in (cfg.PRIO_NONE, cfg.PRIO_PROTECT):
        report(protocol, run(protocol))
    print(
        "Without a protocol, the medium hog preempts the slow task\n"
        "inside its critical section, stretching the fast task's worst\n"
        "response far past its period (the Figure 5 inversion).  With\n"
        "the ceiling protocol the blocking is bounded by one critical\n"
        "section -- the paper's 'tighter' bound -- and the worst\n"
        "response drops accordingly."
    )
