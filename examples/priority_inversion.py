#!/usr/bin/env python
"""Figure 5: priority inversion under three mutex protocols.

Renders the paper's three timelines -- (a) no protocol, (b) priority
inheritance, (c) priority ceiling -- as ASCII charts, plus the latency
P3 (the high-priority thread) suffers before acquiring the mutex.

    python examples/priority_inversion.py
"""

import sys

sys.path.insert(0, ".")  # run from the repository root

from benchmarks.test_figure5_inversion import render_figure5, run_figure5
from repro.core import config as cfg


def main():
    print(render_figure5())
    print()
    print("P3's mutex-acquisition latency (simulated microseconds):")
    for label, protocol in (
        ("no protocol       ", cfg.PRIO_NONE),
        ("priority inheritance", cfg.PRIO_INHERIT),
        ("priority ceiling   ", cfg.PRIO_PROTECT),
    ):
        events, _, rt = run_figure5(protocol)
        latency = rt.world.us(events["p3-locked"] - events["p3-start"])
        switches = rt.dispatcher.context_switches
        print(
            "  %s  %8.1f us   (%d context switches in the run)"
            % (label, latency, switches)
        )
    print()
    print(
        "Without a protocol the medium thread P2 starves P3 (inversion);\n"
        "inheritance boosts P1 while P3 waits; the ceiling protocol\n"
        "boosts P1 from the moment it locks, needing fewer switches."
    )


if __name__ == "__main__":
    main()
