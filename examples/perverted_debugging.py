#!/usr/bin/env python
"""Perverted scheduling as a race detector.

A deliberately broken program (the critical read/write sits outside
its lock) runs under FIFO and under the paper's three perverted
policies, across several RNG seeds.  FIFO hides the bug every time;
the perverted policies surface it -- deterministically per seed, which
is the paper's argument for them over time-slice debugging.

    python examples/perverted_debugging.py
"""

import sys

sys.path.insert(0, ".")

from benchmarks.test_perverted_scheduling import (
    _racy_workload,
    detection_sweep,
)
from repro.core import config as cfg
from repro.sched.perverted import RandomSwitchPolicy
from tests.conftest import run_program


def main():
    seeds = 10
    print("Racy program: 3 threads x 6 unprotected increments "
          "(expect 18)\n")
    rates = detection_sweep(seeds=seeds)
    print("%-28s %s" % ("policy", "runs detecting the lost update"))
    print("-" * 50)
    for policy, detections in rates.items():
        bar = "#" * detections
        print("%-28s %2d/%d %s" % (policy, detections, seeds, bar))

    print()
    print("Reproducibility: random-switch with a fixed seed gives the "
          "same interleaving every run:")
    for seed in (3, 7):
        outcomes = []
        for _ in range(3):
            main_fn, shared, _ = _racy_workload()
            run_program(
                main_fn, policy=RandomSwitchPolicy(seed=seed), seed=seed
            )
            outcomes.append(shared["counter"])
        print("  seed %2d -> counters %s" % (seed, outcomes))


if __name__ == "__main__":
    main()
