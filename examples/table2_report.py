#!/usr/bin/env python
"""Regenerate the paper's Table 2 and print paper-vs-measured.

Runs every metric on both simulated machines (SPARC 1+ and SPARC IPX).

    python examples/table2_report.py
"""

from repro.bench import format_table2, measure_all


def main():
    print("Measuring on the simulated SPARC 1+ ...")
    oneplus = measure_all("sparc-1+")
    print("Measuring on the simulated SPARC IPX ...")
    ipx = measure_all("sparc-ipx")
    print()
    print("Table 2: Performance Metrics (paper values vs this reproduction)")
    print()
    print(format_table2(oneplus, ipx))
    print()
    print(
        "Columns: Sun = SunOS LWP (Powell et al.), Ours = the paper's\n"
        "library, meas. = this reproduction (simulated microseconds),\n"
        "Lynx = LynxOS pre-release.  '-' = not reported in the paper."
    )


if __name__ == "__main__":
    main()
