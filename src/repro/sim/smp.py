"""The SMP world extension: N virtual CPUs over one seeded world.

The paper's library runs on one processor; its design discussion notes
the same structure maps onto an MP kernel.  This module builds that
machine: a :class:`World` constructed with ``ncpus > 1`` grows an
:class:`SmpExtension` holding one :class:`Cpu` per processor -- each
with its own virtual clock, run queue, scheduler instance, and local
event queue -- plus a shared :class:`repro.hw.memory.CacheDirectory`
that prices every cross-CPU memory access.

Determinism is the design constraint everything here bends around:

- one seed drives all CPUs (each gets a forked RNG stream, stable
  across runs);
- the executor always steps the runnable CPU with the *lowest local
  clock* (ties break by CPU index), so the interleaving is a pure
  function of the charged costs;
- spinners park on a cache line and are woken by the write that
  changes it, with their clocks jumped to the writer's completion
  time -- timing-equivalent to busy-waiting, but the executor retires
  O(handoffs) steps instead of O(spin iterations).

CPU 0 is special: it shares the world's own clock and event queue, so
the single-CPU Pthreads runtime *is* CPU 0 of the SMP machine.  With
``ncpus=1`` no extension is attached at all and the world is
bit-identical to the pre-SMP simulator (the golden Table 2 gate).

Cross-CPU signalling goes through interprocessor interrupts: a wakeup
or signal aimed at a thread on another CPU charges ``IPI_SEND`` on the
source clock, rides the event queue for ``IPI_LATENCY`` cycles, and
charges ``IPI_RECEIVE`` on the target clock before the normal delivery
machinery runs (see :meth:`SmpExtension.send_ipi` and the routing hook
in :mod:`repro.unix.kernel`).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.hw import costs
from repro.hw.atomic import (
    SharedCell,
    smp_compare_and_swap,
    smp_fetch_add,
    smp_ldstub,
    smp_load,
    smp_store,
    smp_swap,
)
from repro.hw.clock import VirtualClock
from repro.hw.memory import CacheDirectory, CacheLine
from repro.sim.events import EventQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.world import World

#: Signal-cause kinds that originate outside the interrupted CPU
#: (device/timer/external interrupts land on the interrupt CPU and
#: must cross to the target's CPU via IPI).
ASYNC_CAUSE_KINDS = frozenset(("external", "timer", "io", "device"))


class SmpTask:
    """One generator task scheduled on the SMP executor.

    The body is a generator that yields *operation tuples* (see
    :meth:`SmpExecutor._exec`); the executor runs exactly one op per
    step, so the cross-CPU interleaving is as fine-grained as the ops.
    """

    __slots__ = (
        "name", "gen", "cpu", "state", "ready_at", "park_time",
        "send_value", "pending_op", "steps",
    )

    def __init__(self, name: str, gen: Any, cpu: int) -> None:
        self.name = name
        self.gen = gen
        self.cpu = cpu
        self.state = "ready"  # ready | running | spinning | done
        self.ready_at = 0
        self.park_time = 0
        self.send_value: Any = None
        self.pending_op: Optional[tuple] = None
        self.steps = 0

    def __repr__(self) -> str:
        return "SmpTask(%s, cpu=%d, %s)" % (self.name, self.cpu, self.state)


class CpuScheduler:
    """The per-CPU scheduler: a FIFO run queue with steal support.

    Deliberately simple -- the interesting scheduling in this
    reproduction lives in the Pthreads dispatcher; this instance just
    gives every simulated processor its own queue discipline, which is
    what the run-queue-disjointness invariant (``repro.check``) guards.
    """

    __slots__ = ("cpu", "runq")

    def __init__(self, cpu: "Cpu") -> None:
        self.cpu = cpu
        self.runq: deque = deque()

    def put(self, task: SmpTask) -> None:
        task.cpu = self.cpu.index
        task.state = "ready"
        self.runq.append(task)

    def pick(self) -> Optional[SmpTask]:
        if not self.runq:
            return None
        task = self.runq.popleft()
        task.state = "running"
        return task

    def steal_from(self) -> Optional[SmpTask]:
        """Victim side of work stealing: give up the *tail* task."""
        if not self.runq:
            return None
        task = self.runq.pop()
        return task

    def __len__(self) -> int:
        return len(self.runq)


class Cpu:
    """One simulated processor: clock + scheduler + local event queue.

    CPU 0 aliases the world's clock and event queue so existing
    single-CPU code *is* CPU 0; higher CPUs own private ones.
    """

    def __init__(
        self,
        smp: "SmpExtension",
        index: int,
        clock: Optional[VirtualClock] = None,
        events: Optional[EventQueue] = None,
    ) -> None:
        self.smp = smp
        self.index = index
        self.clock = clock if clock is not None else VirtualClock()
        self.events = events if events is not None else EventQueue()
        self.sched = CpuScheduler(self)
        self.current: Optional[SmpTask] = None
        self.rng = smp.world.rng.fork(0x5A50 + index)
        # Persistent counters (harvested into smp.* metrics).
        self.ipis_sent = 0
        self.ipis_received = 0
        self.migrations_in = 0
        self.dispatches = 0
        self.retired = 0
        self.spin_cycles = 0

    @property
    def runq(self) -> deque:
        return self.sched.runq

    @property
    def now(self) -> int:
        return self.clock.cycles

    def spend(self, key: str, times: int = 1) -> None:
        """Charge a cost-table key against this CPU's clock."""
        self.clock.advance(self.smp.table[key] * times)

    def spend_cycles(self, cycles: int) -> None:
        self.clock.advance(cycles)

    # -- coherence-priced memory ops (shared cells) -----------------------

    def load(self, cell: SharedCell) -> int:
        return smp_load(
            self.clock, self.smp.table, self.smp.directory, self.index, cell
        )

    def store(self, cell: SharedCell, value: int) -> None:
        smp_store(
            self.clock, self.smp.table, self.smp.directory, self.index,
            cell, value,
        )
        self.smp.line_written(cell.line, self.clock.cycles)

    def ldstub(self, cell: SharedCell) -> int:
        old = smp_ldstub(
            self.clock, self.smp.table, self.smp.directory, self.index, cell
        )
        self.smp.line_written(cell.line, self.clock.cycles)
        return old

    def compare_and_swap(
        self, cell: SharedCell, expected: int, new: int
    ) -> bool:
        ok = smp_compare_and_swap(
            self.clock, self.smp.table, self.smp.directory, self.index,
            cell, expected, new,
        )
        self.smp.line_written(cell.line, self.clock.cycles)
        return ok

    def swap(self, cell: SharedCell, value: int) -> int:
        old = smp_swap(
            self.clock, self.smp.table, self.smp.directory, self.index,
            cell, value,
        )
        self.smp.line_written(cell.line, self.clock.cycles)
        return old

    def fetch_add(self, cell: SharedCell, delta: int) -> int:
        old = smp_fetch_add(
            self.clock, self.smp.table, self.smp.directory, self.index,
            cell, delta,
        )
        self.smp.line_written(cell.line, self.clock.cycles)
        return old

    def __repr__(self) -> str:
        return "Cpu(%d, t=%d, runq=%d)" % (
            self.index, self.clock.cycles, len(self.sched.runq),
        )


class SmpExtension:
    """The multiprocessor face of a :class:`World`.

    Owns the CPUs, the shared cache directory, the line-waiter table
    for parked spinners, and the IPI plumbing.  Attached by
    ``World(ncpus=N)`` for N > 1; constructible directly for an
    explicit 1-CPU SMP machine (the lock zoo's baseline column).
    """

    def __init__(
        self,
        world: "World",
        ncpus: int,
        cpus_per_chip: int = 16,
    ) -> None:
        if ncpus < 1:
            raise ValueError("need at least one CPU: %r" % ncpus)
        self.world = world
        self.ncpus = ncpus
        self.table = world._costs
        self.directory = CacheDirectory(
            ncpus, self.table, cpus_per_chip=cpus_per_chip
        )
        self.cpus: List[Cpu] = [
            Cpu(self, 0, clock=world.clock, events=world.events)
        ]
        for index in range(1, ncpus):
            self.cpus.append(Cpu(self, index))
        #: Device/timer/external interrupts are taken on this CPU; a
        #: signal they raise for a thread on another CPU crosses via
        #: IPI.  On a uniprocessor everything is local.
        self.interrupt_cpu = 1 if ncpus > 1 else 0
        self.ipis_sent = 0
        self.ipis_delivered = 0
        self.migrations = 0
        self._line_waiters: Dict[CacheLine, List[SmpTask]] = {}
        self._executor: Optional["SmpExecutor"] = None

    # -- shared memory ------------------------------------------------------

    def cell(self, name: str, value: int = 0) -> SharedCell:
        """A shared word on its own (fresh) cache line."""
        return SharedCell(self.directory.line(name), value)

    def line_written(self, line: CacheLine, at_time: int) -> None:
        """Wake any tasks parked on ``line`` (called after every store)."""
        waiters = self._line_waiters.pop(line, None)
        if not waiters:
            return
        cpus = self.cpus
        for task in waiters:
            task.ready_at = at_time
            cpu = cpus[task.cpu]
            cpu.spin_cycles += max(0, at_time - task.park_time)
            cpu.sched.put(task)

    def parked(self, line: CacheLine) -> List[SmpTask]:
        return list(self._line_waiters.get(line, ()))

    # -- interprocessor interrupts -----------------------------------------

    def send_ipi(
        self,
        src_index: int,
        dst_index: int,
        action: Callable[[], None],
        name: str = "ipi",
    ) -> None:
        """Cross-call ``action`` from CPU ``src`` to CPU ``dst``.

        The send trap is charged on the source clock; the interrupt
        arrives ``IPI_LATENCY`` cycles later on the destination, which
        charges ``IPI_RECEIVE`` before running ``action``.  CPU 0's
        interrupts ride the world event queue (so the Pthreads
        executor fires them in its normal course); other CPUs use
        their local queues, drained by the SMP executor.
        """
        src = self.cpus[src_index]
        dst = self.cpus[dst_index]
        src.clock.advance(self.table[costs.IPI_SEND])
        src.ipis_sent += 1
        self.ipis_sent += 1
        arrive = src.clock.cycles + self.table[costs.IPI_LATENCY]
        world = self.world

        def deliver() -> None:
            self.ipis_delivered += 1
            dst.ipis_received += 1
            if dst.index == 0:
                world.spend(costs.IPI_RECEIVE, fire=False)
            else:
                dst.clock.advance(self.table[costs.IPI_RECEIVE])
            action()

        if dst.index == 0:
            world.schedule_at(arrive, deliver, name=name)
        else:
            dst.events.schedule(max(arrive, 0), deliver, name=name)

    def route_signal(self, kernel: Any, proc: Any, sig: int, cause: Any) -> bool:
        """IPI-route an asynchronous signal when it must cross CPUs.

        Returns True when the signal was turned into an IPI (the
        caller must *not* post it directly); False when delivery is
        local and the single-CPU path applies.  Synchronous causes
        (faults, explicit intra-process sends) are always local: they
        originate on the CPU already running the target.
        """
        if self.ncpus < 2:
            return False
        kind = getattr(cause, "kind", None)
        if kind not in ASYNC_CAUSE_KINDS:
            return False
        target_cpu = getattr(proc, "cpu", 0)
        src_index = self.interrupt_cpu
        if src_index == target_cpu:
            return False
        # The interrupt CPU observes the device at the world's current
        # instant; its shadow clock catches up before the send trap.
        src = self.cpus[src_index]
        if src.clock.cycles < self.world.now:
            src.clock.advance_to(self.world.now)
        stamped = dataclasses.replace(cause, via_ipi=True)
        self.send_ipi(
            src_index,
            target_cpu,
            lambda: kernel.post_signal_local(proc, sig, stamped),
            name="ipi:sig%d" % sig,
        )
        return True

    # -- bookkeeping --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        out = dict(self.directory.counters())
        out["smp.ipis_sent"] = self.ipis_sent
        out["smp.ipis_delivered"] = self.ipis_delivered
        out["smp.migrations"] = self.migrations
        out["smp.spin_cycles"] = sum(c.spin_cycles for c in self.cpus)
        return out

    def signature(self) -> tuple:
        """Stable state summary folded into ``World.state_digest``."""
        return (
            tuple(
                (c.clock.cycles, len(c.sched.runq), len(c.events),
                 c.ipis_sent, c.ipis_received)
                for c in self.cpus
            ),
            self.directory.signature(),
            self.ipis_sent,
            self.ipis_delivered,
            self.migrations,
        )

    def __repr__(self) -> str:
        return "SmpExtension(ncpus=%d, ipis=%d, bounces=%d)" % (
            self.ncpus, self.ipis_sent, self.directory.bounces,
        )


class SmpDeadlockError(Exception):
    """Every live task is parked on a line nobody will ever write."""


class SmpExecutor:
    """Runs generator tasks over the SMP machine, deterministically.

    The stepping rule: among CPUs that have work (a running task or a
    non-empty run queue), execute one operation on the CPU whose local
    clock is lowest, breaking ties by CPU index.  Idle CPUs steal the
    tail of the longest run queue (one migration charge) when stealing
    is enabled.  Spinners park on cache lines and wake on writes (see
    module docstring); a state where only parked tasks remain raises
    :class:`SmpDeadlockError`.

    Operation tuples the task generators may yield:

    ``("spend", key, times)``          charge a cost-table key
    ``("spend_cycles", n)``            charge raw cycles (work bursts)
    ``("pause", n)``                   backoff delay (counted as spin)
    ``("load", cell)``                 -> value
    ``("store", cell, v)``
    ``("ldstub", cell)``               -> old value
    ``("cas", cell, expected, new)``   -> bool
    ``("swap", cell, v)``              -> old value
    ``("fetch_add", cell, d)``         -> old value
    ``("spin_read", cell, pred)``      -> value once ``pred(value)``
    ``("yield",)``                     requeue behind local peers
    """

    def __init__(
        self,
        world: "World",
        smp: Optional[SmpExtension] = None,
        migration: bool = True,
        check: Optional[Any] = None,
        check_every: int = 64,
    ) -> None:
        smp = smp if smp is not None else world.smp
        if smp is None:
            raise ValueError(
                "world has no SMP extension; construct World(ncpus=N) "
                "or pass an explicit SmpExtension"
            )
        self.world = world
        self.smp = smp
        self.migration = migration and smp.ncpus > 1
        self.check = check
        self.check_every = check_every
        self.tasks: List[SmpTask] = []
        self.live = 0
        self.steps = 0
        smp._executor = self

    # -- task management ---------------------------------------------------

    def spawn(self, body_gen: Any, cpu: int = 0, name: str = "") -> SmpTask:
        """Enqueue a generator task on CPU ``cpu``'s run queue."""
        if not 0 <= cpu < self.smp.ncpus:
            raise ValueError("no such CPU: %r" % cpu)
        task = SmpTask(name or "task-%d" % len(self.tasks), body_gen, cpu)
        target = self.smp.cpus[cpu]
        task.ready_at = target.clock.cycles
        target.sched.put(task)
        self.tasks.append(task)
        self.live += 1
        return task

    # -- the interleaving loop ---------------------------------------------

    def run(self, max_steps: int = 5_000_000) -> None:
        """Run until every task finishes (or ``max_steps`` ops retire)."""
        check = self.check
        while self.live > 0:
            if self.steps >= max_steps:
                raise RuntimeError(
                    "SMP executor exceeded %d steps (%d tasks live)"
                    % (max_steps, self.live)
                )
            if self.migration:
                self._try_steal()
            cpu = self._pick_cpu()
            if cpu is None:
                if not self._advance_to_events():
                    raise SmpDeadlockError(
                        "%d tasks parked on cache lines with no runnable "
                        "writer" % self.live
                    )
                continue
            self._step(cpu)
            self.steps += 1
            if check is not None and self.steps % self.check_every == 0:
                check.on_smp_step(self.world)

    def _pick_cpu(self) -> Optional[Cpu]:
        best = None
        best_key = None
        for cpu in self.smp.cpus:
            if cpu.current is None and not cpu.sched.runq:
                if not cpu.events.due_before(cpu.clock.cycles):
                    continue
            key = (cpu.clock.cycles, cpu.index)
            if best_key is None or key < best_key:
                best = cpu
                best_key = key
        return best

    def _try_steal(self) -> None:
        cpus = self.smp.cpus
        victim = None
        for cpu in cpus:
            if len(cpu.sched.runq) > 0 and (
                victim is None or len(cpu.sched.runq) > len(victim.sched.runq)
            ):
                victim = cpu
        if victim is None or len(victim.sched.runq) < 2:
            return
        thief = None
        for cpu in cpus:
            if cpu.current is None and not cpu.sched.runq:
                if thief is None or (
                    (cpu.clock.cycles, cpu.index)
                    < (thief.clock.cycles, thief.index)
                ):
                    thief = cpu
        if thief is None:
            return
        task = victim.sched.steal_from()
        if task is None:
            return
        thief.spend(costs.SMP_MIGRATE)
        thief.migrations_in += 1
        self.smp.migrations += 1
        thief.sched.put(task)

    def _advance_to_events(self) -> bool:
        """All queues empty: jump the earliest event (IPIs in flight)."""
        best = None
        for cpu in self.smp.cpus:
            when = cpu.events.next_time()
            if when is not None and (best is None or when < best[0]):
                best = (when, cpu)
        if best is None:
            return False
        when, cpu = best
        cpu.clock.advance_to(max(when, cpu.clock.cycles))
        cpu.events.fire_due(cpu.clock.cycles)
        return True

    def _step(self, cpu: Cpu) -> None:
        if cpu.events.due_before(cpu.clock.cycles):
            cpu.events.fire_due(cpu.clock.cycles)
            if cpu.current is None and not cpu.sched.runq:
                return
        task = cpu.current
        if task is None:
            cpu.spend(costs.SMP_DISPATCH)
            cpu.dispatches += 1
            task = cpu.sched.pick()
            if task is None:
                return
            cpu.current = task
            if task.ready_at > cpu.clock.cycles:
                cpu.clock.advance_to(task.ready_at)
        if task.pending_op is not None:
            op = task.pending_op
            task.pending_op = None
        else:
            try:
                op = task.gen.send(task.send_value)
                task.steps += 1
            except StopIteration:
                task.state = "done"
                cpu.current = None
                cpu.retired += 1
                self.live -= 1
                return
        task.send_value = self._exec(cpu, task, op)
        if cpu.index == 0:
            self.world.fire_due()

    def _exec(self, cpu: Cpu, task: SmpTask, op: tuple) -> Any:
        kind = op[0]
        if kind == "spin_read":
            cell, pred = op[1], op[2]
            extra = self.smp.directory.read(
                cpu.index, cell.line, cpu.clock.cycles
            )
            cpu.clock.advance(self.smp.table[costs.SPIN_READ] + extra)
            value = cell.value
            if pred(value):
                return value
            # Park: the next write to this line wakes us for a re-check.
            task.pending_op = op
            task.state = "spinning"
            task.park_time = cpu.clock.cycles
            self.smp._line_waiters.setdefault(cell.line, []).append(task)
            cpu.current = None
            return None
        if kind == "spend":
            key = op[1]
            times = op[2] if len(op) > 2 else 1
            cpu.spend(key, times)
            return None
        if kind == "spend_cycles":
            cpu.spend_cycles(op[1])
            return None
        if kind == "pause":
            cpu.spend_cycles(op[1])
            cpu.spin_cycles += op[1]
            return None
        if kind == "load":
            return cpu.load(op[1])
        if kind == "store":
            cpu.store(op[1], op[2])
            return None
        if kind == "ldstub":
            return cpu.ldstub(op[1])
        if kind == "cas":
            return cpu.compare_and_swap(op[1], op[2], op[3])
        if kind == "swap":
            return cpu.swap(op[1], op[2])
        if kind == "fetch_add":
            return cpu.fetch_add(op[1], op[2])
        if kind == "yield":
            cpu.current = None
            task.ready_at = cpu.clock.cycles
            cpu.sched.put(task)
            return None
        raise ValueError("unknown SMP op: %r" % (op,))

    # -- results -----------------------------------------------------------

    @property
    def makespan(self) -> int:
        """Completion time: the maximum cycle count across CPU clocks."""
        return max(c.clock.cycles for c in self.smp.cpus)

    def __repr__(self) -> str:
        return "SmpExecutor(cpus=%d, steps=%d, live=%d)" % (
            self.smp.ncpus, self.steps, self.live,
        )
