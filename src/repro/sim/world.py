"""The simulated world: one machine's clock, CPU model, and event queue.

Every run of the reproduction happens inside a :class:`World`.  The
world owns the virtual clock, the CPU cost model (which SPARC we are
pretending to be), the register-window file, the asynchronous event
queue, the deterministic RNG, and a trace sink.  The UNIX kernel and the
Pthreads library are built on top of one world.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.hw.clock import VirtualClock
from repro.hw.costs import SPARC_IPX, CostModel, cost_model
from repro.hw.registers import RegisterWindows
from repro.sim.events import Event, EventQueue
from repro.sim.rng import DeterministicRng


class DeadlockError(Exception):
    """No runnable activity and no pending events: time cannot advance."""


class World:
    """A single simulated machine.

    Parameters
    ----------
    model:
        CPU cost model or its name ("sparc-1+" / "sparc-ipx").
        Defaults to the SPARC IPX, the faster machine of Table 2.
    seed:
        Seed for the world's deterministic RNG.
    trace:
        Optional trace sink with an ``emit(kind, **fields)`` method
        (see :class:`repro.debug.trace.Tracer`).
    ncpus:
        Number of simulated processors.  1 (the default) is the
        paper's machine: no SMP extension is attached and the world is
        bit-identical to the single-CPU simulator.  Higher values grow
        a :class:`repro.sim.smp.SmpExtension` on ``self.smp`` -- per-
        CPU clocks/run queues, a shared cache directory, and IPI-based
        cross-CPU signal delivery.
    cpus_per_chip:
        Coherence topology: CPUs on the same chip transfer cache lines
        at the near rate, cross-chip at the far rate (see docs/SMP.md).
    """

    def __init__(
        self,
        model: Union[str, CostModel] = SPARC_IPX,
        seed: int = 0,
        trace: Optional[object] = None,
        ncpus: int = 1,
        cpus_per_chip: int = 16,
    ) -> None:
        if isinstance(model, str):
            model = cost_model(model)
        if ncpus < 1:
            raise ValueError("need at least one CPU: %r" % ncpus)
        self.model = model
        self.clock = VirtualClock()
        self.events = EventQueue()
        self.rng = DeterministicRng(seed)
        self.windows = RegisterWindows(self.clock, model)
        self.trace = trace
        #: Schedule-exploration choice source (see ``repro.check``).
        #: None in ordinary runs; when set, interruption sources ask it
        #: which of several legal behaviours to take via :meth:`choose`.
        self.choices = None
        self._defer_depth = 0
        self._firing = False
        #: Flat cost table (defaults + model overrides), indexed without
        #: the two-stage :meth:`CostModel.cost` lookup on the hot path.
        self._costs = model.table()
        #: SMP extension; None on the (default) uniprocessor, where
        #: every hot path must stay byte-for-byte what it always was.
        self.smp = None
        if ncpus > 1:
            from repro.sim.smp import SmpExtension

            self.smp = SmpExtension(self, ncpus, cpus_per_chip=cpus_per_chip)

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in cycles."""
        return self.clock.cycles

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self.model.us(self.clock.cycles)

    def us(self, cycles: int) -> float:
        return self.model.us(cycles)

    def cycles_for_us(self, us: float) -> int:
        return self.model.cycles_for_us(us)

    # -- schedule exploration ----------------------------------------------

    def choose(self, options: int, tag: str = "") -> int:
        """Pick one of ``options`` legal behaviours at a choice point.

        Returns 0 (the default behaviour) in ordinary runs; under the
        ``repro.check`` explorer, the attached choice source scripts or
        enumerates the decision.  Costs nothing in virtual time.
        """
        if options <= 1 or self.choices is None:
            return 0
        return self.choices.choose(options, tag)

    # -- spending cycles ---------------------------------------------------

    def spend(self, key: str, times: int = 1, fire: bool = True) -> None:
        """Charge the cost of primitive ``key`` (``times`` occurrences).

        By default due events fire after the charge, so asynchronous
        signals land inside library code sections -- which is what
        exercises the paper's defer-signals-while-in-kernel machinery.

        The clock advance is inlined (identically to
        :meth:`VirtualClock.advance`): this method runs several times
        per executor step.
        """
        cycles = self._costs[key] * times
        clock = self.clock
        if cycles > 0:
            before = clock.cycles
            clock.cycles = after = before + cycles
            if clock._watchers:
                for watcher in clock._watchers:
                    watcher(before, after)
        elif cycles < 0:
            raise ValueError("cannot advance clock backwards: %r" % (cycles,))
        if fire:
            # Horizon gate (see EventQueue): None = empty, -1 = stale
            # (conservatively due), else the earliest live event time.
            horizon = self.events._horizon
            if horizon is not None and horizon <= clock.cycles:
                self.fire_due()

    def spend_cycles(self, cycles: int, fire: bool = True) -> None:
        """Charge a raw cycle amount."""
        clock = self.clock
        if cycles > 0:
            before = clock.cycles
            clock.cycles = after = before + cycles
            if clock._watchers:
                for watcher in clock._watchers:
                    watcher(before, after)
        elif cycles < 0:
            raise ValueError("cannot advance clock backwards: %r" % (cycles,))
        if fire:
            horizon = self.events._horizon
            if horizon is not None and horizon <= clock.cycles:
                self.fire_due()

    # -- events ------------------------------------------------------------

    def schedule_at(self, time: int, action, name: str = "event") -> Event:
        """Schedule ``action`` at absolute cycle ``time``."""
        return self.events.schedule(max(time, self.now), action, name)

    def schedule_in(self, cycles: int, action, name: str = "event") -> Event:
        """Schedule ``action`` ``cycles`` from now."""
        if cycles < 0:
            raise ValueError("cannot schedule in the past: %r" % cycles)
        return self.events.schedule(self.now + cycles, action, name)

    def fire_due(self) -> int:
        """Fire every event due at the current instant.

        A no-op inside an :meth:`atomic` section; the events fire at
        the first ``fire_due`` after the section ends.  Also
        non-reentrant: an event action whose work makes further events
        due does not recurse -- the enclosing drain loop picks them up
        (otherwise a timer with a period shorter than its handler would
        recurse without bound).
        """
        horizon = self.events._horizon
        if horizon is None or horizon > self.clock.cycles:
            return 0  # nothing can be due (stale horizon is -1: falls through)
        if self._defer_depth or self._firing:
            return 0
        self._firing = True
        try:
            return self.events.fire_due(self.now)
        finally:
            self._firing = False

    @contextmanager
    def atomic(self) -> Iterator[None]:
        """Suppress event firing for the duration (context-switch code).

        Models the short uninterruptible stretch of a real context
        switch: time still advances, but deliveries land after the
        switch completes -- interrupting the *new* thread, as on the
        real machine.
        """
        self._defer_depth += 1
        try:
            yield
        finally:
            self._defer_depth -= 1

    def next_event_time(self) -> Optional[int]:
        return self.events.next_time()

    def advance_to_next_event(self) -> None:
        """Idle the CPU until the next event, then fire it.

        Raises :class:`DeadlockError` when nothing is pending -- the
        simulated machine would sit idle forever.
        """
        when = self.events.next_time()
        if when is None:
            raise DeadlockError(
                "system is idle with no pending events at t=%d cycles"
                % self.now
            )
        self.clock.advance_to(max(when, self.now))
        self.fire_due()

    # -- snapshot integrity --------------------------------------------------

    def state_digest(self) -> str:
        """A stable hash of the world's observable state.

        Two worlds that would behave identically from here on (same
        clock, same RNG stream position, same pending events, same
        register-window wear) produce the same digest.  The fleet layer
        (:mod:`repro.fleet`) compares digests between a resumed
        snapshot and a replay-from-scratch run to prove the snapshot
        path is exact.
        """
        import hashlib

        parts = (
            self.model.name,
            str(self.clock.cycles),
            repr(self.rng.getstate()),
            repr(self.events.signature()),
            "%d/%d/%d"
            % (
                self.windows.flush_traps,
                self.windows.underflow_traps,
                self.windows.overflow_traps,
            ),
        )
        if self.smp is not None:
            parts = parts + (repr(self.smp.signature()),)
        return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()

    # -- tracing -------------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Emit a trace record if tracing is enabled."""
        if self.trace is not None:
            self.trace.emit(kind, **fields)

    def __repr__(self) -> str:
        return "World(model=%s, t=%d cycles)" % (self.model.name, self.now)
