"""The virtual-time event queue.

Events are the simulator's asynchrony: interval-timer expirations,
signals sent from outside the process, and I/O completions.  Each event
carries an absolute virtual time (in cycles) and an action callback.
Events with equal timestamps fire in scheduling order (a stable sequence
number breaks ties), which keeps every run deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]


class Event:
    """A scheduled action; cancellable until it fires."""

    __slots__ = ("time", "seq", "action", "name", "cancelled", "fired")

    def __init__(self, time: int, seq: int, action: Action, name: str) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "fired" if self.fired else (
            "cancelled" if self.cancelled else "pending"
        )
        return "Event(%s @%d, %s)" % (self.name, self.time, state)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        self._drop_cancelled()
        return len(self._heap)

    def schedule(self, time: int, action: Action, name: str = "event") -> Event:
        """Schedule ``action`` at absolute cycle ``time``."""
        if time < 0:
            raise ValueError("event time must be >= 0: %r" % time)
        event = Event(time, next(self._seq), action, name)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def next_time(self) -> Optional[int]:
        """Virtual time of the earliest pending event, or None."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_due(self, now: int) -> Optional[Event]:
        """Pop the earliest event with ``time <= now``, or None."""
        self._drop_cancelled()
        if self._heap and self._heap[0][0] <= now:
            event = heapq.heappop(self._heap)[2]
            event.fired = True
            return event
        return None

    def fire_due(self, now: int) -> int:
        """Fire every event due at or before ``now``; returns the count.

        Actions may schedule further events; those fire too if they are
        also due (a timer rearming itself in the past would otherwise
        stall time).
        """
        fired = 0
        while True:
            event = self.pop_due(now)
            if event is None:
                return fired
            event.action()
            fired += 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
