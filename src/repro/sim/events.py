"""The virtual-time event queue.

Events are the simulator's asynchrony: interval-timer expirations,
signals sent from outside the process, and I/O completions.  Each event
carries an absolute virtual time (in cycles) and an action callback.
Events with equal timestamps fire in scheduling order (a stable sequence
number breaks ties), which keeps every run deterministic.

Host-speed notes: this queue sits on the executor's hottest path (every
``World.spend`` asks "is anything due?"), so it caches the earliest
pending event time (the *horizon*).  ``next_time``/``fire_due`` answer
in O(1) while the horizon is ahead of the clock, and ``__len__`` is a
pure counter read — no query mutates the heap.  Cancelled events stay
in the heap as tombstones until they reach the top; the live count and
horizon are maintained incrementally by :meth:`Event.cancel` telling
its queue.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]

#: Sentinel horizon value: "stale, recompute from the heap on demand".
#: Event times are >= 0, so -1 can never collide with a real time.
_STALE = -1


class Event:
    """A scheduled action; cancellable until it fires."""

    __slots__ = ("time", "seq", "action", "name", "cancelled", "fired", "queue")

    def __init__(self, time: int, seq: int, action: Action, name: str) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = False
        self.fired = False
        self.queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._cancelled(self)

    def __repr__(self) -> str:
        state = "fired" if self.fired else (
            "cancelled" if self.cancelled else "pending"
        )
        return "Event(%s @%d, %s)" % (self.name, self.time, state)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Invariants:

    - ``_live`` counts scheduled, unfired, uncancelled events;
    - ``_horizon`` is the earliest live event time, ``None`` when the
      queue is empty, or :data:`_STALE` when it must be recomputed by
      popping tombstones off the heap top.
    """

    __slots__ = (
        "_heap", "_seq", "_live", "_horizon",
        "batch_pops", "batched_events", "max_batch",
    )

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._horizon: Optional[int] = None
        #: Batched-pop telemetry (see :meth:`fire_due`): number of
        #: multi-event same-timestamp batches, events fired through
        #: them, and the largest batch seen.  Pure counters -- they
        #: never influence behaviour.
        self.batch_pops = 0
        self.batched_events = 0
        self.max_batch = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: int, action: Action, name: str = "event") -> Event:
        """Schedule ``action`` at absolute cycle ``time``."""
        if time < 0:
            raise ValueError("event time must be >= 0: %r" % time)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, name)
        event.queue = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        horizon = self._horizon
        if horizon is None or (horizon != _STALE and time < horizon):
            self._horizon = time
        return event

    def next_time(self) -> Optional[int]:
        """Virtual time of the earliest pending event, or None."""
        horizon = self._horizon
        if horizon != _STALE:
            return horizon
        self._drop_cancelled()
        heap = self._heap
        horizon = heap[0][0] if heap else None
        self._horizon = horizon
        return horizon

    def due_before(self, now: int) -> bool:
        """O(1) in the common case: could anything be due at ``now``?

        May return True conservatively when the horizon is stale; the
        caller's :meth:`fire_due` then resolves it exactly.
        """
        horizon = self._horizon
        if horizon == _STALE:
            return self.next_time() is not None and self._horizon <= now
        return horizon is not None and horizon <= now

    def pop_due(self, now: int) -> Optional[Event]:
        """Pop the earliest event with ``time <= now``, or None."""
        when = self.next_time()
        if when is None or when > now:
            return None
        heap = self._heap
        event = heapq.heappop(heap)[2]
        event.fired = True
        self._live -= 1
        self._horizon = _STALE
        return event

    def fire_due(self, now: int) -> int:
        """Fire every event due at or before ``now``; returns the count.

        Actions may schedule further events; those fire too if they are
        also due (a timer rearming itself in the past would otherwise
        stall time).

        Completions that share a timestamp (the common case under mass
        I/O at scale) are swept off the heap as one *batch*: a single
        run of heap pops and one horizon recompute amortize the
        per-event queue overhead.  Batching is observably equivalent to
        one-at-a-time pops: every event scheduled by a batch member's
        action carries a later time -- or the same time with a higher
        sequence number -- than every unprocessed member, so it cannot
        overtake them (the world clamps ``schedule_at`` to the current
        instant).  The one exception is a cross-clock queue (SMP IPIs
        land on per-CPU queues at the *source* clock's arrival time,
        possibly behind this queue's batch); if an action schedules
        before the batch timestamp, the unprocessed members are pushed
        back and the sweep restarts, reproducing the one-at-a-time
        order exactly.  Cancellation by a sibling is honoured at
        process time: a member cancelled after the sweep already did
        its live/horizon bookkeeping and is simply skipped.
        """
        horizon = self._horizon
        if horizon != _STALE and (horizon is None or horizon > now):
            return 0
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        fired = 0
        while True:
            self._drop_cancelled()
            if not heap or heap[0][0] > now:
                break
            t0 = heap[0][0]
            batch: List[Event] = []
            while heap and heap[0][0] == t0:
                batch.append(pop(heap)[2])
            self._horizon = _STALE
            n = len(batch)
            if n > 1:
                self.batch_pops += 1
                self.batched_events += n
                if n > self.max_batch:
                    self.max_batch = n
            i = 0
            try:
                while i < n:
                    event = batch[i]
                    i += 1
                    if event.cancelled:
                        continue
                    event.fired = True
                    self._live -= 1
                    event.action()
                    fired += 1
                    if i < n and heap and heap[0][0] < t0:
                        # A cross-clock schedule landed before this
                        # batch; fall back to heap order for the rest.
                        break
            finally:
                if i < n:
                    for later in batch[i:]:
                        push(heap, (later.time, later.seq, later))
        self._horizon = heap[0][0] if heap else None
        return fired

    def _cancelled(self, event: Event) -> None:
        """Bookkeeping for :meth:`Event.cancel` (tombstone stays heaped)."""
        self._live -= 1
        if self._live == 0:
            # Every heap entry is a tombstone: drop them all at once.
            self._heap.clear()
            self._horizon = None
        elif self._horizon == event.time:
            # The cancelled event may have defined the horizon; another
            # live event could share its timestamp, so recompute lazily.
            self._horizon = _STALE

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def signature(self) -> Tuple[Tuple[int, int, str], ...]:
        """The live events as a sorted ``(time, seq, name)`` tuple.

        Tombstones are excluded, so two queues that went through
        different cancel histories but hold the same pending work have
        the same signature.  Used by the snapshot-integrity digests in
        :mod:`repro.fleet`.
        """
        return tuple(
            sorted(
                (event.time, event.seq, event.name)
                for (__, __, event) in self._heap
                if not event.cancelled
            )
        )
