"""Operations yielded by simulated programs.

A simulated program is a Python generator; each ``yield`` hands the
executor one *op* and suspends the program at that instruction boundary.
The executor charges virtual time, performs the op, and resumes the
program with the op's result.

Ops are plain immutable descriptors.  User code never constructs them
directly -- the :class:`repro.core.api.PT` facade builds them, e.g.::

    def body(pt):
        yield pt.work(500)              # Work: 500 cycles of computation
        err = yield pt.mutex_lock(m)    # LibCall into the Pthreads library
        pid = yield pt.unix.getpid()    # SysCall into the UNIX kernel
        v = yield pt.call(helper, 3)    # Invoke: nested simulated frame
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

# Ops are allocated once per executor step; plain __slots__ classes
# keep them cheap (a frozen dataclass pays object.__setattr__ per
# field).  Treat instances as immutable.


class Work:
    """Burn ``cycles`` of CPU time.  Preemptible: an asynchronous event
    due mid-burst splits the burst at the event's virtual instant."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("work cycles must be >= 0: %r" % (cycles,))
        self.cycles = cycles

    def __repr__(self) -> str:
        return "Work(cycles=%r)" % (self.cycles,)


class LibCall:
    """Call a Pthreads library entry point by name.

    The result sent back into the program is whatever the library call
    returns (an error number for most POSIX calls, a value for
    ``pthread_self`` and friends).
    """

    __slots__ = ("name", "args", "kwargs")

    def __init__(
        self,
        name: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.args = args
        self.kwargs = {} if kwargs is None else kwargs

    def __repr__(self) -> str:
        return "LibCall(%r, args=%r)" % (self.name, self.args)


class SysCall:
    """Call the simulated UNIX kernel directly (bypassing the library).

    Used by benchmarks (``getpid`` timing) and by programs that want raw
    UNIX behaviour for comparison.
    """

    __slots__ = ("name", "args", "kwargs")

    def __init__(
        self,
        name: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.args = args
        self.kwargs = {} if kwargs is None else kwargs

    def __repr__(self) -> str:
        return "SysCall(%r, args=%r)" % (self.name, self.args)


class Invoke:
    """Push a nested simulated frame running ``fn(pt, *args)``.

    Models a function call on the simulated stack: charges a register-
    window ``save`` and ``frame_bytes`` of stack, and sends the callee's
    return value back when it returns.
    """

    __slots__ = ("fn", "args", "kwargs", "frame_bytes")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        frame_bytes: int = 96,
    ) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = {} if kwargs is None else kwargs
        self.frame_bytes = frame_bytes

    def __repr__(self) -> str:
        return "Invoke(%s)" % getattr(self.fn, "__name__", self.fn)


Op = (Work, LibCall, SysCall, Invoke)
