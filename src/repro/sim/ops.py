"""Operations yielded by simulated programs.

A simulated program is a Python generator; each ``yield`` hands the
executor one *op* and suspends the program at that instruction boundary.
The executor charges virtual time, performs the op, and resumes the
program with the op's result.

Ops are plain immutable descriptors.  User code never constructs them
directly -- the :class:`repro.core.api.PT` facade builds them, e.g.::

    def body(pt):
        yield pt.work(500)              # Work: 500 cycles of computation
        err = yield pt.mutex_lock(m)    # LibCall into the Pthreads library
        pid = yield pt.unix.getpid()    # SysCall into the UNIX kernel
        v = yield pt.call(helper, 3)    # Invoke: nested simulated frame
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple


@dataclass(frozen=True)
class Work:
    """Burn ``cycles`` of CPU time.  Preemptible: an asynchronous event
    due mid-burst splits the burst at the event's virtual instant."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("work cycles must be >= 0: %r" % (self.cycles,))


@dataclass(frozen=True)
class LibCall:
    """Call a Pthreads library entry point by name.

    The result sent back into the program is whatever the library call
    returns (an error number for most POSIX calls, a value for
    ``pthread_self`` and friends).
    """

    name: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SysCall:
    """Call the simulated UNIX kernel directly (bypassing the library).

    Used by benchmarks (``getpid`` timing) and by programs that want raw
    UNIX behaviour for comparison.
    """

    name: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Invoke:
    """Push a nested simulated frame running ``fn(pt, *args)``.

    Models a function call on the simulated stack: charges a register-
    window ``save`` and ``frame_bytes`` of stack, and sends the callee's
    return value back when it returns.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    frame_bytes: int = 96


Op = (Work, LibCall, SysCall, Invoke)
