"""Discrete-event execution engine.

The engine runs *simulated programs*: Python generator functions that
yield :mod:`ops <repro.sim.ops>` (compute bursts, library calls, UNIX
syscalls, nested calls).  A program's call stack is a stack of
:class:`~repro.sim.frames.Frame` objects; asynchronous events (timers,
signals, I/O completions) are queued against the virtual clock and fire
at instruction boundaries, splitting compute bursts exactly where a
hardware interrupt would land.

The Pthreads library (:mod:`repro.core`) supplies the scheduler and the
semantics; this package supplies the mechanics.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.frames import Frame, FrameStack, ProgramCrash
from repro.sim.ops import Invoke, LibCall, SysCall, Work
from repro.sim.rng import DeterministicRng
from repro.sim.world import World

__all__ = [
    "DeterministicRng",
    "Event",
    "EventQueue",
    "Frame",
    "FrameStack",
    "Invoke",
    "LibCall",
    "ProgramCrash",
    "SysCall",
    "Work",
    "World",
]
