"""Seeded randomness for workloads and the random-switch policy.

The paper observes that "varying the initialization of random number
generators for the random switch policy ... proved to be a simple but
powerful way to influence the ordering of threads during execution".
All randomness in the reproduction flows through this wrapper so a run
is fully determined by its seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded pseudo random number generator."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def coin(self) -> bool:
        """The "next binary random number" of the random-switch policy."""
        return self._rng.random() < 0.5

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n) (choice-point enumeration)."""
        if n <= 0:
            raise ValueError("randrange needs a positive bound: %r" % n)
        return self._rng.randrange(n)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._rng.randrange(len(items))]

    def shuffled(self, items: Sequence[T]) -> List[T]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def expovariate(self, mean: float) -> float:
        """Exponential variate with the given mean (for I/O latencies)."""
        if mean <= 0:
            raise ValueError("mean must be positive: %r" % mean)
        return self._rng.expovariate(1.0 / mean)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream (stable across runs)."""
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    # -- snapshot hooks (see repro.fleet) ---------------------------------

    def getstate(self) -> tuple:
        """The full generator state (for snapshot/restore and digests)."""
        return self._rng.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._rng.setstate(state)
