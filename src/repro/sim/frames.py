"""Simulated stack frames over Python generators.

A thread's stack is a :class:`FrameStack` of :class:`Frame` objects.
The bottom frame runs the thread's start routine; nested frames are
pushed by :class:`~repro.sim.ops.Invoke` ops (simulated function calls)
and by *fake calls* (the paper's mechanism for running user signal
handlers on a thread's own stack, Figure 3).

Python generators cannot be rewound, so a frame suspended mid-``Work``
records the remaining cycles (``remaining_work``) and the executor
finishes the burst before resuming the generator -- this is what makes
preemption land "between two instructions" of a compute burst.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple


class ProgramCrash(Exception):
    """A simulated program raised an unhandled Python exception."""

    def __init__(self, frame_name: str, original: BaseException) -> None:
        super().__init__(
            "program crashed in frame %r: %r" % (frame_name, original)
        )
        self.frame_name = frame_name
        self.original = original


class SimException(Exception):
    """An exception *inside* the simulated machine.

    Unlike arbitrary Python exceptions (which are bugs in simulated
    code and crash the run as :class:`ProgramCrash`), a
    ``SimException`` raised by a frame propagates to the caller frame
    -- thrown into its generator at the suspended ``yield`` -- so
    simulated programs can use ordinary ``try``/``except`` across
    simulated call boundaries.  The Ada runtime's exception semantics
    are built on this.
    """


class Frame:
    """One simulated stack frame.

    Attributes
    ----------
    gen:
        The generator executing this frame's code.
    name:
        Diagnostic name (usually the function name).
    kind:
        ``"user"`` for ordinary frames, ``"wrapper"`` for fake-call
        wrapper frames, ``"unix-interrupt"`` for the frame UNIX pushes
        when delivering a signal.
    frame_bytes:
        Simulated stack space consumed by this frame.
    pending_value / pending_exc:
        What to deliver into the generator on next resume.
    remaining_work:
        Cycles left of a preempted ``Work`` op.
    on_pop:
        Optional callback ``on_pop(return_value) -> Optional[Any]``
        invoked when the frame returns; its result (if not None)
        replaces the value delivered to the frame below.  Fake-call
        wrappers use this to restore signal masks and redirect control.
    meta:
        Free-form per-frame metadata (fake-call records and the like).
    """

    __slots__ = (
        "gen",
        "name",
        "kind",
        "frame_bytes",
        "pending_value",
        "pending_exc",
        "remaining_work",
        "on_pop",
        "deliver_to_caller",
        "meta",
    )

    def __init__(
        self,
        gen: Generator[Any, Any, Any],
        name: str,
        kind: str = "user",
        frame_bytes: int = 96,
        on_pop: Optional[Callable[[Any], Optional[Any]]] = None,
        deliver_to_caller: bool = True,
    ) -> None:
        self.gen = gen
        self.name = name
        self.kind = kind
        self.frame_bytes = frame_bytes
        self.pending_value: Any = None
        self.pending_exc: Optional[BaseException] = None
        self.remaining_work = 0
        self.on_pop = on_pop
        # Ordinary calls return a value to the frame below; a fake-call
        # wrapper must NOT disturb the interrupted frame's pending state.
        self.deliver_to_caller = deliver_to_caller
        self.meta: Dict[str, Any] = {}

    def resume(self) -> Tuple[str, Any]:
        """Advance the generator one step.

        Returns ``("op", op)`` when the frame yields its next op,
        ``("return", value)`` when it finishes, or ``("raise", exc)``
        when it lets a :class:`SimException` escape (to be rethrown in
        the caller frame).  Any other exception in simulated code
        surfaces as :class:`ProgramCrash`.
        """
        try:
            if self.pending_exc is not None:
                exc = self.pending_exc
                self.pending_exc = None
                op = self.gen.throw(exc)
            else:
                value = self.pending_value
                self.pending_value = None
                op = self.gen.send(value)
        except StopIteration as stop:
            return ("return", stop.value)
        except SimException as exc:
            return ("raise", exc)
        except ProgramCrash:
            raise
        except BaseException as exc:  # noqa: BLE001 - report simulated fault
            raise ProgramCrash(self.name, exc) from exc
        return ("op", op)

    def close(self) -> None:
        """Force-unwind the frame (GeneratorExit into the program)."""
        self.gen.close()

    def __repr__(self) -> str:
        return "Frame(%s, kind=%s)" % (self.name, self.kind)


class FrameStack:
    """A thread's stack of simulated frames (bottom first)."""

    __slots__ = ("_frames", "_special")

    def __init__(self) -> None:
        self._frames: List[Frame] = []
        # Count of wrapper/redirect frames on the stack, maintained at
        # push/pop so "is a signal handler running?" is O(1) for the
        # executor instead of a scan per Invoke.
        self._special = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)

    def __iter__(self):
        return iter(self._frames)

    @property
    def top(self) -> Frame:
        if not self._frames:
            raise IndexError("frame stack is empty")
        return self._frames[-1]

    def push(self, frame: Frame) -> None:
        self._frames.append(frame)
        if frame.kind in ("wrapper", "redirect"):
            self._special += 1

    def pop(self) -> Frame:
        if not self._frames:
            raise IndexError("pop from empty frame stack")
        frame = self._frames.pop()
        if self._special and frame.kind in ("wrapper", "redirect"):
            self._special -= 1
        return frame

    def unwind_to(self, depth: int) -> List[Frame]:
        """Close and drop frames above ``depth``; returns them (top first)."""
        if depth < 0 or depth > len(self._frames):
            raise ValueError(
                "bad unwind depth %d (stack has %d)" % (depth, len(self._frames))
            )
        dropped: List[Frame] = []
        while len(self._frames) > depth:
            frame = self._frames.pop()
            if self._special and frame.kind in ("wrapper", "redirect"):
                self._special -= 1
            frame.close()
            dropped.append(frame)
        return dropped

    def unwind_all(self) -> List[Frame]:
        """Close every frame (thread exit / cancellation)."""
        return self.unwind_to(0)

    def depth(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return "FrameStack(%s)" % ", ".join(f.name for f in self._frames)
