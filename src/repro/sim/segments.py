"""The executor's segment compiler: straight-line replay cache.

The paper's performance argument is that the common path of every
thread primitive is a short, predictable instruction sequence.  The
executor exploits the same property at the *host* level: a straight-
line run of ops between two interruption points is deterministic given
a small set of guards (mutex ownership, empty waiter queues, no event
due inside the window), so after interpreting it once the executor can
*replay* it -- one compiled Python function per segment, one clock
store per batch -- instead of re-dispatching every op through the
interpreter loop.

Correctness model
-----------------

A segment is recorded by interpreting ops normally (through the exact
same runtime entry points the plain executor uses) while a *certifier*
checks, after each op, that the op's entire observable effect is
captured by a closed-form template:

- the op object is the canonical cached instance (so replay can match
  it with a single ``is``);
- the virtual-clock delta equals the template's constant;
- no event was scheduled, cancelled, or fired;
- the library kernel was not left in a flagged state and no dispatch
  happened;
- every mutated field (owner/cell/counters/held list) matches the
  template's effect list.

Replay then re-applies exactly those effects, under guard checks that
re-establish the recorded preconditions, while a *limit* derived from
the event horizon guarantees no event becomes due inside the replayed
window -- any rule that would fire mid-segment (timer expiry, watcher)
either splits the segment at record time (the event fired while
recording, so certification stopped there) or forces interpretation at
replay time (the horizon bound fails, the step budget fails, or a
clock watcher is attached).  Simulated time, ``Runtime.steps``,
per-thread ``cpu_cycles`` and every library counter advance
bit-identically to interpretation; the property tests in
``tests/properties/test_prop_segment_equivalence.py`` assert digest
equality against forced interpretation (``REPRO_SEGMENTS=0``).

Bypass rules (checked before any replay or recording):

- a clock watcher is attached (obs profiler / tracer demand per-spend
  granularity -- the cache is bypassed rather than distributing
  breakdowns, so attribution stays exact);
- a choice source is attached (``repro.check``): segments would hide
  ``choose()`` points from the explorer, so the cache is bypassed and
  DFS reports are byte-identical with the cache on or off;
- a scheduling policy, trace sink, or check context is attached;
- the kernel/dispatcher flags are set or signals are deferred.

Keying: segments are keyed by (generator code object, ``f_lasti``)
with a small list of *variants* per location, because one code
location may run against different library objects (each pipeline
stage locks its own queue mutex).  Variants are matched by the first
op's identity and kept in MRU order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import config as cfg
from repro.hw import costs
from repro.sim.frames import ProgramCrash, SimException
from repro.sim.ops import Invoke, LibCall, SysCall, Work

#: Location states (``table[lasti]``) besides a variant list.
_BLACKLISTED = object()

#: Visits to a location before a recording is attempted.
_RECORD_AFTER = 8
#: Recording attempts per location before it is blacklisted.
_MAX_FAILS = 3
#: Maximum ops recorded into one segment (also bounds generated-code
#: size, and with it the one-time host cost of compiling a segment).
_MAX_OPS = 16
#: Minimum certified ops worth compiling.
_MIN_OPS = 2
#: Maximum compiled variants per location.
_MAX_VARIANTS = 6
#: Global cap on compiled segments per runtime.
_MAX_SEGMENTS = 512
#: First-op mismatches at a compiled location before a new variant is
#: recorded from the in-hand op.
_VARIANT_AFTER = 8

#: Step budget / until sentinel: effectively unbounded.
_NO_BOUND = 1 << 62

#: Process-wide generated-source -> code-object cache.  Generated
#: source carries no object identities (those go through the closure
#: env), so it is safe to share across runtimes.  Bounded as a leak
#: guard; overflow simply recompiles.
_SOURCE_CACHE: Dict[str, Any] = {}
_SOURCE_CACHE_MAX = 4096


class _LocState:
    """Visit/fail counters for a not-yet-compiled location."""

    __slots__ = ("visits", "fails")

    def __init__(self) -> None:
        self.visits = 0
        self.fails = 0


class _Variants(list):
    """Compiled segments at one location, MRU first."""

    __slots__ = ("mismatches",)

    def __init__(self, items) -> None:
        super().__init__(items)
        self.mismatches = 0


class _SegStep:
    """One certified op: identity, result, cycle constant, IR."""

    __slots__ = ("op", "result", "cycles", "guards", "effects")

    def __init__(self, op, result, cycles, guards, effects) -> None:
        self.op = op
        self.result = result  # "none" | "zero" | "tcb"
        self.cycles = cycles
        self.guards = guards  # tuple of guard IR tuples
        self.effects = effects  # tuple of effect IR tuples


class _Segment:
    """A compiled segment: replay function plus metadata."""

    __slots__ = ("fn", "first_op", "n_ops", "total_cycles", "loops")

    def __init__(self, fn, first_op, n_ops, total_cycles, loops) -> None:
        self.fn = fn
        self.first_op = first_op
        self.n_ops = n_ops
        self.total_cycles = total_cycles
        self.loops = loops


class SegmentSpace:
    """Per-runtime segment cache: lookup, recording, replay."""

    def __init__(self, runtime) -> None:
        from repro.core.api import _WORK_CACHE

        self.rt = runtime
        self._work_cache = _WORK_CACHE
        self._by_code: Dict[Any, Dict[int, Any]] = {}
        table = runtime.world._costs
        insn = table[costs.INSN]
        self._c_lock = (
            table[costs.PROTOCOL_CHECK] + table[costs.MUTEX_FAST_LOCK]
            + 7 * insn
        )
        self._c_unlock = (
            table[costs.PROTOCOL_CHECK] + table[costs.MUTEX_FAST_UNLOCK]
        )
        self._c_signal = (
            table[costs.ENTER_KERNEL] + table[costs.COND_SIGNAL_WORK]
            + table[costs.LEAVE_KERNEL]
        )
        self._c_self = 2 * insn
        # exec.segment.* counters (harvested into BENCH_host.json and
        # ``python -m repro.obs report``).
        self.segments_compiled = 0
        self.hits = 0
        self.misses = 0
        self.steps_replayed = 0
        self.cycles_replayed = 0
        self.invalidations = 0
        self.recordings = 0
        self.record_failures = 0

    # -- introspection -----------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """The ``exec.segment.*`` counter block."""
        return {
            "exec.segment.compiled": self.segments_compiled,
            "exec.segment.hits": self.hits,
            "exec.segment.misses": self.misses,
            "exec.segment.steps_replayed": self.steps_replayed,
            "exec.segment.cycles_replayed": self.cycles_replayed,
            "exec.segment.invalidations": self.invalidations,
            "exec.segment.recordings": self.recordings,
            "exec.segment.record_failures": self.record_failures,
        }

    # -- the executor hook -------------------------------------------------

    def try_step(self, tcb, frame) -> bool:
        """Attempt to serve the current executor step from the cache.

        Returns True when the step (and possibly many following steps)
        was fully performed -- bookkeeping included -- and False when
        the caller must interpret normally.
        """
        gen = frame.gen
        gi = gen.gi_frame
        if gi is None:
            return False
        by_code = self._by_code
        table = by_code.get(gen.gi_code)
        if table is None:
            by_code[gen.gi_code] = table = {}
        lasti = gi.f_lasti
        entry = table.get(lasti)
        if entry is _BLACKLISTED:
            return False
        rt = self.rt
        if frame.pending_exc is not None:
            return False
        world = rt.world
        if (
            world.clock._watchers
            or world.choices is not None
            or world.trace is not None
            or rt.policy is not None
            or rt.check is not None
        ):
            return False
        kern = rt.kern
        if (
            kern.kernel_flag
            or kern.dispatcher_flag
            or kern.deferred_signals
            or kern.deferred_upcalls
            or tcb.pending_interrupt_frames
        ):
            return False
        if type(entry) is _Variants:
            return self._replay(tcb, frame, entry, table, lasti)
        if entry is None:
            table[lasti] = entry = _LocState()
        entry.visits += 1
        if entry.visits >= _RECORD_AFTER:
            entry.visits = 0
            if (
                entry.fails >= _MAX_FAILS
                or self.segments_compiled >= _MAX_SEGMENTS
            ):
                table[lasti] = _BLACKLISTED
                return False
            return self._record(tcb, frame, table, lasti, None)
        return False

    # -- replay ------------------------------------------------------------

    def _bounds(self) -> Tuple[Optional[int], int, int]:
        rt = self.rt
        limit = rt.world.events.next_time()
        until = rt._until_cycles
        if until is None:
            until = _NO_BOUND
        max_steps = rt._max_steps
        budget = _NO_BOUND if max_steps is None else max_steps - rt.steps
        return limit, until, budget

    def _replay(self, tcb, frame, variants, table, lasti) -> bool:
        rt = self.rt
        clock = rt.world.clock
        limit, until, budget = self._bounds()
        value = frame.pending_value
        frame.pending_value = None
        op = None
        total = 0
        scan = 0
        while True:
            seg = None
            i = scan
            n_var = len(variants)
            while i < n_var:
                cand = variants[i]
                if op is None or cand.first_op is op:
                    seg = cand
                    break
                i += 1
            if seg is None:
                break
            t_before = clock.cycles
            code, n, t, val, op = seg.fn(
                rt, tcb, frame, value, limit, until, budget, op
            )
            if n:
                clock.cycles = t
                rt.steps += n
                tcb.cpu_cycles += t - t_before
                self.cycles_replayed += t - t_before
                total += n
                if budget is not _NO_BOUND:
                    budget -= n
                if i:
                    variants.insert(0, variants.pop(i))
                scan = 0
            else:
                scan = i + 1
            if code == 0:
                if op is None:
                    frame.pending_value = val
                    if total:
                        self.hits += 1
                        self.steps_replayed += total
                        return True
                    return False
                value = None
                continue
            # Terminal resume outcomes: mirror _step_current exactly.
            if total:
                self.hits += 1
                self.steps_replayed += total
            rt.steps += 1
            started = clock.cycles
            if code == 2:
                rt._frame_returned(tcb, frame, val)
                tcb.cpu_cycles += clock.cycles - started
                return True
            if code == 3:
                rt._frame_raised(tcb, frame, val)
                tcb.cpu_cycles += clock.cycles - started
                return True
            if code == 4:
                raise val
            raise ProgramCrash(frame.name, val) from val
        if op is not None:
            # No variant takes the in-hand op: interpret it here (the
            # send already happened).  Repeated mismatches grow a new
            # variant recorded from the in-hand op.
            self.misses += 1
            if total:
                self.hits += 1
                self.steps_replayed += total
            variants.mismatches += 1
            if (
                variants.mismatches >= _VARIANT_AFTER
                and len(variants) < _MAX_VARIANTS
                and self.segments_compiled < _MAX_SEGMENTS
            ):
                variants.mismatches = 0
                return self._record(tcb, frame, table, lasti, op)
            rt._dispatch_op(tcb, frame, op)
            return True
        frame.pending_value = value
        if total:
            self.hits += 1
            self.steps_replayed += total
            return True
        self.misses += 1
        return False

    # -- recording ---------------------------------------------------------

    def _record(self, tcb, frame, table, lasti, inhand) -> bool:
        """Interpret ops (through the normal runtime entry points),
        certifying each; compile the certified run into a segment.

        The steps are *performed* regardless of whether certification
        succeeds, so this is always a complete executor step (or
        several) from the caller's point of view.
        """
        rt = self.rt
        self.recordings += 1
        world = rt.world
        clock = world.clock
        events = world.events
        kern = rt.kern
        frames = tcb.frames._frames
        steps: List[_SegStep] = []
        closed = False
        op = inhand
        while len(steps) < _MAX_OPS:
            pre_clock = clock.cycles
            pre_seq = events._seq
            pre_live = events._live
            pre_enters = kern.enters
            pre_dispatch = rt.dispatcher.dispatch_calls
            rt.steps += 1
            if op is None:
                try:
                    value = frame.pending_value
                    frame.pending_value = None
                    op = frame.gen.send(value)
                except StopIteration as stop:
                    rt._frame_returned(tcb, frame, stop.value)
                    tcb.cpu_cycles += clock.cycles - pre_clock
                    break
                except SimException as exc:
                    rt._frame_raised(tcb, frame, exc)
                    tcb.cpu_cycles += clock.cycles - pre_clock
                    break
                except ProgramCrash:
                    raise
                except BaseException as crash:  # noqa: BLE001
                    raise ProgramCrash(frame.name, crash) from crash
            op_class = op.__class__
            if op_class is Work:
                frame.remaining_work = op.cycles
                rt._do_work(tcb, frame)
            elif op_class is LibCall:
                rt._libcall(tcb, frame, op)
                tcb.cpu_cycles += clock.cycles - pre_clock
            elif op_class is SysCall:
                rt._unix_syscall(tcb, frame, op)
                tcb.cpu_cycles += clock.cycles - pre_clock
            elif op_class is Invoke:
                rt._push_invoke(tcb, op)
                tcb.cpu_cycles += clock.cycles - pre_clock
            elif isinstance(op, (Work, LibCall, SysCall, Invoke)):
                rt._step_op_subclass(tcb, frame, op, pre_clock)
                break  # subclassed ops are never certified
            else:
                raise ProgramCrash(
                    frame.name, TypeError("bad op yielded: %r" % (op,))
                )
            done = op
            op = None
            if (
                rt.current is not tcb
                or not frames
                or frames[-1] is not frame
                or frame.pending_exc is not None
                or frame.remaining_work
                or kern.kernel_flag
                or kern.dispatcher_flag
            ):
                break
            step = self._certify(
                tcb, frame, done,
                pre_clock, pre_seq, pre_live, pre_enters, pre_dispatch,
            )
            if step is None:
                break
            steps.append(step)
            gi = frame.gen.gi_frame
            if gi is not None and gi.f_lasti == lasti:
                closed = True
                break
        if len(steps) >= _MIN_OPS:
            seg = self._compile(steps, closed)
            if seg is not None:
                entry = table.get(lasti)
                if type(entry) is _Variants:
                    entry.insert(0, seg)
                else:
                    table[lasti] = _Variants([seg])
                self.segments_compiled += 1
                return True
        entry = table.get(lasti)
        if type(entry) is _LocState:
            entry.fails += 1
            if entry.fails >= _MAX_FAILS:
                table[lasti] = _BLACKLISTED
        self.record_failures += 1
        return True

    # -- certification -----------------------------------------------------

    def _certify(
        self, tcb, frame, op,
        pre_clock, pre_seq, pre_live, pre_enters, pre_dispatch,
    ) -> Optional[_SegStep]:
        rt = self.rt
        world = rt.world
        events = world.events
        if events._seq != pre_seq or events._live != pre_live:
            return None  # an event was scheduled, cancelled, or fired
        delta = world.clock.cycles - pre_clock
        op_class = op.__class__
        if op_class is Work:
            if self._work_cache.get(op.cycles) is not op:
                return None
            if delta != op.cycles or frame.pending_value is not None:
                return None
            if rt.kern.enters != pre_enters:
                return None
            return _SegStep(op, "none", delta, (), ())
        if op_class is not LibCall:
            return None
        name = op.name
        result = frame.pending_value
        if name == "mutex_lock":
            m = op.args[0]
            if getattr(m, "_seg_lock_op", None) is not op:
                return None
            seq = m.lock_sequence
            if (
                result != 0
                or m.protocol != cfg.PRIO_NONE
                or m.destroyed
                or m.owner is not tcb
                or m.cell.value != 0xFF
                or seq.interrupt_hook is not None
                or rt.kern.enters != pre_enters
                or delta != self._c_lock
            ):
                return None
            return _SegStep(
                op, "zero", delta,
                (
                    ("not_attr", m, "destroyed"),
                    ("attr_is_none", m, "owner"),
                    ("attr_eq", m.cell, "value", 0),
                    ("attr_is_none", seq, "interrupt_hook"),
                ),
                (
                    ("inc", seq, "runs", 1),
                    ("set_const", m.cell, "value", 0xFF),
                    ("set_tcb", m, "owner"),
                    ("inc", m, "acquisitions", 1),
                    ("held_append", m, None),
                ),
            )
        if name == "mutex_unlock":
            m = op.args[0]
            if getattr(m, "_seg_unlock_op", None) is not op:
                return None
            if (
                result != 0
                or m.protocol != cfg.PRIO_NONE
                or m.destroyed
                or m.owner is not None
                or m.cell.value != 0
                or m.waiters
                or rt.kern.enters != pre_enters
                or delta != self._c_unlock
            ):
                return None
            return _SegStep(
                op, "zero", delta,
                (
                    ("not_attr", m, "destroyed"),
                    ("attr_is_tcb", m, "owner"),
                    ("empty", m.waiters, None),
                ),
                (
                    ("set_const", m.cell, "value", 0),
                    ("set_none", m, "owner"),
                    ("held_remove", m, None),
                ),
            )
        if name == "cond_signal":
            c = op.args[0]
            if getattr(c, "_seg_signal_op", None) is not op:
                return None
            if (
                result != 0
                or c.destroyed
                or c.waiters
                or rt.kern.enters != pre_enters + 1
                or rt.dispatcher.dispatch_calls != pre_dispatch
                or delta != self._c_signal
            ):
                return None
            return _SegStep(
                op, "zero", delta,
                (
                    ("not_attr", c, "destroyed"),
                    ("empty", c.waiters, None),
                ),
                (
                    ("inc", rt.kern, "enters", 1),
                    ("inc", c, "signals_sent", 1),
                ),
            )
        if name == "self":
            if getattr(rt._pt, "_seg_self_op", None) is not op:
                return None
            if (
                result is not tcb
                or rt.kern.enters != pre_enters
                or delta != self._c_self
            ):
                return None
            return _SegStep(op, "tcb", delta, (), ())
        return None

    # -- compilation -------------------------------------------------------

    def _compile(self, steps: List[_SegStep], closed: bool):
        """Generate and exec the replay function for a certified run.

        The generated code keeps no per-op bookkeeping: every exit site
        (op mismatch, exception, clean stop) statically knows how many
        ops completed and how many cycles they cost, so the hot loop is
        just sends, identity checks, and -- for loop segments -- one
        add per iteration.  Loop segments whose per-iteration effects
        net-restore every guarded field defer all effect application:
        counters are applied once at exit (``delta * iterations``) and
        mid-iteration exits carry statically-known fix-up assignments.
        """
        env_names: Dict[int, str] = {}
        env_objs: List[Any] = []

        def ref(obj) -> str:
            name = env_names.get(id(obj))
            if name is None:
                name = "v%d" % len(env_objs)
                env_names[id(obj)] = name
                env_objs.append(obj)
            return name

        n_ops = len(steps)
        total = sum(s.cycles for s in steps)
        lit = {"none": "None", "zero": "0", "tcb": "tcb"}

        # Pass 1: entry guards, symbolic state, aggregated effects, and
        # a per-site snapshot of the prefix state (for loop fix-ups).
        entry_guards: List[str] = []
        guard_expect: Dict[Tuple[str, str], Any] = {}
        sym: Dict[Tuple[str, str], Any] = {}
        state_now: Dict[Tuple[str, str], Any] = {}
        counter_now: Dict[Tuple[str, str], int] = {}
        held_now: List[Tuple[str, str]] = []
        held_balance: Dict[str, int] = {}
        uses_held = False
        prefix_cycles: List[int] = []
        snapshots = []
        op_refs: List[str] = []
        effect_lines: List[List[str]] = []
        cycles_so_far = 0

        for step in steps:
            op_refs.append(ref(step.op))
            prefix_cycles.append(cycles_so_far)
            snapshots.append(
                (dict(state_now), dict(counter_now), list(held_now))
            )
            for g in step.guards:
                kind, obj, attr = g[0], g[1], g[2]
                nm = ref(obj)
                var = (nm, attr if attr is not None else "__bool__")
                if kind == "not_attr":
                    expr, expect = "not %s.%s" % (nm, attr), False
                elif kind == "attr_is_none":
                    expr, expect = "%s.%s is None" % (nm, attr), "none"
                elif kind == "attr_is_tcb":
                    expr, expect = "%s.%s is tcb" % (nm, attr), "tcb"
                elif kind == "attr_eq":
                    expr, expect = "%s.%s == %r" % (nm, attr, g[3]), g[3]
                elif kind == "empty":
                    expr, expect = "not %s" % nm, False
                else:  # pragma: no cover - unknown guard kind
                    return None
                if var in sym:
                    if sym[var] != expect:
                        return None  # guard cannot hold mid-segment
                elif var not in guard_expect:
                    guard_expect[var] = expect
                    entry_guards.append(expr)
            lines: List[str] = []
            for e in step.effects:
                kind, obj = e[0], e[1]
                nm = ref(obj)
                if kind == "held_append":
                    uses_held = True
                    held_now.append(("append", nm))
                    held_balance[nm] = held_balance.get(nm, 0) + 1
                    lines.append("held.append(%s)" % nm)
                    continue
                if kind == "held_remove":
                    uses_held = True
                    held_now.append(("remove", nm))
                    held_balance[nm] = held_balance.get(nm, 0) - 1
                    lines.append("held.remove(%s)" % nm)
                    continue
                attr = e[2]
                var = (nm, attr)
                if kind == "inc":
                    counter_now[var] = counter_now.get(var, 0) + e[3]
                    sym[var] = "opaque"
                    lines.append("%s.%s += %r" % (nm, attr, e[3]))
                elif kind == "set_const":
                    state_now[var] = e[3]
                    sym[var] = e[3]
                    lines.append("%s.%s = %r" % (nm, attr, e[3]))
                elif kind == "set_tcb":
                    state_now[var] = "tcb"
                    sym[var] = "tcb"
                    lines.append("%s.%s = tcb" % (nm, attr))
                elif kind == "set_none":
                    state_now[var] = "none"
                    sym[var] = "none"
                    lines.append("%s.%s = None" % (nm, attr))
                else:  # pragma: no cover - unknown effect kind
                    return None
            effect_lines.append(lines)
            cycles_so_far += step.cycles

        # A closed run compiles to a loop only when every guarded field
        # is provably restored by one full iteration (then guards hoist
        # out of the loop and effects defer to the exits).
        loops = closed
        if loops:
            for var, expect in guard_expect.items():
                final = sym.get(var)
                if final is not None and final != expect:
                    loops = False
                    break
            if any(held_balance.values()):
                loops = False
            if set(counter_now) & set(state_now):
                loops = False

        out: List[Tuple[int, str]] = []

        def emit(indent: int, text: str) -> None:
            out.append((indent, text))

        def render_tok(tok) -> str:
            if tok == "tcb":
                return "tcb"
            if tok == "none":
                return "None"
            return repr(tok)

        def fixup(indent: int, i: int) -> None:
            """State/counter/held repair for 'i ops completed'."""
            if not loops:
                return  # linear mode applies effects inline
            state, cnt, held_ops = snapshots[i]
            for (nm, attr), tok in state.items():
                emit(indent, "%s.%s = %s" % (nm, attr, render_tok(tok)))
            for verb, nm in held_ops:
                emit(indent, "held.%s(%s)" % (verb, nm))
            for (nm, attr), prefix in cnt.items():
                full = counter_now.get((nm, attr), 0)
                if full and prefix:
                    emit(
                        indent,
                        "%s.%s += %d * it + %d" % (nm, attr, full, prefix),
                    )
                elif full:
                    emit(indent, "%s.%s += %d * it" % (nm, attr, full))
                elif prefix:
                    emit(indent, "%s.%s += %d" % (nm, attr, prefix))
            # Counters whose first touch is after site i still owe the
            # completed-iterations part.
            for (nm, attr), full in counter_now.items():
                if (nm, attr) not in cnt and full:
                    emit(indent, "%s.%s += %d * it" % (nm, attr, full))

        def n_expr(i: int) -> str:
            if loops:
                if i:
                    return "%d * it + %d" % (n_ops, i)
                return "%d * it" % n_ops
            return "%d" % i

        def t_expr(i: int) -> str:
            p = prefix_cycles[i]
            if loops:
                return "t + %d" % p if p else "t"
            return "t + %d" % p if p else "t"

        def classify(indent: int, i: int) -> None:
            fixup(indent, i)
            n_s, t_s = n_expr(i), t_expr(i)
            emit(indent, "if isinstance(exc, StopIteration):")
            emit(indent + 1, "return (2, %s, %s, exc.value, None)" % (n_s, t_s))
            emit(indent, "if isinstance(exc, SimException):")
            emit(indent + 1, "return (3, %s, %s, exc, None)" % (n_s, t_s))
            emit(indent, "if isinstance(exc, ProgramCrash):")
            emit(indent + 1, "return (4, %s, %s, exc, None)" % (n_s, t_s))
            emit(indent, "return (5, %s, %s, exc, None)" % (n_s, t_s))

        def op_block(indent: int, i: int) -> None:
            # The generator body runs inside each send and may read
            # ``world.now``: publish the exact interpreted clock (the
            # charge of every completed op) before resuming it, or
            # mid-segment time observations would see a stale clock.
            if i == 0:
                emit(indent, "if op is None:")
                emit(indent + 1, "ck.cycles = t")
                emit(indent + 1, "try:")
                emit(indent + 2, "op = send(value)")
                emit(indent + 1, "except BaseException as exc:")
                classify(indent + 2, 0)
            else:
                p = prefix_cycles[i]
                emit(indent, "ck.cycles = t + %d" % p if p else "ck.cycles = t")
                emit(indent, "try:")
                emit(indent + 1, "op = send(%s)" % lit[steps[i - 1].result])
                emit(indent, "except BaseException as exc:")
                classify(indent + 1, i)
            emit(indent, "if op is not %s:" % op_refs[i])
            fixup(indent + 1, i)
            emit(
                indent + 1,
                "return (0, %s, %s, None, op)" % (n_expr(i), t_expr(i)),
            )
            if not loops:
                for line in effect_lines[i]:
                    emit(indent, line)

        emit(0, "def _make(env):")
        if env_objs:
            emit(
                1,
                "(%s,) = env"
                % ", ".join("v%d" % j for j in range(len(env_objs))),
            )
        emit(
            1,
            "def _replay(rt, tcb, frame, value, limit, until, budget, op):",
        )
        emit(2, "ck = rt.world.clock")
        emit(2, "t = ck.cycles")
        if entry_guards:
            emit(2, "if not (%s):" % " and ".join(entry_guards))
            emit(3, "return (0, 0, t, value, op)")
        if loops:
            emit(2, "k = budget // %d" % n_ops)
            emit(2, "if limit is not None:")
            emit(3, "k2 = (limit - t - 1) // %d" % total)
            emit(3, "if k2 < k:")
            emit(4, "k = k2")
            emit(2, "if until != %d:" % _NO_BOUND)
            emit(3, "k2 = (until - t - 1) // %d" % total)
            emit(3, "if k2 < k:")
            emit(4, "k = k2")
            emit(2, "if k <= 0:")
            emit(3, "return (0, 0, t, value, op)")
        else:
            emit(
                2,
                "if %d > budget or (limit is not None and t + %d >= limit)"
                " or (until != %d and t + %d >= until):"
                % (n_ops, total, _NO_BOUND, total),
            )
            emit(3, "return (0, 0, t, value, op)")
        emit(2, "send = frame.gen.send")
        if uses_held:
            emit(2, "held = tcb.held_mutexes")
        if loops:
            emit(2, "it = 0")
            emit(2, "while it < k:")
            for i in range(n_ops):
                op_block(3, i)
            emit(3, "value = %s" % lit[steps[-1].result])
            emit(3, "op = None")
            emit(3, "t += %d" % total)
            emit(3, "it += 1")
            for (nm, attr), full in counter_now.items():
                if full:
                    emit(2, "%s.%s += %d * it" % (nm, attr, full))
            emit(2, "return (0, %d * it, t, value, None)" % n_ops)
        else:
            for i in range(n_ops):
                op_block(2, i)
            emit(
                2,
                "return (0, %d, t + %d, %s, None)"
                % (n_ops, total, lit[steps[-1].result]),
            )
        emit(1, "return _replay")

        code = "\n".join("    " * ind + text for ind, text in out) + "\n"
        namespace = {
            "SimException": SimException,
            "ProgramCrash": ProgramCrash,
        }
        # The generated source depends only on segment *structure*
        # (op kinds, costs, guard constants) -- captured objects enter
        # through the _make(env) closure.  Identical workloads therefore
        # regenerate identical source across runtimes and repeats, so a
        # process-wide source->code-object cache turns the ~1ms
        # compile() into a dict hit.
        code_obj = _SOURCE_CACHE.get(code)
        if code_obj is None:
            try:
                code_obj = compile(code, "<segment>", "exec")
            except SyntaxError:  # pragma: no cover - codegen bug guard
                import sys

                print(code, file=sys.stderr)
                raise
            if len(_SOURCE_CACHE) < _SOURCE_CACHE_MAX:
                _SOURCE_CACHE[code] = code_obj
        exec(code_obj, namespace)  # noqa: S102
        fn = namespace["_make"](tuple(env_objs))
        return _Segment(fn, steps[0].op, n_ops, total, loops)
