"""The observability facade: one object wiring metrics + profile + trace.

Construct an :class:`Observability`, hand it to the runtime
(``PthreadsRuntime(obs=obs)``), run, then ask for :meth:`snapshot` or
:meth:`report`.  The runtime attaches the world-level pieces (cycle
profiler, trace sink) before the first cycle is spent, so attribution
covers the entire run and the category total equals the final virtual
clock exactly.

Counter sources are a hybrid, chosen for zero disabled cost:

- **live instruments** only where no persistent counter exists -- the
  ready-queue depth histogram is sampled by the dispatcher through a
  single ``runtime.obs is not None`` guard (the same idiom as the
  existing ``world.trace`` guards);
- **harvest at snapshot time** for everything the library already
  counts (context switches, window traps, signal deliveries and
  deferrals, fake calls, mutex contention, priority hand-offs,
  per-thread CPU cycles): reading those at the end costs the running
  simulation nothing at all.

Everything here observes the simulation; nothing advances the virtual
clock, which is what keeps the golden Table 2 snapshot bit-identical
with observability enabled.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.profile import CycleProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime
    from repro.sim.world import World


class Observability:
    """Metrics registry + cycle profiler + optional trace sink."""

    def __init__(
        self,
        metrics: bool = True,
        profile: bool = True,
        trace: Optional[object] = None,
    ) -> None:
        self.registry = MetricsRegistry() if metrics else NULL_REGISTRY
        self.profiler: Optional[CycleProfiler] = (
            CycleProfiler() if profile else None
        )
        self.trace = trace
        self.runtime: Optional["PthreadsRuntime"] = None
        # Live instruments (no-ops when metrics are disabled).
        self.dispatches = self.registry.counter(
            "sched.dispatches", help="dispatcher invocations"
        )
        self.ready_depth = self.registry.histogram(
            "sched.ready_depth", help="ready-queue depth at dispatch"
        )

    # -- attachment -------------------------------------------------------------

    def attach_world(self, world: "World") -> None:
        """World-level wiring; call before any cycle is spent."""
        if self.trace is not None:
            self.trace.attach(world.clock)
            world.trace = self.trace
        if self.profiler is not None and not self.profiler.attached:
            self.profiler.attach_world(world)

    def attach(self, runtime: "PthreadsRuntime") -> None:
        """Bind to a runtime (world wiring happens here if it has not)."""
        self.runtime = runtime
        runtime.obs = self
        if self.profiler is not None:
            self.profiler.attach_runtime(runtime)
        if self.trace is not None and runtime.world.trace is None:
            self.trace.attach(runtime.world.clock)
            runtime.world.trace = self.trace

    # -- live hooks --------------------------------------------------------------

    def on_dispatch(self, runtime: "PthreadsRuntime") -> None:
        """Called by the dispatcher (guarded; never on the disabled path)."""
        self.dispatches.inc()
        self.ready_depth.observe(len(runtime.sched.ready))

    # -- harvest -----------------------------------------------------------------

    def harvest(self) -> None:
        """Copy the library's persistent counters into the registry."""
        runtime = self.runtime
        if runtime is None or not self.registry.enabled:
            return
        registry = self.registry
        world = runtime.world

        def put(name: str, value: int, help: str = "") -> None:
            registry.counter(name, help=help).set(value)

        dispatcher = runtime.dispatcher
        put("sched.context_switches", dispatcher.context_switches,
            "thread context switches performed")
        put("sched.dispatch_calls", dispatcher.dispatch_calls,
            "dispatcher entries (Figure 2)")
        put("sched.signal_restarts", dispatcher.signal_restarts,
            "dispatches restarted by deferred signals")
        put("kernel.enters", runtime.kern.enters,
            "library kernel critical sections")
        put("executor.steps", runtime.steps, "executor steps retired")

        windows = world.windows
        put("hw.window_flush_traps", windows.flush_traps,
            "ST_FLUSH_WINDOWS traps (context switches, setjmp)")
        put("hw.window_underflow_traps", windows.underflow_traps,
            "window underflow/fill traps")
        put("hw.window_overflow_traps", windows.overflow_traps,
            "window overflow traps (deep call chains)")

        sigdeliver = runtime.sigdeliver
        put("signals.delivered", sigdeliver.delivered_to_threads,
            "signals delivered to a thread")
        put("signals.deferred", runtime.kern.deferred_total,
            "signals caught while the kernel flag was set")
        put("signals.process_pended", sigdeliver.pended_on_process,
            "signals pended on the process (rule 6)")
        put("signals.fake_calls", runtime.fakecalls.installed,
            "user-handler wrapper frames installed")

        put("mutex.contentions", runtime.mutex_ops.contentions,
            "lock attempts that blocked")
        put("mutex.handoffs", runtime.mutex_ops.handoffs,
            "direct owner-to-waiter transfers")
        put("protocol.boosts", runtime.protocols.boosts,
            "priority raises (inheritance/ceiling)")
        put("protocol.unboosts", runtime.protocols.unboosts,
            "priority restorations at unlock")

        put("unix.syscalls", runtime.unix.total_syscalls,
            "UNIX kernel calls made by the library")

        events = world.events
        put("exec.events.batch_pops", events.batch_pops,
            "event-horizon drains that popped a same-timestamp batch")
        put("exec.events.batched_events", events.batched_events,
            "events retired through batched pops")
        put("exec.events.max_batch", events.max_batch,
            "largest same-timestamp batch drained")

        segments = runtime._segments
        if segments is not None:
            # exec.segment.*: the executor's replay cache.  All-zero
            # counters under a cycle profiler are expected -- the
            # profiler's clock watcher makes the cache bypass itself so
            # attribution stays per-spend exact (run ``report`` with
            # ``--no-profile`` to observe the cache at work).
            helps = {
                "exec.segment.compiled": "straight-line segments compiled",
                "exec.segment.hits": "executor steps served by replay",
                "exec.segment.misses": "replay attempts that fell back",
                "exec.segment.steps_replayed": "ops retired via replay",
                "exec.segment.cycles_replayed":
                    "virtual cycles charged in batches",
                "exec.segment.invalidations": "segments discarded",
                "exec.segment.recordings": "certification passes started",
                "exec.segment.record_failures":
                    "certification passes abandoned",
            }
            for nm, value in segments.counters().items():
                put(nm, value, helps.get(nm, ""))

        pool = runtime.pool
        put("pool.hits", pool.hits, "TCB/stack cache hits at create")
        put("pool.misses", pool.misses,
            "creates that paid full allocation (cold stack)")
        put("pool.returns", pool.returns,
            "TCB/stack pairs returned to the cache at reclaim")

        net = getattr(runtime, "net", None)
        if net is not None:
            put("net.connections_opened", net.connections_opened,
                "connections established through the accept queue")
            put("net.connections_refused", net.connections_refused,
                "connects refused (no listener or backlog full)")
            put("net.messages_delivered", net.messages_delivered,
                "messages delivered into receive buffers")
            put("net.bytes_delivered", net.bytes_delivered,
                "payload bytes delivered")
            put("net.eof_delivered", net.eof_delivered,
                "orderly end-of-stream deliveries")
            put("net.completions_sigio", net.sigio_completions,
                "blocking-call completions via SIGIO")
            put("net.completions_first_class", net.fc_completions,
                "blocking-call completions via the first-class channel")
            put("net.backpressure_stalls", net.backpressure_stalls,
                "sends that blocked on a full peer buffer")
            put("net.select_calls", net.select_calls,
                "select syscalls issued")
            put("net.epoll.instances", net.epoll_instances,
                "epoll interest lists created")
            put("net.epoll.ctl_calls", net.epoll_ctl_calls,
                "interest-list add/del operations")
            put("net.epoll.waits", net.epoll_waits,
                "epoll_wait syscalls issued")
            put("net.epoll.wakeups", net.epoll_wakeups,
                "parked epoll waiters completed by a readiness edge")
            put("net.epoll.edges", net.epoll_edges,
                "readiness edges pushed into interest lists")
            put("net.epoll.ready_returned", net.epoll_ready_returned,
                "descriptors reported ready by waits")
            put("net.epoll.stale_dropped", net.epoll_stale_dropped,
                "ready entries found unreadable at wait time")
            resident = net.resident
            if resident is not None:
                helps = {
                    "loadgen.resident.spawned":
                        "kernel-resident client records created",
                    "loadgen.resident.active":
                        "clients currently holding an open connection",
                    "loadgen.resident.peak_active":
                        "high-water mark of concurrently open clients",
                    "loadgen.resident.completed":
                        "clients that finished every request and closed",
                    "loadgen.resident.refused":
                        "client connects refused by the listener",
                    "loadgen.resident.requests_sent": "requests sent",
                    "loadgen.resident.replies": "replies received",
                }
                for nm, value in resident.counters().items():
                    put(nm, value, helps.get(nm, ""))

        check = runtime.check
        if check is not None:
            put("check.invariant_checks", check.checks_run,
                "invariant sweeps at kernel releases")
            put("check.violations", check.violations_found,
                "invariant rules that fired")

        if world.smp is not None:
            self.harvest_smp(world.smp)

        for tcb in runtime.threads.values():
            safe = tcb.name.replace(" ", "_")
            put("thread.cpu_cycles.%s" % safe, tcb.cpu_cycles)
            put("thread.switches_in.%s" % safe, tcb.context_switches_in)

    def harvest_smp(self, smp: Any) -> None:
        """Copy an SMP world's counters into metrics.

        Called from :meth:`harvest` when the attached runtime's world
        is multiprocessor, and directly by the lock-zoo tooling (which
        runs on the SMP executor with no Pthreads runtime at all).
        """
        if smp is None or not self.registry.enabled:
            return
        registry = self.registry

        def put(name: str, value: int, help: str = "") -> None:
            registry.counter(name, help=help).set(value)

        helps = {
            "smp.ipis_sent": "interprocessor interrupts sent",
            "smp.ipis_delivered": "interprocessor interrupts delivered",
            "smp.line_bounces": "exclusive cache-line transfers",
            "smp.line_transfers_near": "line transfers within a chip",
            "smp.line_transfers_far": "line transfers across chips",
            "smp.line_shared_joins": "read copies joining a sharer set",
            "smp.migrations": "tasks pulled across CPU run queues",
            "smp.spin_cycles": "cycles burned spinning on lines",
        }
        for name, value in smp.counters().items():
            put(name, value, helps.get(name, ""))
        registry.gauge("smp.ncpus", help="simulated processors").set(smp.ncpus)
        for cpu in smp.cpus:
            put("smp.cpu_cycles.cpu%d" % cpu.index, cpu.clock.cycles,
                "local clock of CPU %d" % cpu.index)

    def harvest_fleet(self, stats: Any) -> None:
        """Copy a sweep's :class:`repro.fleet.FleetStats` into metrics.

        Fleet stats describe a whole sweep, not one runtime, so this is
        separate from :meth:`harvest` and needs no attached runtime.
        """
        if stats is None or not self.registry.enabled:
            return
        registry = self.registry

        def put(name: str, value: int, help: str = "") -> None:
            registry.counter(name, help=help).set(value)

        registry.gauge(
            "fleet.jobs", help="worker processes the sweep ran on"
        ).set(stats.jobs)
        put("fleet.tasks", stats.tasks,
            "sweep results consumed (sequential order)")
        put("fleet.fallbacks", stats.fallbacks,
            "tasks rerun in-process after a worker problem")
        put("fleet.speculative_waste", stats.speculative_waste,
            "speculative results the consumer never needed")
        put("fleet.snapshots_created", stats.snapshots_created,
            "prefix checkpoints forked and registered")
        put("fleet.snapshot_hits", stats.snapshot_hits,
            "runs resumed from a checkpoint instead of from scratch")
        put("fleet.snapshot_evictions", stats.snapshot_evictions,
            "checkpoints discarded by the LRU bound")
        put("fleet.steps_executed", stats.steps_executed,
            "simulator steps actually executed by the sweep")
        put("fleet.steps_full", stats.steps_full,
            "steps replay-from-scratch would have executed")

    # -- results -----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Harvest and return a plain-data view of everything."""
        self.harvest()
        out: Dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.profiler is not None:
            out["profile"] = self.profiler.snapshot()
        runtime = self.runtime
        if runtime is not None:
            out["elapsed_cycles"] = runtime.world.now
            out["elapsed_us"] = runtime.world.now_us
        return out

    def report(self) -> str:
        """Human-readable run report: metrics table + attribution."""
        self.harvest()
        sections = []
        runtime = self.runtime
        if runtime is not None:
            world = runtime.world
            sections.append(
                "run: model=%s  elapsed=%d cycles (%.2f us)  steps=%d"
                % (world.model.name, world.now, world.now_us, runtime.steps)
            )
        sections.append("-- metrics " + "-" * 45)
        sections.append(self.registry.render())
        if self.profiler is not None:
            sections.append("-- cycle attribution " + "-" * 35)
            sections.append(self.profiler.render())
        return "\n".join(sections)

    def __repr__(self) -> str:
        return "Observability(metrics=%s, profile=%s, trace=%s)" % (
            self.registry.enabled,
            self.profiler is not None,
            self.trace is not None,
        )
