"""The run-report CLI: ``python -m repro.obs <command>``.

Runs any standard :mod:`repro.bench.workloads` workload with full
observability attached and reports on it::

    python -m repro.obs report   --workload lock_storm
    python -m repro.obs report   --workload lock_storm --format json
    python -m repro.obs trace    --workload signal_storm --out trace.json
    python -m repro.obs trace    --workload pipeline --format jsonl --out t.jsonl
    python -m repro.obs timeline --workload lock_storm --width 100
    python -m repro.obs list

``report`` prints the metrics table and the per-category cycle
attribution, and verifies the attribution invariant: the category
total equals the run's final virtual clock, cycle for cycle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bench import workloads
from repro.debug.trace import Tracer
from repro.obs.core import Observability
from repro.obs.export import (
    ascii_timeline,
    write_chrome_trace,
    write_jsonl,
)

#: name -> (factory(scale) -> workload main, main-thread priority).
WORKLOADS: Dict[str, Tuple[Callable[[int], Callable], int]] = {
    "lock_storm": (
        lambda scale: workloads.lock_storm(threads=8, iterations=25 * scale),
        100,
    ),
    "signal_storm": (
        lambda scale: workloads.signal_storm(victims=4, rounds=100 * scale),
        50,
    ),
    "pipeline": (
        lambda scale: workloads.pipeline(stages=4, items=25 * scale),
        100,
    ),
    "fan_out_fan_in": (
        lambda scale: workloads.fan_out_fan_in(workers=8, chunks=4 * scale),
        100,
    ),
    "create_join_churn": (
        lambda scale: workloads.create_join_churn(rounds=12 * scale, burst=8),
        100,
    ),
}


def run_observed(
    workload: str,
    model: str = "sparc-ipx",
    scale: int = 1,
    trace: Optional[object] = None,
    profile: bool = True,
) -> Tuple[Observability, Dict[str, Any]]:
    """Run one named workload with observability attached."""
    try:
        factory, priority = WORKLOADS[workload]
    except KeyError:
        raise SystemExit(
            "unknown workload %r (have: %s)"
            % (workload, ", ".join(sorted(WORKLOADS)))
        )
    obs = Observability(trace=trace, profile=profile)
    stats = workloads.run_workload(
        factory(scale), model=model, priority=priority, obs=obs
    )
    return obs, stats


def _check_attribution(obs: Observability) -> None:
    """The acceptance invariant: categories sum to the virtual clock."""
    profiler = obs.profiler
    if profiler is None:
        return
    total = profiler.total_cycles
    span = profiler.attributed_span()
    if total != span:
        raise SystemExit(
            "cycle attribution lost cycles: categories sum to %d but the "
            "clock advanced %d" % (total, span)
        )


def cmd_report(args: argparse.Namespace) -> int:
    obs, stats = run_observed(
        args.workload, model=args.model, scale=args.scale,
        profile=not args.no_profile,
    )
    _check_attribution(obs)
    if args.format == "json":
        # Machine-readable snapshot: counter values diff cleanly and
        # the bench harness ingests them without parsing ASCII.
        import json

        payload = obs.snapshot()
        payload["workload"] = args.workload
        payload["model"] = args.model
        payload["scale"] = args.scale
        payload["context_switches"] = stats["context_switches"]
        payload["syscalls"] = stats["syscalls"]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(obs.report())
    if obs.profiler is not None:
        print(
            "attribution check: %d cycles attributed == %d on the clock"
            % (obs.profiler.total_cycles, obs.profiler.attributed_span())
        )
    print(
        "workload summary: %.2f simulated us, %d context switches, "
        "%d syscalls"
        % (stats["elapsed_us"], stats["context_switches"], stats["syscalls"])
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    tracer = Tracer(limit=args.limit)
    obs, stats = run_observed(
        args.workload, model=args.model, scale=args.scale, trace=tracer
    )
    world = obs.runtime.world
    if args.format == "chrome":
        write_chrome_trace(
            args.out, tracer,
            us_per_cycle=1.0 / world.model.mhz, end_time=world.now,
        )
    else:
        write_jsonl(args.out, tracer)
    print(
        "wrote %s (%d records, %d dropped, %.2f simulated us)"
        % (args.out, len(tracer), tracer.dropped, stats["elapsed_us"])
    )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    tracer = Tracer(kinds=None, limit=args.limit)
    obs, _ = run_observed(
        args.workload, model=args.model, scale=args.scale, trace=tracer
    )
    world = obs.runtime.world
    print(
        ascii_timeline(
            tracer,
            end_time=world.now,
            us_per_cycle=1.0 / world.model.mhz,
            width=args.width,
        )
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    del args
    for name in sorted(WORKLOADS):
        print(name)
    return 0


def _common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--workload", required=True, help="see `list`")
    sub.add_argument("--model", default="sparc-ipx")
    sub.add_argument("--scale", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    subs = parser.add_subparsers(dest="command", required=True)

    report = subs.add_parser("report", help="metrics + cycle attribution")
    _common(report)
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: machine-readable snapshot (diffable; ingestible by "
        "the repro.bench harness via records_from_metrics)",
    )
    report.add_argument(
        "--no-profile",
        action="store_true",
        help="skip cycle attribution; the segment cache stays live, so "
        "the exec.segment.* counters show real replay activity",
    )
    report.set_defaults(fn=cmd_report)

    trace = subs.add_parser("trace", help="export a trace file")
    _common(trace)
    trace.add_argument("--format", choices=("chrome", "jsonl"), default="chrome")
    trace.add_argument("--out", default="trace.json")
    trace.add_argument("--limit", type=int, default=200_000)
    trace.set_defaults(fn=cmd_trace)

    timeline = subs.add_parser("timeline", help="ASCII who-ran-when")
    _common(timeline)
    timeline.add_argument("--width", type=int, default=72)
    timeline.add_argument("--limit", type=int, default=200_000)
    timeline.set_defaults(fn=cmd_timeline)

    lst = subs.add_parser("list", help="available workloads")
    lst.set_defaults(fn=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
