"""Observability: metrics, cycle attribution, trace export, run reports.

The paper's entire evaluation is observability -- Table 2 is a latency
breakdown and Figure 5 a who-ran-when timeline.  This package makes
that kind of evidence first-class for any run of the reproduction:

- :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket histograms
  with zero-cost no-op stubs when disabled;
- :mod:`repro.obs.profile` -- attributes every virtual cycle to a
  category and a thread (the "where did the cycles go" breakdown);
- :mod:`repro.obs.export` -- Chrome/Perfetto trace JSON, JSONL
  streaming, ASCII timelines;
- :mod:`repro.obs.core` -- the :class:`Observability` facade the
  runtime accepts via ``PthreadsRuntime(obs=...)``;
- ``python -m repro.obs`` -- the run-report CLI.

Everything is off by default and nothing in this package ever advances
the virtual clock: simulated time is bit-identical with observability
on or off (enforced by the golden Table 2 snapshot test).
"""

from repro.obs.core import Observability
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.profile import CATEGORIES, CycleProfiler
from repro.obs.export import (
    JsonlSink,
    ascii_timeline,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "CATEGORIES",
    "CycleProfiler",
    "JsonlSink",
    "ascii_timeline",
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]
