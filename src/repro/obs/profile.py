"""Cycle attribution: where did the virtual cycles go?

Table 2 of the paper is a latency breakdown of primitive operations;
this module produces the complementary whole-run view -- every cycle
the virtual clock advances is attributed to one category (compute,
window traps, syscalls, signal delivery, scheduling, synchronization,
memory, miscellaneous library work, idle) and to the thread that was
current when it was spent.

Mechanism: the profiler registers a clock *watcher*, so it sees every
advance, and shadows ``World.spend``/``spend_cycles`` with
instance-level wrappers that set the ambient category (derived from
the cost key being charged) around the original call.  Direct
``clock.advance`` calls -- user work bursts, the restartable atomic
sequences -- land in the ambient category, which defaults to
``compute``.  The register-window methods and the idle advance are
wrapped the same way so trap and idle cycles are labelled precisely.

Two invariants make this admissible instrumentation:

- the profiler never advances the clock itself, so simulated time is
  bit-identical with and without it (the golden Table 2 snapshot test
  runs with it attached);
- detached (the default), no wrapper and no watcher exists, so the
  disabled cost is zero.

The total across categories equals the cycles the clock advanced while
attached -- exactly, by construction, since every advance passes
through the watcher once.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.hw import costs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime
    from repro.sim.world import World

# Categories, in report order.
COMPUTE = "compute"
WINDOW_TRAPS = "window-traps"
SYSCALLS = "syscalls"
SIGNAL_DELIVERY = "signal-delivery"
SCHEDULING = "scheduling"
SYNCHRONIZATION = "synchronization"
MEMORY = "memory"
SMP = "smp"
LIBRARY_MISC = "library-misc"
IDLE = "idle"

CATEGORIES = (
    COMPUTE,
    WINDOW_TRAPS,
    SYSCALLS,
    SIGNAL_DELIVERY,
    SCHEDULING,
    SYNCHRONIZATION,
    MEMORY,
    SMP,
    LIBRARY_MISC,
    IDLE,
)

#: Cost key -> category.  Every key in ``hw.costs`` appears here; a key
#: added there without a category falls back to ``library-misc`` (the
#: consistency test pins the explicit mapping to the cost table).
CATEGORY_OF_KEY: Dict[str, str] = {
    # Raw instructions execute as part of whatever the thread is doing.
    costs.INSN: COMPUTE,
    costs.CALL: COMPUTE,
    costs.RET: COMPUTE,
    costs.LDSTUB: COMPUTE,
    costs.CAS: COMPUTE,
    # Register-window traps.
    costs.FLUSH_WINDOWS_TRAP: WINDOW_TRAPS,
    costs.WINDOW_UNDERFLOW_TRAP: WINDOW_TRAPS,
    costs.WINDOW_OVERFLOW_TRAP: WINDOW_TRAPS,
    costs.WINDOW_FILL_TRAP: WINDOW_TRAPS,
    costs.WINDOW_REGS: WINDOW_TRAPS,
    # The UNIX kernel interface.
    costs.SYSCALL: SYSCALLS,
    costs.GETPID_WORK: SYSCALLS,
    costs.SIGSETMASK_WORK: SYSCALLS,
    costs.SIGACTION_WORK: SYSCALLS,
    costs.SETITIMER_WORK: SYSCALLS,
    costs.KILL_WORK: SYSCALLS,
    costs.SBRK_WORK: SYSCALLS,
    costs.PROC_SWITCH: SYSCALLS,
    # Network syscalls (repro.unix.net) -- in-kernel work per service.
    costs.SOCKET_WORK: SYSCALLS,
    costs.BIND_WORK: SYSCALLS,
    costs.ACCEPT_WORK: SYSCALLS,
    costs.CONNECT_WORK: SYSCALLS,
    costs.SEND_WORK: SYSCALLS,
    costs.RECV_WORK: SYSCALLS,
    costs.SELECT_WORK: SYSCALLS,
    costs.SELECT_PER_FD: SYSCALLS,
    costs.EPOLL_WORK: SYSCALLS,
    costs.EPOLL_CTL_WORK: SYSCALLS,
    costs.EPOLL_WAIT_WORK: SYSCALLS,
    costs.EPOLL_PER_READY: SYSCALLS,
    costs.NET_DELIVER: SYSCALLS,
    # Signal machinery (UNIX delivery and the library's own model).
    costs.UNIX_SIGNAL_DELIVER: SIGNAL_DELIVERY,
    costs.UNIX_SIGRETURN: SIGNAL_DELIVERY,
    costs.SIG_RECIPIENT_RULES: SIGNAL_DELIVERY,
    costs.SIG_ACTION_RULES: SIGNAL_DELIVERY,
    costs.FAKE_CALL_SETUP: SIGNAL_DELIVERY,
    costs.WRAPPER_OVERHEAD: SIGNAL_DELIVERY,
    costs.SIG_LOG_IN_KERNEL: SIGNAL_DELIVERY,
    costs.SIG_MASK_OP: SIGNAL_DELIVERY,
    # Library kernel, dispatcher, ready queue.
    costs.ENTER_KERNEL: SCHEDULING,
    costs.LEAVE_KERNEL: SCHEDULING,
    costs.DISPATCH_SELECT: SCHEDULING,
    costs.DISPATCH_OVERHEAD: SCHEDULING,
    costs.READY_ENQUEUE: SCHEDULING,
    costs.READY_DEQUEUE: SCHEDULING,
    costs.ERRNO_SWITCH: SCHEDULING,
    costs.PRIO_ADJUST: SCHEDULING,
    costs.TIMER_TICK: SCHEDULING,
    # Synchronization objects.
    costs.MUTEX_FAST_LOCK: SYNCHRONIZATION,
    costs.MUTEX_FAST_UNLOCK: SYNCHRONIZATION,
    costs.MUTEX_SLOW_EXTRA: SYNCHRONIZATION,
    costs.MUTEX_TRANSFER: SYNCHRONIZATION,
    costs.PROTOCOL_CHECK: SYNCHRONIZATION,
    costs.COND_WAIT_SETUP: SYNCHRONIZATION,
    costs.COND_SIGNAL_WORK: SYNCHRONIZATION,
    costs.SEM_OVERHEAD: SYNCHRONIZATION,
    # Memory and the thread pool.
    costs.HEAP_ALLOC: MEMORY,
    costs.HEAP_FREE: MEMORY,
    costs.POOL_POP: MEMORY,
    costs.POOL_PUSH: MEMORY,
    costs.TCB_INIT: MEMORY,
    costs.STACK_SETUP: MEMORY,
    costs.STACK_FAULT_IN: MEMORY,
    # Multiprocessor coherence and cross-CPU signalling.
    costs.LINE_TRANSFER_NEAR: SMP,
    costs.LINE_TRANSFER_FAR: SMP,
    costs.LINE_SHARED_JOIN: SMP,
    costs.SPIN_READ: SMP,
    costs.IPI_SEND: SMP,
    costs.IPI_RECEIVE: SMP,
    costs.IPI_LATENCY: SMP,
    costs.SMP_MIGRATE: SMP,
    costs.SMP_DISPATCH: SMP,
    # Everything else in the library.
    costs.SETJMP_SAVE: LIBRARY_MISC,
    costs.LONGJMP_RESTORE: LIBRARY_MISC,
    costs.CREATE_MISC: LIBRARY_MISC,
    costs.JOIN_WORK: LIBRARY_MISC,
    costs.EXIT_WORK: LIBRARY_MISC,
    costs.DETACH_WORK: LIBRARY_MISC,
    costs.CANCEL_WORK: LIBRARY_MISC,
    costs.TSD_OP: LIBRARY_MISC,
    costs.ONCE_OP: LIBRARY_MISC,
    costs.CLEANUP_OP: LIBRARY_MISC,
    costs.ATTR_OP: LIBRARY_MISC,
}


class CycleProfiler:
    """Attributes every clock advance to a category and a thread."""

    def __init__(self) -> None:
        self.by_category: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self.by_thread: Dict[str, int] = {}
        self.start_cycles = 0
        self._category = COMPUTE
        self._world: Optional["World"] = None
        self._runtime: Optional["PthreadsRuntime"] = None
        self._saved: Dict[str, object] = {}

    @property
    def attached(self) -> bool:
        return self._world is not None

    # -- attachment ----------------------------------------------------------

    def attach_world(self, world: "World") -> None:
        """Install the watcher and the category-scoping wrappers.

        Attach before the first cycle is spent (the runtime does this
        right after building the world) so the category totals cover
        the whole run and sum to the final clock exactly.
        """
        if self._world is not None:
            raise RuntimeError("profiler is already attached")
        self._world = world
        self.start_cycles = world.clock.cycles
        world.clock.add_watcher(self._on_advance)
        self._wrap_spend(world)
        self._wrap_windows(world.windows)
        self._wrap_idle(world)

    def attach_runtime(self, runtime: "PthreadsRuntime") -> None:
        """Bind the runtime whose ``current`` names the running thread."""
        self._runtime = runtime
        if self._world is None:
            self.attach_world(runtime.world)

    def detach(self) -> None:
        """Remove the watcher and restore the wrapped methods."""
        world = self._world
        if world is None:
            return
        world.clock.remove_watcher(self._on_advance)
        for name, target in self._saved.items():
            obj, attr = target  # type: ignore[misc]
            try:
                delattr(obj, attr)
            except AttributeError:
                pass
        self._saved.clear()
        self._world = None
        self._runtime = None

    # -- the watcher -----------------------------------------------------------

    def _on_advance(self, before: int, after: int) -> None:
        delta = after - before
        self.by_category[self._category] += delta
        runtime = self._runtime
        if runtime is not None:
            current = runtime.current
            name = current.name if current is not None else "<kernel>"
        else:
            name = "<world>"
        threads = self.by_thread
        threads[name] = threads.get(name, 0) + delta

    # -- wrappers --------------------------------------------------------------

    def _wrap_spend(self, world: "World") -> None:
        orig_spend = world.spend
        orig_spend_cycles = world.spend_cycles
        category_of = CATEGORY_OF_KEY

        def spend(key: str, times: int = 1, fire: bool = True) -> None:
            prev = self._category
            self._category = category_of.get(key, LIBRARY_MISC)
            try:
                orig_spend(key, times, fire)
            finally:
                self._category = prev

        def spend_cycles(cycles: int, fire: bool = True) -> None:
            # Raw charges (work bursts, loop overhead) stay in the
            # ambient category -- compute unless inside a wrapped scope.
            orig_spend_cycles(cycles, fire)

        world.spend = spend  # type: ignore[method-assign]
        world.spend_cycles = spend_cycles  # type: ignore[method-assign]
        self._saved["spend"] = (world, "spend")
        self._saved["spend_cycles"] = (world, "spend_cycles")

    def _wrap_windows(self, windows) -> None:
        """Label the register-window trap cycles.

        ``flush``/``switch_in`` are pure trap work.  ``save``/``restore``
        are ordinary call/return instructions *unless* the window file
        overflows/underflows, so the wrapper checks the trap condition
        (the same test the methods themselves make) and only relabels
        when a trap will actually be taken.
        """
        orig_flush = windows.flush
        orig_switch_in = windows.switch_in
        orig_save = windows.save
        orig_restore = windows.restore

        def scoped(fn):
            def wrapper():
                prev = self._category
                self._category = WINDOW_TRAPS
                try:
                    fn()
                finally:
                    self._category = prev
            return wrapper

        def save():
            if windows._active == windows._usable:
                scoped_save()
            else:
                orig_save()

        def restore():
            if windows._active <= 1:
                scoped_restore()
            else:
                orig_restore()

        scoped_save = scoped(orig_save)
        scoped_restore = scoped(orig_restore)
        windows.flush = scoped(orig_flush)
        windows.switch_in = scoped(orig_switch_in)
        windows.save = save
        windows.restore = restore
        for attr in ("flush", "switch_in", "save", "restore"):
            self._saved["windows." + attr] = (windows, attr)

    def _wrap_idle(self, world: "World") -> None:
        orig = world.advance_to_next_event

        def advance_to_next_event() -> None:
            prev = self._category
            self._category = IDLE
            try:
                orig()
            finally:
                self._category = prev

        world.advance_to_next_event = advance_to_next_event  # type: ignore[method-assign]
        self._saved["advance_to_next_event"] = (world, "advance_to_next_event")

    # -- results ----------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(self.by_category.values())

    def attributed_span(self) -> int:
        """Cycles the clock advanced while attached (the oracle the
        category total must match exactly)."""
        if self._world is None:
            return self.total_cycles
        return self._world.clock.cycles - self.start_cycles

    def snapshot(self) -> Dict[str, object]:
        return {
            "by_category": {
                c: self.by_category[c] for c in CATEGORIES
                if self.by_category[c]
            },
            "by_thread": dict(
                sorted(self.by_thread.items(), key=lambda kv: -kv[1])
            ),
            "total_cycles": self.total_cycles,
            "start_cycles": self.start_cycles,
        }

    def render(self, us_per_cycle: Optional[float] = None) -> str:
        """The Table-2-style "where did the cycles go" breakdown."""
        total = self.total_cycles
        if total == 0:
            return "(no cycles attributed)"
        if us_per_cycle is None and self._world is not None:
            us_per_cycle = 1.0 / self._world.model.mhz
        lines = ["%-16s %14s %12s %7s" % ("CATEGORY", "CYCLES", "US", "%")]
        for category in CATEGORIES:
            cycles = self.by_category[category]
            if cycles == 0:
                continue
            us = cycles * us_per_cycle if us_per_cycle else 0.0
            lines.append(
                "%-16s %14d %12.2f %6.1f%%"
                % (category, cycles, us, 100.0 * cycles / total)
            )
        lines.append(
            "%-16s %14d %12.2f %6.1f%%"
            % ("total", total, total * (us_per_cycle or 0.0), 100.0)
        )
        lines.append("")
        lines.append("%-16s %14s %12s %7s" % ("THREAD", "CYCLES", "US", "%"))
        for name, cycles in sorted(
            self.by_thread.items(), key=lambda kv: -kv[1]
        ):
            us = cycles * us_per_cycle if us_per_cycle else 0.0
            lines.append(
                "%-16s %14d %12.2f %6.1f%%"
                % (name, cycles, us, 100.0 * cycles / total)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "CycleProfiler(total=%d, attached=%s)" % (
            self.total_cycles, self.attached,
        )
