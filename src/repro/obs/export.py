"""Trace exporters: Chrome trace-event JSON, JSONL streaming, ASCII.

Three ways out of the in-memory :class:`~repro.debug.trace.Tracer`:

- :func:`chrome_trace` builds a Chrome trace-event document (the
  ``traceEvents`` array format) from the dispatch segments plus one
  instant event per remaining record.  Load the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` to get the paper's
  Figure 5 "who ran when" picture interactively.
- :class:`JsonlSink` is a *streaming* trace sink: it duck-types the
  ``Tracer`` emit interface (``attach``/``emit``) and writes one JSON
  object per line as records happen, so unbounded runs need no memory.
  :func:`write_jsonl` dumps an existing tracer in the same schema.
- :func:`ascii_timeline` renders the timeline as text, generalising
  ``debug/inspector.py``'s per-thread rows with an event-marker row.

Timestamps: the tracer records virtual *cycles*; Chrome's ``ts`` field
is microseconds, so exporters take ``us_per_cycle`` (``1 / model.mhz``)
and keep full precision as floats.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, List, Optional

from repro.debug.inspector import Timeline
from repro.debug.trace import Tracer

#: Synthetic tid for records that carry no thread field (process-scope
#: events such as ``process-terminated``).
PROCESS_TID = 0


def _thread_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable thread-name -> tid mapping, in order of first appearance."""
    ids: Dict[str, int] = {}
    for record in tracer:
        name = record.get("thread")
        if isinstance(name, str) and name not in ids:
            ids[name] = len(ids) + 1
    return ids


def chrome_trace(
    tracer: Tracer,
    us_per_cycle: float = 1.0,
    end_time: Optional[int] = None,
    pid: int = 1,
    process_name: str = "pthreads",
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from a tracer.

    Dispatch records become complete ("X") duration events -- one per
    execution segment, on the row of the thread that ran -- and every
    other record becomes an instant ("i") event on its thread's row
    (process scope when the record names no thread).
    """
    tids = _thread_ids(tracer)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": PROCESS_TID,
            "args": {"name": process_name},
        }
    ]
    for name, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    timeline = Timeline(tracer, end_time=end_time)
    for segment in timeline.segments:
        if segment.thread == "<idle>":
            continue
        events.append(
            {
                "name": "run",
                "cat": "dispatch",
                "ph": "X",
                "ts": segment.start * us_per_cycle,
                "dur": segment.length * us_per_cycle,
                "pid": pid,
                "tid": tids.get(segment.thread, PROCESS_TID),
                "args": {"thread": segment.thread},
            }
        )
    for record in tracer:
        if record.kind == "dispatch":
            continue  # rendered as the duration events above
        thread = record.get("thread")
        tid = tids.get(thread, PROCESS_TID) if isinstance(thread, str) else PROCESS_TID
        events.append(
            {
                "name": record.kind,
                "cat": "trace",
                "ph": "i",
                "ts": record.time * us_per_cycle,
                "pid": pid,
                "tid": tid,
                "s": "t" if tid != PROCESS_TID else "p",
                "args": dict(record.fields),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    us_per_cycle: float = 1.0,
    end_time: Optional[int] = None,
) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    document = chrome_trace(tracer, us_per_cycle=us_per_cycle, end_time=end_time)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1, default=repr)
        fh.write("\n")


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def _record_payload(time: int, kind: str, fields: Dict[str, Any]) -> Dict[str, Any]:
    return {"t": time, "kind": kind, **fields}


def jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One JSON object per record: ``{"t": cycles, "kind": ..., ...}``."""
    for record in tracer:
        yield json.dumps(
            _record_payload(record.time, record.kind, record.fields),
            default=repr,
        )


def write_jsonl(path: str, tracer: Tracer) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line)
            fh.write("\n")


class JsonlSink:
    """A streaming trace sink writing JSONL as records are emitted.

    Drop-in for the ``trace=`` slot of the runtime/world: implements
    ``attach(clock)`` and ``emit(kind, **fields)``, holds no records in
    memory, and never advances the clock.
    """

    def __init__(self, fh: IO[str], kinds: Optional[List[str]] = None) -> None:
        self._fh = fh
        self._kinds = set(kinds) if kinds else None
        self._clock: Optional[object] = None
        self.emitted = 0

    def attach(self, clock: object) -> None:
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        time = getattr(self._clock, "cycles", 0) if self._clock else 0
        json.dump(_record_payload(time, kind, fields), self._fh, default=repr)
        self._fh.write("\n")
        self.emitted += 1


# ---------------------------------------------------------------------------
# ASCII
# ---------------------------------------------------------------------------


def ascii_timeline(
    tracer: Tracer,
    end_time: Optional[int] = None,
    us_per_cycle: float = 1.0,
    width: int = 72,
    markers: bool = True,
) -> str:
    """Text timeline: per-thread execution rows plus an event row.

    Generalises ``Timeline.render``: the extra ``events`` row puts a
    ``*`` wherever any non-dispatch record fired, so signal deliveries
    and mutex hand-offs are visible against the execution segments.
    """
    timeline = Timeline(tracer, end_time=end_time)
    art = timeline.render(us_per_cycle=us_per_cycle, width=width)
    if not markers or not timeline.segments:
        return art
    t0 = timeline.segments[0].start
    t1 = max(s.end for s in timeline.segments)
    span = max(t1 - t0, 1)
    row = [" "] * width
    count = 0
    for record in tracer:
        if record.kind == "dispatch":
            continue
        if record.time < t0 or record.time > t1:
            continue
        slot = int((record.time - t0) * (width - 1) / span)
        row[slot] = "*"
        count += 1
    if count:
        art += "\n%-12s |%s|" % ("(events)", "".join(row))
    return art
