"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's evaluation is built from counted events (context switches,
signals, kernel entries) and measured intervals; this module gives the
reproduction a first-class home for those numbers.  Instrumentation
sites obtain an instrument once (``registry.counter("...")``) and call
``inc``/``set``/``observe`` on the hot path.

When observability is disabled the registry is :data:`NULL_REGISTRY`,
whose factory methods hand back shared no-op instruments: instrumented
code keeps running unchanged and the disabled cost is one attribute
load plus an empty method call -- or nothing at all at the sites that
guard on ``runtime.obs is None``, which is the idiom used on executor
hot paths (mirroring the existing ``world.trace is not None`` guards).

Nothing in this module touches the virtual clock: metrics observe the
simulation, they never advance it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram buckets (upper bounds); chosen for queue depths
#: and small event counts.  Callers time cycle-scale quantities with
#: explicit buckets instead.
DEFAULT_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (used when harvesting an existing
        subsystem counter into the registry at snapshot time)."""
        self.value = value

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """A value that goes up and down (queue depth, live threads)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are upper bounds in ascending order; observations above
    the last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "total", "max")

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must ascend: %r" % (bounds,))
        self.name = name
        self.help = help
        self.buckets = bounds
        #: Per-bucket counts; one extra slot for the overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.max: Number = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.2f, max=%r)" % (
            self.name, self.count, self.mean, self.max,
        )


# ---------------------------------------------------------------------------
# No-op stubs: the disabled registry hands these out so instrumented
# code needs no conditionals of its own.
# ---------------------------------------------------------------------------


class NullCounter:
    __slots__ = ()
    name = help = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: int) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = help = "<null>"
    value = 0

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = help = "<null>"
    buckets: Tuple[Number, ...] = ()
    counts: List[int] = []
    count = 0
    total = 0
    max = 0
    mean = 0.0

    def observe(self, value: Number) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first request."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = Histogram(
                name, buckets=buckets, help=help
            )
        elif not isinstance(existing, Histogram):
            raise TypeError(
                "metric %r already registered as %s"
                % (name, type(existing).__name__)
            )
        return existing

    def _get(self, name: str, cls: type, help: str = "") -> object:
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = cls(name, help=help)
        elif not isinstance(existing, cls):
            raise TypeError(
                "metric %r already registered as %s"
                % (name, type(existing).__name__)
            )
        return existing

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument (JSON-serialisable)."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "total": metric.total,
                    "mean": round(metric.mean, 3),
                    "max": metric.max,
                    "buckets": {
                        ("<=%g" % bound): metric.counts[i]
                        for i, bound in enumerate(metric.buckets)
                    },
                    "overflow": metric.counts[-1],
                }
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self) -> str:
        """Aligned text table, one instrument per row."""
        if not self._metrics:
            return "(no metrics)"
        rows = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                value = "n=%d mean=%.2f max=%g" % (
                    metric.count, metric.mean, metric.max,
                )
            else:
                value = "%g" % metric.value  # type: ignore[union-attr]
            rows.append((name, value, getattr(metric, "help", "")))
        width = max(len(name) for name, _, _ in rows)
        vwidth = max(len(value) for _, value, _ in rows)
        lines = []
        for name, value, help in rows:
            lines.append(
                "%-*s  %*s%s"
                % (width, name, vwidth, value, ("  # " + help) if help else "")
            )
        return "\n".join(lines)


class NullRegistry:
    """The disabled registry: every factory returns a shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> NullGauge:
        return NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> NullHistogram:
        return NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {}

    def render(self) -> str:
        return "(metrics disabled)"


NULL_REGISTRY = NullRegistry()
