"""Four server architectures over the simulated sockets.

Each architecture is the paper's thread model applied to a classic
server shape:

- **thread-per-connection** -- the acceptor spawns a fresh thread for
  every accepted connection; thread creation cost (TCB + stack, or a
  pool hit) is paid on the accept path.
- **pool** -- a fixed set of worker threads takes connections from a
  condvar-protected work queue; the acceptor only accepts and
  enqueues, so accept latency stays flat while queue wait absorbs the
  load.
- **select** -- a single dispatcher thread multiplexes the listening
  socket and every connected socket through ``select``; no
  per-connection threads at all, the fewest library threads and (with
  the first-class channel) the fewest signal deliveries -- but each
  scan probes every registered fd (O(n) ``SELECT_PER_FD``).
- **epoll** -- the select dispatcher with the kernel keeping the
  registrations (``epoll_create/ctl/wait``): wakeups cost O(ready),
  which is what lets one thread own 10^5 connections.

Every server serves the same protocol: receive a request message, burn
``service_cycles`` of application work, send a ``resp_bytes`` reply
echoing the request metadata (the load generator timestamps requests
through it), repeat until orderly EOF, then close.

All three mains are generator factories in the ``check.workloads``
style, so the scenario driver and the schedule explorer share them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Collector:
    """Virtual-time measurement sink shared by server and load layers.

    Reads ``world.now_us`` only -- appending to these lists never
    advances the clock, so an attached collector cannot perturb the
    schedule.
    """

    def __init__(self) -> None:
        self.requests_served = 0
        self.connections_served = 0
        self.queue_waits_us: List[float] = []  # pool: enqueue -> pickup
        self.latencies_us: List[float] = []  # loadgen: send -> reply
        self.refused = 0


class WorkQueue:
    """A condvar-protected queue of accepted connections (pool arch).

    Plain shared state guarded by ``mutex``/``cond`` exactly as the
    paper's library intends; the checker registers it (see
    :meth:`repro.check.invariants.CheckContext.register_workqueue`) and
    audits the enqueue/dequeue bookkeeping at every kernel release.
    """

    def __init__(self, name: str = "connq") -> None:
        self.name = name
        self.mutex: Any = None
        self.cond: Any = None
        self.items: List[Any] = []  # (conn_fd, enqueued_at_us)
        self.enqueued = 0
        self.dequeued = 0
        self.closed = False

    def __repr__(self) -> str:
        return "<WorkQueue %s depth=%d in=%d out=%d>" % (
            self.name,
            len(self.items),
            self.enqueued,
            self.dequeued,
        )


def _serve_connection(pt, conn_fd, service_cycles, resp_bytes, collector):
    """Request/reply loop on one connected socket, shared by all archs."""
    served = 0
    while True:
        err, msg = yield pt.recv(conn_fd)
        if err != 0 or msg is None:
            break  # orderly EOF (or the peer vanished)
        yield pt.work(service_cycles)
        meta = dict(msg.meta) if msg.meta else {}
        err, _sent = yield pt.send(conn_fd, resp_bytes, meta=meta)
        if err != 0:
            break
        served += 1
    yield pt.close(conn_fd)
    collector.requests_served += served
    collector.connections_served += 1


# -- thread-per-connection ---------------------------------------------------


def _conn_handler(pt, conn_fd, service_cycles, resp_bytes, collector):
    yield pt.call(
        _serve_connection, conn_fd, service_cycles, resp_bytes, collector
    )


def thread_per_connection(
    lfd: int,
    expected: int,
    collector: Collector,
    service_cycles: int = 400,
    resp_bytes: int = 1024,
):
    """Acceptor spawning one thread per accepted connection."""

    def server(pt):
        handlers = []
        for i in range(expected):
            err, conn_fd = yield pt.accept(lfd)
            assert err == 0, err
            handlers.append(
                (
                    yield pt.create(
                        _conn_handler,
                        conn_fd,
                        service_cycles,
                        resp_bytes,
                        collector,
                        name="conn-%d" % i,
                    )
                )
            )
        for handler in handlers:
            yield pt.join(handler)

    return server


# -- fixed thread pool over a work queue -------------------------------------


def _pool_worker(pt, wq, service_cycles, resp_bytes, collector):
    world = pt.runtime.world
    while True:
        yield pt.mutex_lock(wq.mutex)
        while not wq.items and not wq.closed:
            yield pt.cond_wait(wq.cond, wq.mutex)
        if not wq.items:  # closed and drained
            yield pt.mutex_unlock(wq.mutex)
            return
        conn_fd, enqueued_at = wq.items.pop(0)
        wq.dequeued += 1
        yield pt.mutex_unlock(wq.mutex)
        collector.queue_waits_us.append(world.now_us - enqueued_at)
        yield pt.call(
            _serve_connection, conn_fd, service_cycles, resp_bytes, collector
        )


def pool_server(
    lfd: int,
    expected: int,
    collector: Collector,
    workers: int = 16,
    service_cycles: int = 400,
    resp_bytes: int = 1024,
):
    """Single acceptor feeding a fixed worker pool via a work queue."""

    def server(pt):
        world = pt.runtime.world
        wq = WorkQueue()
        wq.mutex = yield pt.mutex_init()
        wq.cond = yield pt.cond_init()
        check = getattr(pt.runtime, "check", None)
        if check is not None and hasattr(check, "register_workqueue"):
            check.register_workqueue(wq)
        crew = []
        for i in range(workers):
            crew.append(
                (
                    yield pt.create(
                        _pool_worker,
                        wq,
                        service_cycles,
                        resp_bytes,
                        collector,
                        name="worker-%d" % i,
                    )
                )
            )
        for _ in range(expected):
            err, conn_fd = yield pt.accept(lfd)
            assert err == 0, err
            yield pt.mutex_lock(wq.mutex)
            wq.items.append((conn_fd, world.now_us))
            wq.enqueued += 1
            yield pt.cond_signal(wq.cond)
            yield pt.mutex_unlock(wq.mutex)
        yield pt.mutex_lock(wq.mutex)
        wq.closed = True
        yield pt.cond_broadcast(wq.cond)
        yield pt.mutex_unlock(wq.mutex)
        for worker in crew:
            yield pt.join(worker)

    return server


# -- single-threaded select dispatcher ---------------------------------------


def select_server(
    lfd: int,
    expected: int,
    collector: Collector,
    service_cycles: int = 400,
    resp_bytes: int = 1024,
):
    """One dispatcher thread multiplexing every socket through select.

    No per-connection threads: readiness on the listening fd means
    accept, readiness on a connection fd means serve one request
    inline.  This is the fewest-threads, fewest-wakeups architecture;
    run it with the first-class completion channel to also make each
    wakeup cheapest.
    """

    def server(pt):
        conns: Dict[int, bool] = {}
        accepted = 0
        while accepted < expected or conns:
            fds = ([lfd] if accepted < expected else []) + list(conns)
            err, ready = yield pt.select(fds)
            assert err == 0, err
            for fd in ready:
                if fd == lfd:
                    # Drain the accept queue: readiness is
                    # level-triggered, but each accept is a syscall.
                    while accepted < expected:
                        err, conn_fd = yield pt.accept(lfd)
                        assert err == 0, err
                        conns[conn_fd] = True
                        accepted += 1
                        ok, more = yield pt.select([lfd], timeout_us=0)
                        if ok != 0 or not more:
                            break
                    continue
                err, msg = yield pt.recv(fd)
                if err != 0 or msg is None:
                    yield pt.close(fd)
                    del conns[fd]
                    collector.connections_served += 1
                    continue
                yield pt.work(service_cycles)
                meta = dict(msg.meta) if msg.meta else {}
                err, _sent = yield pt.send(fd, resp_bytes, meta=meta)
                if err == 0:
                    collector.requests_served += 1

    return server


# -- single-threaded epoll dispatcher ----------------------------------------


def epoll_server(
    lfd: int,
    expected: int,
    collector: Collector,
    service_cycles: int = 400,
    resp_bytes: int = 1024,
):
    """One dispatcher thread owning every socket through an interest list.

    The select dispatcher pays ``SELECT_PER_FD`` for every registered
    fd on every scan -- O(n) per wakeup, quadratic across a run.  Here
    the kernel keeps the registrations and pushes readiness edges, so
    each wakeup costs O(ready): the architecture that lets one thread
    own 100k+ descriptors.  Registrations are made once per fd
    (``epoll_ctl add`` after accept); closing a connection drops its
    registration inside the kernel, so recycled fds never inherit
    stale interest.  Readiness is level-triggered, exactly like the
    select dispatcher: one request is served per ready report, and a
    socket with more buffered data simply reports ready again.
    """

    def server(pt):
        conns: Dict[int, bool] = {}
        accepted = 0
        epfd = yield pt.epoll_create()
        err = yield pt.epoll_ctl(epfd, "add", lfd)
        assert err == 0, err
        while accepted < expected or conns:
            err, ready = yield pt.epoll_wait(epfd)
            assert err == 0, err
            if lfd in ready:
                # Accepts first: epoll reports readiness in edge-arrival
                # order, so under an arrival burst the listener would
                # otherwise starve behind connection serving (select
                # gets this for free -- fd order puts the listener
                # first).
                ready = [lfd] + [fd for fd in ready if fd != lfd]
            for fd in ready:
                if fd == lfd:
                    # Drain the accept queue (same policy as the
                    # select dispatcher: readiness is level-triggered,
                    # each accept is a syscall, a one-fd probe checks
                    # for more).  Every accepted fd is registered once;
                    # the kernel keeps the interest from here on.
                    while accepted < expected:
                        err, conn_fd = yield pt.accept(lfd)
                        assert err == 0, err
                        err = yield pt.epoll_ctl(epfd, "add", conn_fd)
                        assert err == 0, err
                        conns[conn_fd] = True
                        accepted += 1
                        ok, more = yield pt.select([lfd], timeout_us=0)
                        if ok != 0 or not more:
                            break
                    if accepted >= expected:
                        yield pt.epoll_ctl(epfd, "del", lfd)
                    continue
                err, msg = yield pt.recv(fd)
                if err != 0 or msg is None:
                    yield pt.close(fd)
                    del conns[fd]
                    collector.connections_served += 1
                    continue
                yield pt.work(service_cycles)
                meta = dict(msg.meta) if msg.meta else {}
                err, _sent = yield pt.send(fd, resp_bytes, meta=meta)
                if err == 0:
                    collector.requests_served += 1
        yield pt.close(epfd)

    return server


ARCHITECTURES = {
    "perconn": thread_per_connection,
    "pool": pool_server,
    "select": select_server,
    "epoll": epoll_server,
}


def build_server(
    arch: str,
    lfd: int,
    expected: int,
    collector: Collector,
    workers: int = 16,
    service_cycles: int = 400,
    resp_bytes: int = 1024,
):
    """Instantiate one of the architectures by name."""
    if arch not in ARCHITECTURES:
        raise ValueError(
            "unknown architecture %r (have: %s)"
            % (arch, ", ".join(sorted(ARCHITECTURES)))
        )
    kwargs: Dict[str, Any] = {
        "service_cycles": service_cycles,
        "resp_bytes": resp_bytes,
    }
    if arch == "pool":
        kwargs["workers"] = workers
    return ARCHITECTURES[arch](lfd, expected, collector, **kwargs)
