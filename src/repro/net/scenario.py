"""Server-under-load scenarios: build, run, and report in virtual time.

One scenario = one server architecture (:mod:`repro.net.servers`) under
one deterministic offered load (:mod:`repro.net.loadgen`) on one
machine model.  ``run_scenario`` constructs the runtime, attaches the
network stack, runs to completion, and folds the collectors into a
:class:`ScenarioReport` whose every number is derived from virtual time
and deterministic counters -- two runs with the same arguments render
byte-identical reports.

``build_main`` is split out so the schedule explorer can drive the same
program shape (:func:`repro.check.workloads` registers a pooled-server
workload built from it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.runtime import PthreadsRuntime
from repro.core.config import RuntimeConfig
from repro.fleet import FleetPool
from repro.net.loadgen import LoadGenerator
from repro.net.servers import Collector, build_server


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round((q / 100.0) * (len(ordered) - 1)))
    return ordered[rank]


@dataclass
class ScenarioReport:
    """Everything the CLI prints and the benchmarks persist."""

    arch: str
    model: str
    seed: int
    clients: int
    requests_per_client: int
    workers: int
    arrival: str
    # -- outcomes --
    elapsed_us: float = 0.0
    requests_served: int = 0
    replies: int = 0
    refused: int = 0
    connections_served: int = 0
    throughput_rps: float = 0.0  # replies per *virtual* second
    latency_mean_us: float = 0.0
    latency_p50_us: float = 0.0
    latency_p99_us: float = 0.0
    accept_wait_p50_us: float = 0.0
    accept_wait_p99_us: float = 0.0
    accept_depth_max: int = 0
    queue_wait_p50_us: float = 0.0
    queue_wait_p99_us: float = 0.0
    syscalls: int = 0
    context_switches: int = 0
    backpressure_stalls: int = 0
    completions_sigio: int = 0
    completions_fc: int = 0
    peak_clients: int = 0  # high-water mark of concurrently open clients
    epoll_waits: int = 0
    epoll_wakeups: int = 0
    epoll_ctl_calls: int = 0
    epoll_ready_returned: int = 0
    epoll_stale_dropped: int = 0
    syscall_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["syscall_counts"] = dict(self.syscall_counts)
        return out

    def render(self) -> str:
        lines = [
            "scenario: arch=%s model=%s seed=%d" % (self.arch, self.model, self.seed),
            "load: clients=%d requests/client=%d arrival=%s workers=%s"
            % (
                self.clients,
                self.requests_per_client,
                self.arrival,
                self.workers if self.arch == "pool" else "-",
            ),
            "elapsed            %12.1f us (virtual)" % self.elapsed_us,
            "requests served    %12d" % self.requests_served,
            "replies received   %12d" % self.replies,
            "connections        %12d (refused %d)"
            % (self.connections_served, self.refused),
            "throughput         %12.1f req/s (virtual)" % self.throughput_rps,
            "latency mean       %12.1f us" % self.latency_mean_us,
            "latency p50        %12.1f us" % self.latency_p50_us,
            "latency p99        %12.1f us" % self.latency_p99_us,
            "accept wait p50    %12.1f us" % self.accept_wait_p50_us,
            "accept wait p99    %12.1f us" % self.accept_wait_p99_us,
            "accept depth max   %12d" % self.accept_depth_max,
            "queue wait p50     %12.1f us" % self.queue_wait_p50_us,
            "queue wait p99     %12.1f us" % self.queue_wait_p99_us,
            "syscalls           %12d" % self.syscalls,
            "context switches   %12d" % self.context_switches,
            "backpressure stalls%12d" % self.backpressure_stalls,
            "completions        %12d sigio / %d first-class"
            % (self.completions_sigio, self.completions_fc),
            "peak clients       %12d" % self.peak_clients,
        ]
        if self.epoll_waits or self.epoll_ctl_calls:
            lines.append(
                "epoll              %12d waits / %d wakeups / %d ctl / "
                "%d ready / %d stale"
                % (
                    self.epoll_waits,
                    self.epoll_wakeups,
                    self.epoll_ctl_calls,
                    self.epoll_ready_returned,
                    self.epoll_stale_dropped,
                )
            )
        return "\n".join(lines)


def build_main(
    arch: str,
    collector: Collector,
    port: int = 80,
    clients: int = 8,
    requests_per_client: int = 2,
    workers: int = 4,
    backlog: Optional[int] = None,
    service_cycles: int = 400,
    req_bytes: int = 256,
    resp_bytes: int = 1024,
    arrival: str = "uniform",
    mean_gap_us: float = 40.0,
    burst: int = 8,
    think_us: float = 150.0,
    latency_us: float = 60.0,
    loadgen_box: Optional[dict] = None,
):
    """A workload main factory: server + load on the caller's runtime.

    The returned generator attaches a network stack to its own runtime
    on first resume (construction costs zero cycles), binds the
    listener *before* scheduling any client arrival, runs the chosen
    architecture to completion, and closes the listener.  Suitable both
    for :func:`run_scenario` (which attaches the stack itself, with the
    scenario's latency/first-class options) and for the explorer's
    workload registry (stateless: every invocation builds fresh state).
    """

    def main(pt):
        rt = pt.runtime
        if rt.net is None:
            rt.add_net_stack(latency_us=latency_us)
        lfd = yield pt.socket()
        err = yield pt.bind(lfd, port)
        assert err == 0, err
        err = yield pt.listen(lfd, backlog if backlog is not None else clients)
        assert err == 0, err
        gen = LoadGenerator(
            rt.net,
            port,
            clients,
            requests_per_client=requests_per_client,
            req_bytes=req_bytes,
            arrival=arrival,
            mean_gap_us=mean_gap_us,
            burst=burst,
            think_us=think_us,
            collector=collector,
        )
        if loadgen_box is not None:
            loadgen_box["gen"] = gen
        server_main = build_server(
            arch,
            lfd,
            clients,
            collector,
            workers=workers,
            service_cycles=service_cycles,
            resp_bytes=resp_bytes,
        )
        gen.start()  # listener is live; arrivals can never miss it
        server = yield pt.create(server_main, name="%s-server" % arch)
        yield pt.join(server)
        yield pt.close(lfd)

    return main


def run_scenario(
    arch: str = "pool",
    clients: int = 50,
    requests_per_client: int = 3,
    workers: int = 16,
    seed: int = 42,
    model: str = "sparc-ipx",
    port: int = 80,
    backlog: Optional[int] = None,
    service_cycles: int = 400,
    req_bytes: int = 256,
    resp_bytes: int = 1024,
    arrival: str = "poisson",
    mean_gap_us: float = 40.0,
    burst: int = 8,
    think_us: float = 150.0,
    latency_us: float = 60.0,
    first_class: Optional[bool] = None,
    pool_size: int = 64,
    obs: Optional[Any] = None,
) -> ScenarioReport:
    """Run one scenario to completion and fold the results.

    ``first_class`` selects the completion path: ``None`` (default)
    uses the Marsh & Scott channel for the single-dispatcher
    architectures (select and epoll) -- whose whole point is the
    fewest, cheapest wakeups -- and SIGIO (the paper's shipping
    design) for the thread-based ones.
    """
    if first_class is None:
        first_class = arch in ("select", "epoll")
    collector = Collector()
    rt = PthreadsRuntime(
        model=model,
        seed=seed,
        config=RuntimeConfig(pool_size=pool_size),
        obs=obs,
    )
    stack = rt.add_net_stack(latency_us=latency_us, first_class=first_class)
    box: dict = {}
    main = build_main(
        arch,
        collector,
        port=port,
        clients=clients,
        requests_per_client=requests_per_client,
        workers=workers,
        backlog=backlog,
        service_cycles=service_cycles,
        req_bytes=req_bytes,
        resp_bytes=resp_bytes,
        arrival=arrival,
        mean_gap_us=mean_gap_us,
        burst=burst,
        think_us=think_us,
        latency_us=latency_us,
        loadgen_box=box,
    )
    rt.main(main, priority=100)
    rt.run()
    gen = box["gen"]

    report = ScenarioReport(
        arch=arch,
        model=model if isinstance(model, str) else getattr(model, "name", "?"),
        seed=seed,
        clients=clients,
        requests_per_client=requests_per_client,
        workers=workers,
        arrival=arrival,
    )
    report.elapsed_us = rt.world.now_us
    report.requests_served = collector.requests_served
    report.replies = gen.replies
    report.refused = gen.refused
    report.connections_served = collector.connections_served
    if report.elapsed_us > 0:
        report.throughput_rps = gen.replies / (report.elapsed_us / 1e6)
    lat = gen.latencies_us
    if lat:
        report.latency_mean_us = sum(lat) / len(lat)
        report.latency_p50_us = percentile(lat, 50)
        report.latency_p99_us = percentile(lat, 99)
    accept_waits_us = [rt.world.us(c) for c in stack.accept_waits]
    report.accept_wait_p50_us = percentile(accept_waits_us, 50)
    report.accept_wait_p99_us = percentile(accept_waits_us, 99)
    report.accept_depth_max = max(stack.accept_depths, default=0)
    report.queue_wait_p50_us = percentile(collector.queue_waits_us, 50)
    report.queue_wait_p99_us = percentile(collector.queue_waits_us, 99)
    report.syscalls = rt.unix.total_syscalls
    report.context_switches = rt.dispatcher.context_switches
    report.backpressure_stalls = stack.backpressure_stalls
    report.completions_sigio = stack.sigio_completions
    report.completions_fc = stack.fc_completions
    report.peak_clients = gen.peak_concurrent_clients
    report.epoll_waits = stack.epoll_waits
    report.epoll_wakeups = stack.epoll_wakeups
    report.epoll_ctl_calls = stack.epoll_ctl_calls
    report.epoll_ready_returned = stack.epoll_ready_returned
    report.epoll_stale_dropped = stack.epoll_stale_dropped
    report.syscall_counts = dict(rt.unix.syscall_counts)

    if obs is not None:
        hist = obs.registry.histogram(
            "net.request_latency_us",
            help="end-to-end request latency (us)",
            buckets=(100, 250, 500, 1000, 2500, 5000, 10000, 25000),
        )
        for sample in lat:
            hist.observe(sample)
        obs.harvest()
    return report


def _scenario_task(params: Dict[str, Any]) -> ScenarioReport:
    """Run one comparison cell (module-level so workers can share it)."""
    return run_scenario(**params)


def compare_scenarios(
    cells: Sequence[Dict[str, Any]],
    jobs: int = 1,
    stats: Optional[Any] = None,
    oversubscribe: bool = False,
) -> List[ScenarioReport]:
    """Run a grid of scenarios; reports come back in cell order.

    Each cell is a ``run_scenario`` keyword dict.  Cells are fully
    independent simulated worlds, so ``jobs > 1`` fans them across a
    :class:`~repro.fleet.FleetPool` (capped at the host's core count
    unless ``oversubscribe``); because results are merged by cell
    index, the returned list -- and anything rendered from it -- is
    byte-identical to running the cells one by one.
    """
    with FleetPool(
        _scenario_task, jobs=jobs, stats=stats, oversubscribe=oversubscribe
    ) as pool:
        return list(pool.imap(list(cells)))
