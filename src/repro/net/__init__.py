"""Simulated multithreaded servers + deterministic load generation.

The top of the networking tentpole: three server architectures
(:mod:`repro.net.servers`) built from the thread library's own
primitives, driven by an open-loop kernel-resident load generator
(:mod:`repro.net.loadgen`), packaged into reproducible scenarios with
virtual-time reports (:mod:`repro.net.scenario`) and a CLI
(``python -m repro.net``).

Layering (see ``docs/NETWORKING.md``): the kernel half of the stack is
:mod:`repro.unix.net` (sockets, accept queues, link delays, select);
the library half is :mod:`repro.core.netlib` (thread-blocking entry
points over the non-blocking kernel services).
"""

from repro.net.loadgen import ARRIVALS, LoadGenerator
from repro.net.scenario import ScenarioReport, build_main, run_scenario
from repro.net.servers import (
    ARCHITECTURES,
    Collector,
    WorkQueue,
    build_server,
)

__all__ = [
    "ARRIVALS",
    "ARCHITECTURES",
    "Collector",
    "LoadGenerator",
    "ScenarioReport",
    "WorkQueue",
    "build_main",
    "build_server",
    "run_scenario",
]
