"""``python -m repro.net`` -- run a server-under-load scenario.

Everything printed is derived from virtual time and deterministic
counters; the same arguments always print the same report.

Examples::

    python -m repro.net serve --arch pool --clients 1000 --seed 42
    python -m repro.net serve --arch select --clients 200 --arrival bursty
    python -m repro.net serve --arch epoll --sf sf10
    python -m repro.net compare --clients 200
    python -m repro.net compare --sf sf1 --jobs 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.fleet import FleetStats
from repro.net.loadgen import ARRIVALS
from repro.net.scenario import compare_scenarios, run_scenario
from repro.net.servers import ARCHITECTURES


def _add_scenario_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--clients", type=int, default=50,
                     help="number of load-generator clients")
    sub.add_argument("--requests", type=int, default=3,
                     help="requests per client connection")
    sub.add_argument("--workers", type=int, default=16,
                     help="worker threads (pool architecture)")
    sub.add_argument("--seed", type=int, default=42,
                     help="world seed (drives arrival times)")
    sub.add_argument("--model", default="sparc-ipx",
                     help="machine model")
    sub.add_argument("--arrival", choices=ARRIVALS, default="poisson",
                     help="client inter-arrival process")
    sub.add_argument("--mean-gap-us", type=float, default=40.0,
                     help="mean inter-arrival gap (us)")
    sub.add_argument("--burst", type=int, default=8,
                     help="clients per burst (bursty arrivals)")
    sub.add_argument("--think-us", type=float, default=150.0,
                     help="client think time between requests (us)")
    sub.add_argument("--service-cycles", type=int, default=400,
                     help="application cycles per request")
    sub.add_argument("--latency-us", type=float, default=60.0,
                     help="one-way link latency (us)")
    sub.add_argument("--req-bytes", type=int, default=256,
                     help="request size (bytes)")
    sub.add_argument("--resp-bytes", type=int, default=1024,
                     help="response size (bytes)")
    sub.add_argument("--first-class", choices=("auto", "on", "off"),
                     default="auto",
                     help="completion path: first-class channel vs SIGIO "
                          "(auto = first-class for the select and epoll "
                          "archs)")
    sub.add_argument("--sf", choices=("sf1", "sf10", "sf100"), default=None,
                     help="run a scale-factor fixture (long-lived "
                          "high-concurrency load; overrides the load flags)")


def _first_class(value: str) -> Optional[bool]:
    return {"auto": None, "on": True, "off": False}[value]


def _sf_cell(arch: str, name: str) -> dict:
    """A ``run_scenario`` cell for one scale-factor fixture."""
    from repro.bench.suites import NET_SF_FIXTURES, NET_SF_LOAD

    fixture = dict(NET_SF_FIXTURES[name])
    fixture.pop("archs")
    clients = fixture.pop("clients")
    cell = dict(arch=arch, clients=clients, backlog=clients)
    cell.update(fixture)
    cell.update(NET_SF_LOAD)
    return cell


def _sf_archs(name: str) -> tuple:
    from repro.bench.suites import NET_SF_FIXTURES

    return tuple(NET_SF_FIXTURES[name]["archs"])


def _cell(arch: str, args: argparse.Namespace) -> dict:
    if getattr(args, "sf", None):
        return _sf_cell(arch, args.sf)
    return dict(
        arch=arch,
        clients=args.clients,
        requests_per_client=args.requests,
        workers=args.workers,
        seed=args.seed,
        model=args.model,
        arrival=args.arrival,
        mean_gap_us=args.mean_gap_us,
        burst=args.burst,
        think_us=args.think_us,
        service_cycles=args.service_cycles,
        latency_us=args.latency_us,
        req_bytes=args.req_bytes,
        resp_bytes=args.resp_bytes,
        first_class=_first_class(args.first_class),
    )


def _run(arch: str, args: argparse.Namespace):
    return run_scenario(**_cell(arch, args))


def cmd_serve(args: argparse.Namespace) -> int:
    report = _run(args.arch, args)
    print(report.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every architecture under the identical load, side by side.

    ``--jobs N`` runs the cells on worker processes; stdout stays
    byte-identical (results merge by cell index), and the fleet note --
    execution detail, not data -- goes to stderr.
    """
    if args.archs:
        archs = [a.strip() for a in args.archs.split(",") if a.strip()]
        for arch in archs:
            if arch not in ARCHITECTURES:
                print("unknown architecture %r" % arch, file=sys.stderr)
                return 2
    elif args.sf:
        # Fixture-scoped default: select's per-call fd-set rebuild is
        # host-prohibitive past ~10^3 registered descriptors, so each
        # fixture names the architectures it can afford.
        archs = list(_sf_archs(args.sf))
    else:
        archs = sorted(ARCHITECTURES)
    cells = [_cell(arch, args) for arch in archs]
    stats = FleetStats()
    reports = compare_scenarios(cells, jobs=args.jobs, stats=stats)
    if args.jobs > 1:
        # Execution detail even when the core-count cap degraded the
        # request to in-process -- the honest answer on a small host.
        print(
            "fleet: backend=%s jobs=%d tasks=%d"
            % (stats.backend, stats.jobs, stats.tasks),
            file=sys.stderr,
        )
    hdr = "%-10s %12s %12s %12s %12s %10s" % (
        "arch", "elapsed_us", "thruput_rps", "lat_p50_us",
        "lat_p99_us", "syscalls",
    )
    print(hdr)
    print("-" * len(hdr))
    for r in reports:
        print("%-10s %12.1f %12.1f %12.1f %12.1f %10d" % (
            r.arch, r.elapsed_us, r.throughput_rps,
            r.latency_p50_us, r.latency_p99_us, r.syscalls,
        ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="simulated multithreaded servers under deterministic "
                    "load (virtual time only)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    serve = subs.add_parser("serve", help="run one architecture")
    serve.add_argument("--arch", choices=sorted(ARCHITECTURES),
                       default="pool", help="server architecture")
    _add_scenario_args(serve)
    serve.set_defaults(fn=cmd_serve)

    compare = subs.add_parser(
        "compare", help="run all architectures under identical load"
    )
    _add_scenario_args(compare)
    compare.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (output is byte-identical for any value)",
    )
    compare.add_argument(
        "--archs", default=None,
        help="comma-separated architectures (default: all, or the "
             "fixture's own set under --sf)",
    )
    compare.set_defaults(fn=cmd_compare)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
