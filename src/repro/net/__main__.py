"""Entry point for ``python -m repro.net``."""

import sys

from repro.net.cli import main

sys.exit(main())
