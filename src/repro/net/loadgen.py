"""Deterministic open-loop load generator for the simulated network.

Clients live *in the kernel* (remote peers), not in the library: they
are pure event-driven state machines over
:meth:`~repro.unix.net.NetStack.remote_connect` /
``remote_send`` / ``remote_close``, so generating load costs the
process under test nothing but the deliveries themselves.  Arrival
times, and nothing else, come from a salted fork of the world RNG --
the same seed always produces the same arrival schedule, byte counts,
and therefore the same run.

Open-loop: client arrivals follow the configured process regardless of
how the server is coping (the server being slow does not slow the
offered load -- queues grow instead, which is exactly what the
architecture comparison wants to expose).  Within one connection the
client is closed-loop: it sends, waits for the reply, thinks for
``think_us``, then sends again, ``requests_per_client`` times, then
closes.

Each request's ``meta`` carries the send timestamp; the server echoes
``meta`` in its reply, and the reply's arrival at the client closes the
end-to-end latency sample (two link traversals plus all server-side
queueing and service).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.unix.net import NetStack, Message

ARRIVALS = ("poisson", "bursty", "uniform")


class LoadGenerator:
    """Open-loop client fleet over a :class:`~repro.unix.net.NetStack`.

    ``arrival`` selects the inter-arrival process:

    - ``poisson``: exponential gaps with mean ``mean_gap_us`` (drawn
      from the salted world RNG);
    - ``bursty``: ``burst`` clients arrive simultaneously, bursts are
      spaced ``mean_gap_us * burst`` apart (same offered rate, maximal
      short-term pressure on the accept queue);
    - ``uniform``: fixed ``mean_gap_us`` gaps.
    """

    def __init__(
        self,
        stack: NetStack,
        port: int,
        clients: int,
        requests_per_client: int = 3,
        req_bytes: int = 256,
        arrival: str = "poisson",
        mean_gap_us: float = 40.0,
        burst: int = 8,
        think_us: float = 150.0,
        start_us: float = 10.0,
        rng_salt: int = 0x6E65,  # "ne"
        collector: Optional[Any] = None,
    ) -> None:
        if arrival not in ARRIVALS:
            raise ValueError(
                "unknown arrival process %r (have: %s)"
                % (arrival, ", ".join(ARRIVALS))
            )
        self._stack = stack
        self._world = stack._world
        self._port = port
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.req_bytes = req_bytes
        self.arrival = arrival
        self.mean_gap_us = mean_gap_us
        self.burst = max(1, burst)
        self.think_us = think_us
        self.start_us = start_us
        self._rng = self._world.rng.fork(rng_salt)
        self._collector = collector
        # -- results (virtual time only) --
        self.latencies_us: List[float] = []
        self.requests_sent = 0
        self.replies = 0
        self.refused = 0
        self.completed = 0  # clients that finished all requests + closed

    # -- schedule ------------------------------------------------------------

    def start(self) -> None:
        """Schedule every client arrival now; costs zero cycles."""
        world = self._world
        t = self.start_us
        for i in range(self.clients):
            if self.arrival == "poisson":
                t += self._rng.expovariate(self.mean_gap_us)
            elif self.arrival == "bursty":
                if i and i % self.burst == 0:
                    t += self.mean_gap_us * self.burst
            else:  # uniform
                t += self.mean_gap_us
            world.schedule_in(
                max(1, world.cycles_for_us(t - world.now_us)),
                lambda cid=i: self._arrive(cid),
                name="client-%d-arrive" % i,
            )

    # -- one client's state machine ------------------------------------------

    def _arrive(self, cid: int) -> None:
        state: Dict[str, Any] = {"sent": 0}
        sock = self._stack.remote_connect(
            self._port,
            on_connected=lambda s: self._send_next(s, cid, state),
            on_rx=lambda s, msg: self._on_reply(s, cid, state, msg),
        )
        if sock is None:
            self.refused += 1
            if self._collector is not None:
                self._collector.refused += 1

    def _send_next(self, sock, cid: int, state: Dict[str, Any]) -> None:
        meta = {
            "t0": self._world.now_us,
            "cid": cid,
            "rid": state["sent"],
        }
        state["sent"] += 1
        self.requests_sent += 1
        self._stack.remote_send(sock, self.req_bytes, meta)

    def _on_reply(
        self, sock, cid: int, state: Dict[str, Any], msg: Message
    ) -> None:
        self.replies += 1
        latency = self._world.now_us - msg.meta["t0"]
        self.latencies_us.append(latency)
        if self._collector is not None:
            self._collector.latencies_us.append(latency)
        if state["sent"] >= self.requests_per_client:
            self._stack.remote_close(sock)
            self.completed += 1
            return
        self._world.schedule_in(
            max(1, self._world.cycles_for_us(self.think_us)),
            lambda: self._send_next(sock, cid, state),
            name="client-%d-think" % cid,
        )
