"""Deterministic open-loop load generator for the simulated network.

Clients live *in the kernel* (remote peers), not in the library: each
one is a kernel-resident :class:`~repro.unix.net.ResidentClient` state
record -- no thread, no generator, no stack -- advanced directly by
event-horizon entries (its pre-scheduled arrival, link deliveries, and
think-time wakeups).  This front-end only *compiles* the arrival
process: arrival times, and nothing else, come from a salted fork of
the world RNG -- the same seed always produces the same arrival
schedule, byte counts, and therefore the same run.  The per-client
protocol and all result counters live in the shared
:class:`~repro.unix.net.ResidentClientEngine`, which this class
delegates to, so a client costs O(1) memory and the fleet scales to
the sf100 fixture (10^5 concurrent clients) and beyond.

Open-loop: client arrivals follow the configured process regardless of
how the server is coping (the server being slow does not slow the
offered load -- queues grow instead, which is exactly what the
architecture comparison wants to expose).  Within one connection the
client is closed-loop: it sends, waits for the reply, thinks for
``think_us``, then sends again, ``requests_per_client`` times, then
closes.

Each request's ``meta`` carries the send timestamp; the server echoes
``meta`` in its reply, and the reply's arrival at the client closes the
end-to-end latency sample (two link traversals plus all server-side
queueing and service).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.unix.net import NetStack, ResidentClientEngine

ARRIVALS = ("poisson", "bursty", "uniform")


class LoadGenerator:
    """Open-loop client fleet over a :class:`~repro.unix.net.NetStack`.

    ``arrival`` selects the inter-arrival process:

    - ``poisson``: exponential gaps with mean ``mean_gap_us`` (drawn
      from the salted world RNG);
    - ``bursty``: ``burst`` clients arrive simultaneously, bursts are
      spaced ``mean_gap_us * burst`` apart (same offered rate, maximal
      short-term pressure on the accept queue);
    - ``uniform``: fixed ``mean_gap_us`` gaps.
    """

    def __init__(
        self,
        stack: NetStack,
        port: int,
        clients: int,
        requests_per_client: int = 3,
        req_bytes: int = 256,
        arrival: str = "poisson",
        mean_gap_us: float = 40.0,
        burst: int = 8,
        think_us: float = 150.0,
        start_us: float = 10.0,
        rng_salt: int = 0x6E65,  # "ne"
        collector: Optional[Any] = None,
    ) -> None:
        if arrival not in ARRIVALS:
            raise ValueError(
                "unknown arrival process %r (have: %s)"
                % (arrival, ", ".join(ARRIVALS))
            )
        self._stack = stack
        self._world = stack._world
        self._port = port
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.req_bytes = req_bytes
        self.arrival = arrival
        self.mean_gap_us = mean_gap_us
        self.burst = max(1, burst)
        self.think_us = think_us
        self.start_us = start_us
        self._rng = self._world.rng.fork(rng_salt)
        self._engine = ResidentClientEngine(
            stack,
            port,
            requests_per_client=requests_per_client,
            req_bytes=req_bytes,
            think_us=think_us,
            collector=collector,
        )

    # -- schedule ------------------------------------------------------------

    def start(self) -> None:
        """Compile every client arrival to one pre-scheduled event.

        Costs zero cycles: the fleet exists purely as event-horizon
        entries whose actions are the records' bound ``arrive``
        methods.
        """
        world = self._world
        engine = self._engine
        t = self.start_us
        for i in range(self.clients):
            if self.arrival == "poisson":
                t += self._rng.expovariate(self.mean_gap_us)
            elif self.arrival == "bursty":
                if i and i % self.burst == 0:
                    t += self.mean_gap_us * self.burst
            else:  # uniform
                t += self.mean_gap_us
            world.schedule_in(
                max(1, world.cycles_for_us(t - world.now_us)),
                engine.client(i).arrive,
                name="client-%d-arrive" % i,
            )

    # -- results (all owned by the kernel-resident engine) ---------------------

    @property
    def latencies_us(self) -> List[float]:
        return self._engine.latencies_us

    @property
    def requests_sent(self) -> int:
        return self._engine.requests_sent

    @property
    def replies(self) -> int:
        return self._engine.replies

    @property
    def refused(self) -> int:
        return self._engine.refused

    @property
    def completed(self) -> int:
        """Clients that finished all their requests and closed."""
        return self._engine.completed

    @property
    def active_clients(self) -> int:
        return self._engine.active

    @property
    def peak_concurrent_clients(self) -> int:
        """High-water mark of clients admitted and not yet closed."""
        return self._engine.peak_active
