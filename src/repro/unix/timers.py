"""Interval timers (``setitimer`` / ``alarm``).

A timer expiration posts ``SIGALRM`` with a ``timer`` cause naming the
*armer* -- the token (a thread, in the Pthreads world) that set the
timer.  The library's signal delivery model uses that to direct the
alarm "at the thread which armed the timer" (paper, delivery rule 3),
and the time-slicer uses a recurring timer whose cause is tagged as a
slice expiration (action rule 2).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.hw import costs
from repro.sim.events import Event
from repro.sim.world import World
from repro.unix.kernel import UnixKernel
from repro.unix.sigset import SIGALRM
from repro.unix.signals import SigCause

ITIMER_REAL = 0
ITIMER_VIRTUAL = 1


class IntervalTimer:
    """One process's interval timer of a given kind."""

    def __init__(
        self,
        world: World,
        kernel: UnixKernel,
        proc: Any,
        which: int = ITIMER_REAL,
        sig: int = SIGALRM,
    ) -> None:
        if which not in (ITIMER_REAL, ITIMER_VIRTUAL):
            raise ValueError("bad itimer kind: %r" % (which,))
        self._world = world
        self._kernel = kernel
        self._proc = proc
        self._which = which
        self._sig = sig
        self._event: Optional[Event] = None
        self._interval = 0  # cycles; 0 = one-shot
        self._armer: Optional[Any] = None
        self._tag: Optional[str] = None
        self._event_name = "itimer(%d)" % which
        self.expirations = 0

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.fired

    def arm(
        self,
        value_cycles: int,
        interval_cycles: int = 0,
        armer: Optional[Any] = None,
        tag: Optional[str] = None,
    ) -> None:
        """``setitimer``: first expiry after ``value_cycles``, then every
        ``interval_cycles`` (0 disables rearming).

        ``armer`` is recorded in the signal cause; ``tag`` marks special
        uses (the time-slicer passes ``"timeslice"``).
        """
        if value_cycles <= 0:
            raise ValueError("timer value must be positive: %r" % value_cycles)
        self._kernel._enter("setitimer", costs.SETITIMER_WORK)
        self.disarm_quietly()
        self._interval = interval_cycles
        self._armer = armer
        self._tag = tag
        self._schedule(value_cycles)

    def disarm(self) -> None:
        """``setitimer`` with zero value: cancel any pending expiry."""
        self._kernel._enter("setitimer", costs.SETITIMER_WORK)
        self.disarm_quietly()

    def disarm_quietly(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self, delay: int) -> None:
        self._event = self._world.schedule_in(
            delay, self._expire, name=self._event_name
        )

    def _expire(self) -> None:
        self.expirations += 1
        self._event = None
        if self._interval > 0:
            self._schedule(self._interval)
        cause = SigCause(kind="timer", thread=self._armer, data=self._tag)
        self._kernel.post_signal(self._proc, self._sig, cause)


def alarm(
    world: World,
    kernel: UnixKernel,
    proc: Any,
    seconds_in_us: float,
    armer: Optional[Any] = None,
) -> IntervalTimer:
    """One-shot ``alarm``-style convenience over :class:`IntervalTimer`."""
    timer = IntervalTimer(world, kernel, proc)
    timer.arm(world.cycles_for_us(seconds_in_us), armer=armer)
    return timer
