"""Per-process UNIX signal state and delivery.

This models 4.3 BSD semantics, including the detail the paper's design
fights against: the kernel keeps *one* pending slot per signal number,
so a signal that arrives while the same signal is both pending and
masked is **lost**.  That is why the library "blocks signals for the
shortest interval possible" and uses exactly two ``sigsetmask`` calls
per received signal; the ``lost_signals`` counter makes the hazard
observable.

Handlers come in two flavours:

- ordinary handlers (``manual_return=False``): the kernel charges the
  full deliver + sigreturn path around the callback, as for any C
  handler;
- the Pthreads *universal handler* (``manual_return=True``): the
  kernel pushes an :class:`InterruptFrame` and leaves the return path
  to the library, because the library may dispatch a different thread
  and only execute the ``sigreturn`` when the interrupted thread is
  resumed (paper, "The Dispatcher").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.unix.sigset import (
    SIG_DFL,
    SIG_IGN,
    SigSet,
    check_signal,
    signal_name,
)

Handler = Union[str, Callable[[int, "SigCause"], None]]


@dataclass(frozen=True)
class SigCause:
    """Why a signal was generated -- drives the paper's delivery model.

    ``kind`` is one of:

    - ``"directed"``: aimed at a specific thread (``pthread_kill``);
    - ``"synchronous"``: a fault caused by the running thread;
    - ``"timer"``: an interval-timer expiration (``thread`` = armer);
    - ``"io"``: an I/O completion (``thread`` = requester);
    - ``"external"``: sent from outside the process (``kill``);
    - ``"cancel"``: the library-internal cancellation request.
    """

    kind: str = "external"
    thread: Optional[Any] = None
    code: int = 0
    data: Optional[Any] = None
    #: True when the signal crossed CPUs via an interprocessor
    #: interrupt (SMP worlds only; see repro.sim.smp).  Stamped by the
    #: routing layer -- senders never set it themselves.
    via_ipi: bool = False

    VALID_KINDS = frozenset(
        {"directed", "synchronous", "timer", "io", "external", "cancel"}
    )

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError("invalid signal cause kind: %r" % (self.kind,))


@dataclass
class SigAction:
    """Disposition installed by ``sigaction``."""

    handler: Handler = SIG_DFL
    mask: SigSet = field(default_factory=SigSet)
    manual_return: bool = False

    def is_default(self) -> bool:
        return self.handler == SIG_DFL

    def is_ignore(self) -> bool:
        return self.handler == SIG_IGN


@dataclass
class InterruptFrame:
    """The frame UNIX pushes on the user stack to run a handler.

    For ``manual_return`` handlers the library holds on to this and
    performs the ``sigreturn`` (restoring ``saved_mask`` and the global
    register state) only when the interrupted thread resumes.
    """

    sig: int
    cause: SigCause
    saved_mask: SigSet


class DefaultActionTerminate(Exception):
    """A signal's default action terminated the (simulated) process."""

    def __init__(self, sig: int) -> None:
        super().__init__(
            "process terminated by default action of %s" % signal_name(sig)
        )
        self.sig = sig


class ProcessSignals:
    """Signal state of one UNIX process."""

    def __init__(self) -> None:
        self.mask = SigSet()
        self.actions: Dict[int, SigAction] = {}
        # BSD keeps one pending slot per signal; extra arrivals are lost.
        self._pending: Dict[int, SigCause] = {}
        self._pending_order: List[int] = []
        self.lost_signals = 0
        self.delivered = 0
        self.ipi_posts = 0  # posts that arrived via cross-CPU interrupt

    # -- installation -------------------------------------------------------

    def set_action(self, sig: int, action: SigAction) -> SigAction:
        """Install a disposition; returns the previous one."""
        check_signal(sig)
        previous = self.actions.get(sig, SigAction())
        self.actions[sig] = action
        return previous

    def get_action(self, sig: int) -> SigAction:
        check_signal(sig)
        return self.actions.get(sig, SigAction())

    # -- masking ------------------------------------------------------------

    def set_mask(self, mask: SigSet) -> SigSet:
        """Replace the process mask (``sigsetmask``); returns the old."""
        old = self.mask
        self.mask = mask.copy()
        return old

    def block(self, signals: SigSet) -> SigSet:
        """Add signals to the mask (``sigblock``); returns the old mask."""
        old = self.mask
        self.mask = self.mask | signals
        return old

    # -- generation -----------------------------------------------------------

    def post(self, sig: int, cause: SigCause) -> bool:
        """Mark a signal pending.  Returns False if it was lost
        (already pending -- the BSD single-slot rule)."""
        check_signal(sig)
        if cause.via_ipi:
            self.ipi_posts += 1
        if sig in self._pending:
            self.lost_signals += 1
            return False
        self._pending[sig] = cause
        self._pending_order.append(sig)
        return True

    def pending_set(self) -> SigSet:
        """Currently pending signals (``sigpending``)."""
        return SigSet(self._pending.keys())

    def has_deliverable(self) -> bool:
        return any(sig not in self.mask for sig in self._pending)

    def take_deliverable(self) -> Optional[Any]:
        """Pop the oldest pending, unmasked signal as ``(sig, cause)``."""
        for index, sig in enumerate(self._pending_order):
            if sig not in self.mask:
                del self._pending_order[index]
                cause = self._pending.pop(sig)
                self.delivered += 1
                return sig, cause
        return None

    def discard_pending(self, sig: int) -> None:
        check_signal(sig)
        if sig in self._pending:
            del self._pending[sig]
            self._pending_order.remove(sig)

    def __repr__(self) -> str:
        return "ProcessSignals(mask=%r, pending=%r)" % (
            self.mask,
            sorted(self._pending),
        )
