"""The simulated UNIX (4.3 BSD-ish) kernel.

The paper's library sits on "about 20 UNIX services".  This package
provides those services with the same interface shape and -- crucially
for the evaluation -- the same cost structure: every syscall charges
kernel enter/exit overhead, signal delivery charges the slow UNIX signal
path, and process context switches are far more expensive than the
library's thread switches.

Modules:

- :mod:`repro.unix.sigset` -- signal numbers and signal sets.
- :mod:`repro.unix.kernel` -- the kernel object: syscall dispatch and
  accounting, process table.
- :mod:`repro.unix.signals` -- per-process signal state: ``sigaction``,
  ``sigsetmask``, ``kill``, pending sets, delivery.
- :mod:`repro.unix.timers` -- ``setitimer`` interval timers.
- :mod:`repro.unix.process` -- a miniature process abstraction and
  round-robin process scheduler (used by the process-switch and UNIX
  signal-handler rows of Table 2).
- :mod:`repro.unix.io` -- an asynchronous I/O device raising ``SIGIO``
  completions attributed to the requesting thread.
"""

from repro.unix.kernel import UnixKernel
from repro.unix.process import UnixProcess, UnixScheduler
from repro.unix.sigset import (
    NSIG,
    SIG_DFL,
    SIG_IGN,
    SIGALRM,
    SIGCANCEL,
    SIGFPE,
    SIGHUP,
    SIGILL,
    SIGINT,
    SIGIO,
    SIGKILL,
    SIGSEGV,
    SIGSTOP,
    SIGTERM,
    SIGUSR1,
    SIGUSR2,
    SIGVTALRM,
    SigSet,
    signal_name,
)
from repro.unix.signals import SigAction, SigCause

__all__ = [
    "NSIG",
    "SIGALRM",
    "SIGCANCEL",
    "SIGFPE",
    "SIGHUP",
    "SIGILL",
    "SIGINT",
    "SIGIO",
    "SIGKILL",
    "SIGSEGV",
    "SIGSTOP",
    "SIGTERM",
    "SIGUSR1",
    "SIGUSR2",
    "SIGVTALRM",
    "SIG_DFL",
    "SIG_IGN",
    "SigAction",
    "SigCause",
    "SigSet",
    "UnixKernel",
    "UnixProcess",
    "UnixScheduler",
    "signal_name",
]
