"""Asynchronous I/O with ``SIGIO`` completion.

The paper's library wraps blocking UNIX I/O in non-blocking requests so
that only the *thread*, never the process, blocks; the completion
arrives as a signal whose cause names the requesting thread (delivery
rule 4: "if the signal was caused by an I/O completion, direct it at
the thread which requested I/O").  The acknowledgements credit Viresh
Rustagi with this asynchronous I/O layer.

:class:`IoDevice` models one device with a configurable service-time
distribution.  Requests complete as world events posting ``SIGIO``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.hw import costs
from repro.sim.world import World
from repro.unix.kernel import UnixKernel
from repro.unix.sigset import SIGIO
from repro.unix.signals import SigCause


@dataclass
class IoRequest:
    """One in-flight asynchronous I/O request."""

    reqid: int
    fd: int
    op: str  # "read" or "write"
    nbytes: int
    requester: Any  # the thread token (delivery rule 4)
    issue_time: int
    done: bool = False
    result: int = 0
    complete_time: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)


class IoDevice:
    """A device completing requests after a simulated service time.

    Parameters
    ----------
    latency_us:
        Mean service time in microseconds.
    deterministic:
        If True every request takes exactly ``latency_us``; otherwise
        service times are exponential with that mean (drawn from the
        world RNG, so runs stay reproducible).
    """

    def __init__(
        self,
        world: World,
        kernel: UnixKernel,
        proc: Any,
        latency_us: float = 500.0,
        deterministic: bool = True,
        name: str = "disk0",
        channel: Any = None,
    ) -> None:
        if latency_us <= 0:
            raise ValueError("latency must be positive: %r" % latency_us)
        self._world = world
        self._kernel = kernel
        self._proc = proc
        self._latency_us = latency_us
        self._deterministic = deterministic
        self.name = name
        #: Optional first-class kernel/user channel (Marsh & Scott):
        #: completions bypass SIGIO and notify the user scheduler
        #: directly with the request's datum.
        self.channel = channel
        self._ids = itertools.count(1)
        self.inflight: Dict[int, IoRequest] = {}
        self.completed = 0

    def submit(
        self, fd: int, op: str, nbytes: int, requester: Any
    ) -> IoRequest:
        """Issue a non-blocking request; completion posts ``SIGIO``.

        Charged as one syscall (the non-blocking ``read``/``write``
        issue).  Returns the request handle the caller can sleep on.
        """
        if op not in ("read", "write"):
            raise ValueError("bad I/O op: %r" % (op,))
        if nbytes < 0:
            raise ValueError("negative I/O size: %r" % (nbytes,))
        self._kernel._enter("aio_%s" % op)
        request = IoRequest(
            reqid=next(self._ids),
            fd=fd,
            op=op,
            nbytes=nbytes,
            requester=requester,
            issue_time=self._world.now,
        )
        self.inflight[request.reqid] = request
        delay_us = self._latency_us
        if not self._deterministic:
            delay_us = self._world.rng.expovariate(self._latency_us)
        delay = max(self._world.cycles_for_us(delay_us), 1)
        self._world.schedule_in(
            delay,
            lambda: self._complete(request),
            name="io-complete#%d" % request.reqid,
        )
        return request

    def _complete(self, request: IoRequest) -> None:
        request.done = True
        request.result = request.nbytes
        request.complete_time = self._world.now
        del self.inflight[request.reqid]
        self.completed += 1
        if self.channel is not None:
            # First-class path: straight to the user scheduler.
            self.channel.complete(request)
            return
        cause = SigCause(kind="io", thread=request.requester, data=request)
        self._world.spend(costs.INSN, fire=False)
        self._kernel.post_signal(self._proc, SIGIO, cause)

    def __repr__(self) -> str:
        return "IoDevice(%s, inflight=%d, completed=%d)" % (
            self.name,
            len(self.inflight),
            self.completed,
        )
