"""A miniature UNIX multi-process world.

Table 2 compares thread context switches against *process* context
switches, measured by "timing the execution of two alternating
processes which activate each other by exchanging signals".  This
module provides just enough process machinery to run that experiment
honestly: processes with generator bodies, a round-robin kernel
scheduler charging the full process-switch cost, ``pause``/``kill``
syscalls, and ordinary (auto-return) signal handlers.

It is deliberately independent of the Pthreads library: the library's
host process lives in :mod:`repro.core.runtime` instead.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.hw import costs
from repro.sim.frames import Frame, ProgramCrash
from repro.sim.ops import SysCall, Work
from repro.sim.world import World
from repro.unix.kernel import UnixKernel
from repro.unix.signals import InterruptFrame, ProcessSignals


class ProcState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"  # blocked in pause()
    ZOMBIE = "zombie"


# -- ops available to process bodies ------------------------------------------


def work(cycles: int) -> Work:
    """Compute for ``cycles``."""
    return Work(cycles)


def pause() -> SysCall:
    """Block until a signal is delivered (``pause(2)``)."""
    return SysCall("pause")


def kill(pid: int, sig: int) -> SysCall:
    """Send ``sig`` to process ``pid``."""
    return SysCall("kill", (pid, sig))


def getpid() -> SysCall:
    return SysCall("getpid")


def exit_(code: int = 0) -> SysCall:
    """Terminate the process."""
    return SysCall("exit", (code,))


ProcBody = Callable[..., Generator[Any, Any, Any]]


class UnixProcess:
    """One simulated UNIX process."""

    def __init__(
        self,
        kernel: UnixKernel,
        body: Optional[ProcBody] = None,
        name: str = "proc",
        args: tuple = (),
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.signals = ProcessSignals()
        self.interrupt_frames: List[InterruptFrame] = []
        self.auto_deliver = False
        self.state = ProcState.READY
        self.exit_code: Optional[int] = None
        self.frame: Optional[Frame] = None
        if body is not None:
            self.frame = Frame(body(*args), name=name, kind="user")
        self.pid = kernel.register(self)
        #: cycles this process has held the CPU (for the benchmarks)
        self.cpu_cycles = 0

    @property
    def alive(self) -> bool:
        return self.state is not ProcState.ZOMBIE

    def __repr__(self) -> str:
        return "UnixProcess(pid=%d, %s, %s)" % (
            self.pid,
            self.name,
            self.state.value,
        )


class UnixScheduler:
    """Round-robin kernel scheduler over :class:`UnixProcess` bodies.

    Runs each process until it blocks (``pause``) or exits; a context
    switch between two distinct processes charges the full
    ``proc_switch`` cost.  Signals posted to a non-current process are
    delivered when it is next dispatched, as the real kernel does on the
    return-to-user path.
    """

    def __init__(self, world: World, kernel: UnixKernel) -> None:
        self.world = world
        self.kernel = kernel
        self._ready: Deque[UnixProcess] = deque()
        self._last_running: Optional[UnixProcess] = None
        self.process_switches = 0

    def add(self, proc: UnixProcess) -> None:
        if proc.state is not ProcState.READY:
            raise ValueError("cannot enqueue %r" % proc)
        self._ready.append(proc)

    def wake(self, proc: UnixProcess) -> None:
        if proc.state is ProcState.SLEEPING:
            proc.state = ProcState.READY
            self._ready.append(proc)

    # -- main loop -----------------------------------------------------------

    def run(self, max_switches: Optional[int] = None) -> None:
        """Run until every process exits or blocks forever.

        ``max_switches`` bounds context switches (benchmark use).
        """
        while True:
            proc = self._pick()
            if proc is None:
                if self._any_sleeper():
                    # Idle until an event (e.g. a timer) wakes someone.
                    self.world.advance_to_next_event()
                    self._wake_signalled()
                    continue
                return
            if max_switches is not None and (
                self.process_switches >= max_switches
            ):
                self._ready.appendleft(proc)
                return
            self._dispatch(proc)

    def _pick(self) -> Optional[UnixProcess]:
        while self._ready:
            proc = self._ready.popleft()
            if proc.alive:
                return proc
        return None

    def _any_sleeper(self) -> bool:
        return any(
            p.state is ProcState.SLEEPING
            for p in self.kernel.processes.values()
            if isinstance(p, UnixProcess)
        )

    def _wake_signalled(self) -> None:
        for p in self.kernel.processes.values():
            if (
                isinstance(p, UnixProcess)
                and p.state is ProcState.SLEEPING
                and p.signals.has_deliverable()
            ):
                self.wake(p)

    def _dispatch(self, proc: UnixProcess) -> None:
        if self._last_running is not None and self._last_running is not proc:
            self.process_switches += 1
            self.world.spend(costs.PROC_SWITCH, fire=False)
        self._last_running = proc
        proc.state = ProcState.RUNNING
        self.kernel.current_proc = proc
        self.kernel.deliver_signals(proc)  # return-to-user delivery point
        self._run_until_block(proc)
        self.kernel.current_proc = None

    def _run_until_block(self, proc: UnixProcess) -> None:
        frame = proc.frame
        if frame is None:
            proc.state = ProcState.ZOMBIE
            return
        while proc.state is ProcState.RUNNING:
            start = self.world.now
            kind, payload = frame.resume()
            if kind == "return":
                proc.state = ProcState.ZOMBIE
                proc.exit_code = 0
                return
            op = payload
            if isinstance(op, Work):
                self.world.spend_cycles(op.cycles)
                frame.pending_value = None
            elif isinstance(op, SysCall):
                self._do_syscall(proc, frame, op)
            else:
                raise ProgramCrash(
                    proc.name, TypeError("bad process op: %r" % (op,))
                )
            proc.cpu_cycles += self.world.now - start

    def _do_syscall(self, proc: UnixProcess, frame: Frame, op: SysCall) -> None:
        if op.name == "pause":
            self.kernel._enter("pause")
            if proc.signals.has_deliverable():
                # A signal is already waiting: pause returns immediately
                # after its delivery.
                self.kernel.deliver_signals(proc)
                frame.pending_value = None
                return
            proc.state = ProcState.SLEEPING
            frame.pending_value = None
        elif op.name == "kill":
            pid, sig = op.args
            target = self.kernel.find(pid)
            self.kernel.kill(target, sig)
            if isinstance(target, UnixProcess):
                self.wake(target)
            frame.pending_value = 0
        elif op.name == "getpid":
            frame.pending_value = self.kernel.getpid(proc)
        elif op.name == "exit":
            proc.state = ProcState.ZOMBIE
            proc.exit_code = op.args[0] if op.args else 0
        else:
            raise ValueError("unknown process syscall: %r" % (op.name,))
