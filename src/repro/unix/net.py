"""Simulated sockets: the kernel side of the networking subsystem.

The paper's asynchronous I/O layer wraps every potentially blocking
UNIX call in a non-blocking issue plus a ``SIGIO`` completion directed
at the requesting thread (delivery-model rule 4).  Disks exercise that
machinery one request at a time; serving network traffic is the
workload class the ROADMAP aims at, and it needs the full UNIX socket
surface: listening sockets with accept queues, connected sockets with
bounded receive buffers (backpressure), link latency/bandwidth, and a
``select`` service for single-threaded dispatchers.

This module is the *kernel* half.  Every service a thread invokes is a
syscall charged through :meth:`UnixKernel._enter` (enter/exit overhead
plus in-kernel work), exactly like the services in
:mod:`repro.unix.kernel`.  All services are non-blocking, as the
paper's library requires: a call that cannot complete returns "would
block" and the *library* (:mod:`repro.core.netlib`) parks the calling
thread and registers a :class:`NetRequest`.  When the kernel-side
event arrives (a connection established, a message delivered, buffer
space freed) the request completes through one of the two completion
paths the paper discusses:

- ``SIGIO`` through the universal handler, demultiplexed to the
  requesting thread by delivery rule 4 (the shipping design); or
- the first-class Marsh & Scott channel
  (:class:`repro.unix.firstclass.FirstClassInterface`), which hands
  the completion datum straight to the user-level scheduler at
  soft-interrupt cost (the paper's Open Problems proposal).

Messages are bookkeeping-only (a byte count plus metadata), like every
other payload in the simulation.  Construction of the stack spends no
cycles, so a runtime with networking present but idle is bit-identical
to one without it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hw import costs
from repro.sim.world import World
from repro.unix.kernel import UnixKernel
from repro.unix.sigset import SIGIO
from repro.unix.signals import SigCause


@dataclass
class Message:
    """One application message (bookkeeping only, no payload bytes)."""

    nbytes: int
    meta: Dict[str, Any] = field(default_factory=dict)
    sent_at: int = 0
    delivered_at: int = 0


@dataclass
class NetRequest:
    """One parked network operation awaiting a kernel-side event.

    The shape mirrors :class:`repro.unix.io.IoRequest` so both
    completion paths work unchanged: ``requester`` names the thread to
    wake (rule 4) and ``result`` is the value its library call returns.
    ``finisher`` lets the library map the raw kernel object to the
    caller-visible value (e.g. allocate an fd for an accepted socket)
    at completion time, with the kernel flag protection the waker
    already holds.
    """

    reqid: int
    op: str  # "accept" | "connect" | "recv" | "send" | "select"
    sock: Optional["Socket"]
    requester: Any
    issue_time: int
    nbytes: int = 0
    meta: Optional[Dict[str, Any]] = None
    entries: Optional[List[Tuple[int, "Socket"]]] = None  # select only
    finisher: Optional[Callable[[Any], Any]] = None
    done: bool = False
    cancelled: bool = False
    result: Any = None
    complete_time: int = 0


class Socket:
    """One simulated socket (listening, connected, or kernel-owned).

    ``kernel_owned`` marks remote endpoints driven by the load
    generator: they live entirely inside the kernel, consume arriving
    messages through ``on_rx`` immediately (no buffering), and never
    issue syscalls -- so simulated clients cost no library threads.
    """

    def __init__(
        self, stack: "NetStack", rx_capacity: int, kernel_owned: bool = False
    ) -> None:
        self.sid = next(stack._sock_ids)
        self.stack = stack
        self.state = "new"  # new | bound | listening | connecting | connected | closed
        self.port: Optional[int] = None
        self.kernel_owned = kernel_owned
        # Listening side.
        self.backlog = 0
        self.claims = 0  # connections admitted but still in flight
        self.accept_queue: deque = deque()  # (Socket, enqueued_at_cycles)
        self.pending_accepts: deque = deque()  # NetRequests
        # Connected side.
        self.peer: Optional["Socket"] = None
        self.rx: deque = deque()  # Messages
        self.rx_bytes = 0
        self.rx_inflight = 0  # bytes transmitted but not yet delivered
        self.rx_capacity = rx_capacity
        self.rx_eof = False
        self.pending_recvs: deque = deque()  # NetRequests
        self.waiting_senders: deque = deque()  # NetRequests (space in *this* rx)
        self.pending_connect: Optional[NetRequest] = None
        # select/poll watchers.
        self.selectors: List[NetRequest] = []
        # Kernel-owned endpoint callbacks.
        self.on_connected: Optional[Callable[["Socket"], None]] = None
        self.on_rx: Optional[Callable[["Socket", Message], None]] = None
        self.on_eof: Optional[Callable[["Socket"], None]] = None

    def readable(self) -> bool:
        """select()'s readiness rule for this socket."""
        if self.state == "listening":
            return bool(self.accept_queue)
        return bool(self.rx) or self.rx_eof

    def __repr__(self) -> str:
        return "Socket(#%d, %s, port=%s, rx=%d)" % (
            self.sid, self.state, self.port, self.rx_bytes,
        )


#: EOF sentinel returned by ``sys_recv`` on a half-closed socket.
EOF = None


class NetStack:
    """One machine's socket layer.

    Parameters
    ----------
    latency_us:
        One-way link latency (mean when ``deterministic=False``).
    bandwidth_bytes_per_us:
        Link bandwidth; 0 means infinite (latency only).
    deterministic:
        Fixed latency vs. exponential with that mean (drawn from the
        world RNG, so runs stay reproducible).
    channel:
        Optional :class:`~repro.unix.firstclass.FirstClassInterface`;
        when set, completions bypass SIGIO entirely.
    """

    def __init__(
        self,
        world: World,
        kernel: UnixKernel,
        proc: Any,
        latency_us: float = 150.0,
        bandwidth_bytes_per_us: float = 0.0,
        deterministic: bool = True,
        rx_capacity: int = 65536,
        channel: Any = None,
    ) -> None:
        if latency_us <= 0:
            raise ValueError("latency must be positive: %r" % latency_us)
        self._world = world
        self._kernel = kernel
        self._proc = proc
        self.latency_us = latency_us
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.deterministic = deterministic
        self.rx_capacity = rx_capacity
        self.channel = channel
        self._req_ids = itertools.count(1)
        self._sock_ids = itertools.count(1)
        self.listeners: Dict[int, Socket] = {}
        # Counters (harvested by the observability layer).
        self.connections_opened = 0
        self.connections_refused = 0
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.sigio_completions = 0
        self.fc_completions = 0
        self.backpressure_stalls = 0
        self.select_calls = 0
        self.eof_delivered = 0
        # Accept-path measurements (cycles; the scenario layer converts).
        self.accept_waits: List[int] = []
        self.accept_depths: List[int] = []

    # -- syscall surface (each charged like a unix/kernel.py service) --------

    def sys_socket(self) -> Socket:
        self._kernel._enter("socket", costs.SOCKET_WORK)
        return Socket(self, self.rx_capacity)

    def sys_bind(self, sock: Socket, port: int) -> bool:
        """Bind to a port; False when the port is taken."""
        self._kernel._enter("bind", costs.BIND_WORK)
        if port in self.listeners:
            return False
        sock.port = port
        sock.state = "bound"
        return True

    def sys_listen(self, sock: Socket, backlog: int) -> None:
        self._kernel._enter("listen", costs.BIND_WORK)
        sock.backlog = max(1, backlog)
        sock.state = "listening"
        self.listeners[sock.port] = sock

    def sys_accept(self, sock: Socket) -> Optional[Socket]:
        """Non-blocking accept: a connected socket, or None (would block)."""
        self._kernel._enter("accept", costs.ACCEPT_WORK)
        return self._accept_pop(sock)

    def sys_connect(self, sock: Socket, port: int) -> bool:
        """Issue a connection attempt; admission decided at issue time.

        Returns False when refused (no listener, or its accept queue --
        counting attempts already in flight -- is full).  On True the
        connection establishes after one link latency; the caller
        parks a ``"connect"`` request to learn when.
        """
        self._kernel._enter("connect", costs.CONNECT_WORK)
        listener = self.listeners.get(port)
        if listener is None or not self._admit_connection(listener):
            self.connections_refused += 1
            return False
        listener.claims += 1
        server_side = Socket(self, self.rx_capacity)
        self._pair(sock, server_side, port)
        sock.state = "connecting"
        self._world.schedule_in(
            self._link_delay(0),
            lambda: self._establish(listener, server_side, sock),
            name="net-establish#%d" % server_side.sid,
        )
        return True

    def sys_send(self, sock: Socket, nbytes: int, meta: Optional[dict]) -> Optional[int]:
        """Non-blocking send: bytes queued on the link, or None (would
        block -- the peer's receive buffer is full)."""
        self._kernel._enter("send", costs.SEND_WORK)
        peer = sock.peer
        assert peer is not None
        if not self._rx_admit(peer, nbytes):
            return None
        self._transmit(peer, nbytes, meta)
        return nbytes

    def sys_recv(self, sock: Socket) -> Any:
        """Non-blocking recv: a :class:`Message`, :data:`EOF`, or the
        string ``"block"`` when nothing is available yet."""
        self._kernel._enter("recv", costs.RECV_WORK)
        if sock.rx:
            msg = self._rx_pop(sock)
            self._drain_senders(sock)
            return msg
        if sock.rx_eof:
            return EOF
        return "block"

    def sys_select(self, entries: List[Tuple[int, Socket]]) -> List[int]:
        """One readiness scan over ``entries`` ((fd, socket) pairs).

        Charged as one syscall plus a per-descriptor probe, like the
        real thing; returns the ready fds (possibly empty).
        """
        self._kernel._enter("select", costs.SELECT_WORK)
        if entries:
            self._world.spend(
                costs.SELECT_PER_FD, times=len(entries), fire=False
            )
        self.select_calls += 1
        return [fd for fd, sock in entries if sock.readable()]

    def sys_close(self, sock: Socket) -> None:
        self._kernel._enter("net_close", costs.SOCKET_WORK)
        self._close(sock)

    # -- would-block registration (no extra syscall; the issue above
    #    already expressed interest, as with FASYNC on a real kernel) ------

    def _new_request(self, op: str, sock: Optional[Socket], requester: Any,
                     finisher: Optional[Callable] = None, **extra: Any) -> NetRequest:
        return NetRequest(
            reqid=next(self._req_ids),
            op=op,
            sock=sock,
            requester=requester,
            issue_time=self._world.now,
            finisher=finisher,
            **extra,
        )

    def wait_accept(self, sock: Socket, requester: Any,
                    finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("accept", sock, requester, finisher)
        sock.pending_accepts.append(request)
        return request

    def wait_connect(self, sock: Socket, requester: Any,
                     finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("connect", sock, requester, finisher)
        sock.pending_connect = request
        return request

    def wait_recv(self, sock: Socket, requester: Any,
                  finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("recv", sock, requester, finisher)
        sock.pending_recvs.append(request)
        return request

    def wait_send(self, sock: Socket, requester: Any, nbytes: int,
                  meta: Optional[dict],
                  finisher: Optional[Callable] = None) -> NetRequest:
        """Park a backpressured send on the *peer's* receive buffer."""
        request = self._new_request(
            "send", sock, requester, finisher, nbytes=nbytes, meta=meta
        )
        sock.peer.waiting_senders.append(request)
        self.backpressure_stalls += 1
        return request

    def wait_select(self, entries: List[Tuple[int, Socket]],
                    requester: Any) -> NetRequest:
        request = self._new_request(
            "select", None, requester, None, entries=list(entries)
        )
        for __, sock in entries:
            sock.selectors.append(request)
        return request

    def cancel_request(self, request: NetRequest) -> None:
        """Teardown for a cancelled/timed-out waiter: deregister it so
        the kernel never wakes a thread that stopped waiting."""
        if request.done or request.cancelled:
            return
        request.cancelled = True
        sock = request.sock
        if request.op == "accept":
            _discard(sock.pending_accepts, request)
        elif request.op == "recv":
            _discard(sock.pending_recvs, request)
        elif request.op == "send":
            if sock.peer is not None:
                _discard(sock.peer.waiting_senders, request)
        elif request.op == "connect":
            if sock.pending_connect is request:
                sock.pending_connect = None
        elif request.op == "select":
            self._deregister_select(request)

    # -- load-generator surface (kernel-resident remote hosts) ---------------

    def remote_connect(
        self,
        port: int,
        on_connected: Optional[Callable] = None,
        on_rx: Optional[Callable] = None,
        on_eof: Optional[Callable] = None,
    ) -> Optional[Socket]:
        """A remote host connects: no syscall charge (it is not this
        machine's kernel entering), same admission and latency rules."""
        listener = self.listeners.get(port)
        if listener is None or not self._admit_connection(listener):
            self.connections_refused += 1
            return None
        listener.claims += 1
        client = Socket(self, self.rx_capacity, kernel_owned=True)
        client.on_connected = on_connected
        client.on_rx = on_rx
        client.on_eof = on_eof
        server_side = Socket(self, self.rx_capacity)
        self._pair(client, server_side, port)
        client.state = "connecting"
        self._world.schedule_in(
            self._link_delay(0),
            lambda: self._establish(listener, server_side, client),
            name="net-establish#%d" % server_side.sid,
        )
        return client

    def remote_send(self, sock: Socket, nbytes: int,
                    meta: Optional[dict] = None) -> None:
        """A remote host sends (no syscall charge).  Remote senders are
        never backpressured mid-simulation: over-admission queues on
        the link and counts as a stall."""
        peer = sock.peer
        if peer is None or peer.state == "closed":
            return
        if not self._rx_admit(peer, nbytes):
            self.backpressure_stalls += 1
        self._transmit(peer, nbytes, meta)

    def remote_close(self, sock: Socket) -> None:
        self._close(sock)

    # -- kernel-internal machinery -------------------------------------------

    def _pair(self, a: Socket, b: Socket, port: int) -> None:
        a.peer = b
        b.peer = a
        a.port = port
        b.port = port

    def _admit_connection(self, listener: Socket) -> bool:
        if listener.state != "listening":
            return False
        return len(listener.accept_queue) + listener.claims < listener.backlog

    def _link_delay(self, nbytes: int) -> int:
        delay_us = self.latency_us
        if not self.deterministic:
            delay_us = self._world.rng.expovariate(self.latency_us)
        if self.bandwidth_bytes_per_us > 0 and nbytes:
            delay_us += nbytes / self.bandwidth_bytes_per_us
        return max(self._world.cycles_for_us(delay_us), 1)

    def _establish(self, listener: Socket, server_side: Socket,
                   client: Socket) -> None:
        """Link event: the connection reaches the listener."""
        self._world.spend(costs.NET_DELIVER, fire=False)
        listener.claims -= 1
        if listener.state != "listening":
            self.connections_refused += 1
            client.state = "closed"
            server_side.state = "closed"
            return
        server_side.state = "connected"
        client.state = "connected"
        self.connections_opened += 1
        listener.accept_queue.append((server_side, self._world.now))
        self.accept_depths.append(len(listener.accept_queue))
        if listener.pending_accepts:
            request = listener.pending_accepts.popleft()
            conn = self._accept_pop(listener)
            self._complete(request, conn)
        else:
            self._notify_selectors(listener)
        # Tell the connecting side.
        if client.pending_connect is not None:
            request, client.pending_connect = client.pending_connect, None
            self._complete(request, client)
        elif client.on_connected is not None:
            client.on_connected(client)

    def _accept_pop(self, sock: Socket) -> Optional[Socket]:
        if not sock.accept_queue:
            return None
        conn, enqueued_at = sock.accept_queue.popleft()
        self.accept_waits.append(self._world.now - enqueued_at)
        return conn

    def _rx_admit(self, sock: Socket, nbytes: int) -> bool:
        if sock.kernel_owned:
            return True  # remote endpoints consume on arrival
        return sock.rx_bytes + sock.rx_inflight + nbytes <= sock.rx_capacity

    def _rx_pop(self, sock: Socket) -> Message:
        msg = sock.rx.popleft()
        sock.rx_bytes -= msg.nbytes
        return msg

    def _transmit(self, dst: Socket, nbytes: int,
                  meta: Optional[dict]) -> None:
        dst.rx_inflight += nbytes
        msg = Message(nbytes=nbytes, meta=dict(meta or {}),
                      sent_at=self._world.now)
        self._world.schedule_in(
            self._link_delay(nbytes),
            lambda: self._deliver(dst, msg),
            name="net-deliver",
        )

    def _deliver(self, dst: Socket, msg: Message) -> None:
        """Link event: a message arrives at ``dst``."""
        self._world.spend(costs.NET_DELIVER, fire=False)
        dst.rx_inflight -= msg.nbytes
        if dst.state == "closed":
            return  # arrived after close: dropped on the floor
        msg.delivered_at = self._world.now
        self.messages_delivered += 1
        self.bytes_delivered += msg.nbytes
        if dst.kernel_owned:
            if dst.on_rx is not None:
                dst.on_rx(dst, msg)
            return
        if dst.pending_recvs:
            # Direct handoff to the parked receiver: the bytes never
            # occupy the buffer, so that space stays free -- re-admit
            # any sender parked on it before the handoff.
            request = dst.pending_recvs.popleft()
            self._world.spend(costs.RECV_WORK, fire=False)
            self._complete(request, msg)
            self._drain_senders(dst)
            return
        dst.rx.append(msg)
        dst.rx_bytes += msg.nbytes
        self._notify_selectors(dst)

    def _drain_senders(self, sock: Socket) -> None:
        """Receive-buffer space freed: resume backpressured senders."""
        while sock.waiting_senders:
            request = sock.waiting_senders[0]
            if not self._rx_admit(sock, request.nbytes):
                return
            sock.waiting_senders.popleft()
            self._transmit(sock, request.nbytes, request.meta)
            self._complete(request, request.nbytes)

    def _close(self, sock: Socket) -> None:
        if sock.state == "closed":
            return
        was_listening = sock.state == "listening"
        sock.state = "closed"
        if was_listening and self.listeners.get(sock.port) is sock:
            del self.listeners[sock.port]
        peer = sock.peer
        if peer is not None and peer.state not in ("closed",):
            self._world.schedule_in(
                self._link_delay(0),
                lambda: self._deliver_eof(peer),
                name="net-eof#%d" % peer.sid,
            )

    def _deliver_eof(self, sock: Socket) -> None:
        self._world.spend(costs.NET_DELIVER, fire=False)
        if sock.state == "closed" or sock.rx_eof:
            return
        sock.rx_eof = True
        self.eof_delivered += 1
        if sock.kernel_owned:
            if sock.on_eof is not None:
                sock.on_eof(sock)
            return
        # Buffered data drains first; EOF only wakes an *empty* socket.
        if not sock.rx:
            while sock.pending_recvs:
                self._complete(sock.pending_recvs.popleft(), EOF)
        self._notify_selectors(sock)

    # -- completion (both of the paper's paths) ------------------------------

    def _complete(self, request: NetRequest, raw: Any) -> None:
        if request.cancelled:
            return
        request.done = True
        request.complete_time = self._world.now
        if request.finisher is not None:
            request.result = request.finisher(raw)
        else:
            request.result = raw
        if self.channel is not None:
            # First-class path: the datum goes straight to the
            # user-level scheduler through shared memory.
            self.fc_completions += 1
            self.channel.notify(request.requester, request)
            return
        self.sigio_completions += 1
        cause = SigCause(kind="io", thread=request.requester, data=request)
        self._world.spend(costs.INSN, fire=False)
        self._kernel.post_signal(self._proc, SIGIO, cause)

    def _notify_selectors(self, sock: Socket) -> None:
        if not sock.selectors:
            return
        for request in list(sock.selectors):
            if request.done or request.cancelled:
                continue
            ready = [fd for fd, s in request.entries if s.readable()]
            if ready:
                self._deregister_select(request)
                self._complete(request, ready)

    def _deregister_select(self, request: NetRequest) -> None:
        for __, sock in request.entries:
            if request in sock.selectors:
                sock.selectors.remove(request)

    def __repr__(self) -> str:
        return "NetStack(conns=%d, msgs=%d, stalls=%d)" % (
            self.connections_opened,
            self.messages_delivered,
            self.backpressure_stalls,
        )


def _discard(queue: deque, request: NetRequest) -> None:
    try:
        queue.remove(request)
    except ValueError:
        pass
