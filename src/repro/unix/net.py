"""Simulated sockets: the kernel side of the networking subsystem.

The paper's asynchronous I/O layer wraps every potentially blocking
UNIX call in a non-blocking issue plus a ``SIGIO`` completion directed
at the requesting thread (delivery-model rule 4).  Disks exercise that
machinery one request at a time; serving network traffic is the
workload class the ROADMAP aims at, and it needs the full UNIX socket
surface: listening sockets with accept queues, connected sockets with
bounded receive buffers (backpressure), link latency/bandwidth, and a
``select`` service for single-threaded dispatchers.

This module is the *kernel* half.  Every service a thread invokes is a
syscall charged through :meth:`UnixKernel._enter` (enter/exit overhead
plus in-kernel work), exactly like the services in
:mod:`repro.unix.kernel`.  All services are non-blocking, as the
paper's library requires: a call that cannot complete returns "would
block" and the *library* (:mod:`repro.core.netlib`) parks the calling
thread and registers a :class:`NetRequest`.  When the kernel-side
event arrives (a connection established, a message delivered, buffer
space freed) the request completes through one of the two completion
paths the paper discusses:

- ``SIGIO`` through the universal handler, demultiplexed to the
  requesting thread by delivery rule 4 (the shipping design); or
- the first-class Marsh & Scott channel
  (:class:`repro.unix.firstclass.FirstClassInterface`), which hands
  the completion datum straight to the user-level scheduler at
  soft-interrupt cost (the paper's Open Problems proposal).

Messages are bookkeeping-only (a byte count plus metadata), like every
other payload in the simulation.  Construction of the stack spends no
cycles, so a runtime with networking present but idle is bit-identical
to one without it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hw import costs
from repro.sim.world import World
from repro.unix.kernel import UnixKernel
from repro.unix.sigset import SIGIO
from repro.unix.signals import SigCause


@dataclass
class Message:
    """One application message (bookkeeping only, no payload bytes)."""

    nbytes: int
    meta: Dict[str, Any] = field(default_factory=dict)
    sent_at: int = 0
    delivered_at: int = 0


@dataclass
class NetRequest:
    """One parked network operation awaiting a kernel-side event.

    The shape mirrors :class:`repro.unix.io.IoRequest` so both
    completion paths work unchanged: ``requester`` names the thread to
    wake (rule 4) and ``result`` is the value its library call returns.
    ``finisher`` lets the library map the raw kernel object to the
    caller-visible value (e.g. allocate an fd for an accepted socket)
    at completion time, with the kernel flag protection the waker
    already holds.
    """

    reqid: int
    op: str  # "accept" | "connect" | "recv" | "send" | "select" | "epoll"
    sock: Optional["Socket"]
    requester: Any
    issue_time: int
    nbytes: int = 0
    meta: Optional[Dict[str, Any]] = None
    entries: Optional[List[Tuple[int, "Socket"]]] = None  # select only
    epoll: Optional["EpollInstance"] = None  # epoll_wait only
    finisher: Optional[Callable[[Any], Any]] = None
    done: bool = False
    cancelled: bool = False
    result: Any = None
    complete_time: int = 0


class Socket:
    """One simulated socket (listening, connected, or kernel-owned).

    ``kernel_owned`` marks remote endpoints driven by the load
    generator: they live entirely inside the kernel, consume arriving
    messages through their ``owner`` record (or the legacy ``on_rx``
    callback) immediately -- no buffering, no library thread.

    Memory discipline: at the sf100 scale fixture one run holds a few
    hundred thousand live sockets, so the class is ``__slots__``-based
    and its per-role queues are *lazy*.  Kernel-owned endpoints never
    allocate queues at all; ordinary sockets allocate ``rx``/
    ``pending_recvs``/``waiting_senders`` on first use, and the
    listening-side queues appear when ``listen()`` is called.  Every
    reader treats ``None`` as the empty queue.
    """

    __slots__ = (
        "sid", "stack", "state", "port", "kernel_owned",
        "backlog", "claims", "accept_queue", "pending_accepts",
        "peer", "rx", "rx_bytes", "rx_inflight", "rx_capacity", "rx_eof",
        "pending_recvs", "waiting_senders", "pending_connect",
        "selectors", "watchers", "owner",
        "on_connected", "on_rx", "on_eof",
    )

    def __init__(
        self, stack: "NetStack", rx_capacity: int, kernel_owned: bool = False
    ) -> None:
        self.sid = next(stack._sock_ids)
        self.stack = stack
        self.state = "new"  # new | bound | listening | connecting | connected | closed
        self.port: Optional[int] = None
        self.kernel_owned = kernel_owned
        # Listening side (queues allocated by sys_listen).
        self.backlog = 0
        self.claims = 0  # connections admitted but still in flight
        self.accept_queue: Optional[deque] = None  # (Socket, enqueued_at)
        self.pending_accepts: Optional[deque] = None  # NetRequests
        # Connected side (queues allocated on first use).
        self.peer: Optional["Socket"] = None
        self.rx: Optional[deque] = None  # Messages
        self.rx_bytes = 0
        self.rx_inflight = 0  # bytes transmitted but not yet delivered
        self.rx_capacity = rx_capacity
        self.rx_eof = False
        self.pending_recvs: Optional[deque] = None  # NetRequests
        self.waiting_senders: Optional[deque] = None  # NetRequests
        self.pending_connect: Optional[NetRequest] = None
        # select/poll watchers and epoll registrations ((epoll, fd)).
        self.selectors: Optional[List[NetRequest]] = None
        self.watchers: Optional[List[Tuple["EpollInstance", int]]] = None
        # Kernel-resident state record (load generator) and the legacy
        # per-callback hooks for kernel-owned endpoints.
        self.owner: Optional[Any] = None
        self.on_connected: Optional[Callable[["Socket"], None]] = None
        self.on_rx: Optional[Callable[["Socket", Message], None]] = None
        self.on_eof: Optional[Callable[["Socket"], None]] = None

    def readable(self) -> bool:
        """select()'s readiness rule for this socket."""
        if self.state == "listening":
            return bool(self.accept_queue)
        return bool(self.rx) or self.rx_eof

    def __repr__(self) -> str:
        return "Socket(#%d, %s, port=%s, rx=%d)" % (
            self.sid, self.state, self.port, self.rx_bytes,
        )


class EpollInstance:
    """A kernel-resident interest list: select() without the O(n) scan.

    ``interest`` maps fd -> socket for every registration; ``ready`` is
    an insertion-ordered set (a dict) of descriptors that pushed a
    readiness *edge* since the owner last consumed them.  Sockets hold
    back-references in ``Socket.watchers``, so a state change notifies
    only the epolls actually watching -- O(ready) per wakeup, never
    O(interest).  Semantics are level-triggered: a descriptor stays in
    ``ready`` until a wait observes it unreadable (stale entries are
    dropped at wait time, never probed in between).
    """

    __slots__ = ("epid", "stack", "interest", "ready", "waiter", "closed")

    def __init__(self, stack: "NetStack") -> None:
        self.epid = next(stack._epoll_ids)
        self.stack = stack
        self.interest: Dict[int, Socket] = {}
        self.ready: Dict[int, Socket] = {}
        self.waiter: Optional[NetRequest] = None
        self.closed = False

    def __repr__(self) -> str:
        return "EpollInstance(#%d, interest=%d, ready=%d)" % (
            self.epid, len(self.interest), len(self.ready),
        )


#: EOF sentinel returned by ``sys_recv`` on a half-closed socket.
EOF = None


class NetStack:
    """One machine's socket layer.

    Parameters
    ----------
    latency_us:
        One-way link latency (mean when ``deterministic=False``).
    bandwidth_bytes_per_us:
        Link bandwidth; 0 means infinite (latency only).
    deterministic:
        Fixed latency vs. exponential with that mean (drawn from the
        world RNG, so runs stay reproducible).
    channel:
        Optional :class:`~repro.unix.firstclass.FirstClassInterface`;
        when set, completions bypass SIGIO entirely.
    """

    def __init__(
        self,
        world: World,
        kernel: UnixKernel,
        proc: Any,
        latency_us: float = 150.0,
        bandwidth_bytes_per_us: float = 0.0,
        deterministic: bool = True,
        rx_capacity: int = 65536,
        channel: Any = None,
    ) -> None:
        if latency_us <= 0:
            raise ValueError("latency must be positive: %r" % latency_us)
        self._world = world
        self._kernel = kernel
        self._proc = proc
        self.latency_us = latency_us
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.deterministic = deterministic
        self.rx_capacity = rx_capacity
        self.channel = channel
        self._req_ids = itertools.count(1)
        self._sock_ids = itertools.count(1)
        self._epoll_ids = itertools.count(1)
        self.listeners: Dict[int, Socket] = {}
        #: Kernel-resident client engine, when a load generator attached
        #: one (see :class:`ResidentClientEngine`; harvested by obs).
        self.resident: Optional["ResidentClientEngine"] = None
        # Counters (harvested by the observability layer).
        self.connections_opened = 0
        self.connections_refused = 0
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.sigio_completions = 0
        self.fc_completions = 0
        self.backpressure_stalls = 0
        self.select_calls = 0
        self.eof_delivered = 0
        # Epoll counters (net.epoll.* in the obs report).
        self.epoll_instances = 0
        self.epoll_ctl_calls = 0
        self.epoll_waits = 0
        self.epoll_wakeups = 0  # parked waiters completed by an edge
        self.epoll_edges = 0  # readiness edges pushed to interest lists
        self.epoll_ready_returned = 0  # descriptors reported by waits
        self.epoll_stale_dropped = 0  # ready entries found unreadable
        # Accept-path measurements (cycles; the scenario layer converts).
        self.accept_waits: List[int] = []
        self.accept_depths: List[int] = []

    # -- syscall surface (each charged like a unix/kernel.py service) --------

    def sys_socket(self) -> Socket:
        self._kernel._enter("socket", costs.SOCKET_WORK)
        return Socket(self, self.rx_capacity)

    def sys_bind(self, sock: Socket, port: int) -> bool:
        """Bind to a port; False when the port is taken."""
        self._kernel._enter("bind", costs.BIND_WORK)
        if port in self.listeners:
            return False
        sock.port = port
        sock.state = "bound"
        return True

    def sys_listen(self, sock: Socket, backlog: int) -> None:
        self._kernel._enter("listen", costs.BIND_WORK)
        sock.backlog = max(1, backlog)
        sock.state = "listening"
        if sock.accept_queue is None:
            sock.accept_queue = deque()
            sock.pending_accepts = deque()
        self.listeners[sock.port] = sock

    def sys_accept(self, sock: Socket) -> Optional[Socket]:
        """Non-blocking accept: a connected socket, or None (would block)."""
        self._kernel._enter("accept", costs.ACCEPT_WORK)
        return self._accept_pop(sock)

    def sys_connect(self, sock: Socket, port: int) -> bool:
        """Issue a connection attempt; admission decided at issue time.

        Returns False when refused (no listener, or its accept queue --
        counting attempts already in flight -- is full).  On True the
        connection establishes after one link latency; the caller
        parks a ``"connect"`` request to learn when.
        """
        self._kernel._enter("connect", costs.CONNECT_WORK)
        listener = self.listeners.get(port)
        if listener is None or not self._admit_connection(listener):
            self.connections_refused += 1
            return False
        listener.claims += 1
        server_side = Socket(self, self.rx_capacity)
        self._pair(sock, server_side, port)
        sock.state = "connecting"
        self._world.schedule_in(
            self._link_delay(0),
            lambda: self._establish(listener, server_side, sock),
            name="net-establish#%d" % server_side.sid,
        )
        return True

    def sys_send(self, sock: Socket, nbytes: int, meta: Optional[dict]) -> Optional[int]:
        """Non-blocking send: bytes queued on the link, or None (would
        block -- the peer's receive buffer is full)."""
        self._kernel._enter("send", costs.SEND_WORK)
        peer = sock.peer
        assert peer is not None
        if not self._rx_admit(peer, nbytes):
            return None
        self._transmit(peer, nbytes, meta)
        return nbytes

    def sys_recv(self, sock: Socket) -> Any:
        """Non-blocking recv: a :class:`Message`, :data:`EOF`, or the
        string ``"block"`` when nothing is available yet."""
        self._kernel._enter("recv", costs.RECV_WORK)
        if sock.rx:
            msg = self._rx_pop(sock)
            self._drain_senders(sock)
            return msg
        if sock.rx_eof:
            return EOF
        return "block"

    def sys_select(self, entries: List[Tuple[int, Socket]]) -> List[int]:
        """One readiness scan over ``entries`` ((fd, socket) pairs).

        Charged as one syscall plus a per-descriptor probe, like the
        real thing; returns the ready fds (possibly empty).
        """
        self._kernel._enter("select", costs.SELECT_WORK)
        if entries:
            self._world.spend(
                costs.SELECT_PER_FD, times=len(entries), fire=False
            )
        self.select_calls += 1
        return [fd for fd, sock in entries if sock.readable()]

    def sys_close(self, sock: Socket) -> None:
        self._kernel._enter("net_close", costs.SOCKET_WORK)
        self._close(sock)

    # -- epoll-style interest lists (O(ready) readiness) ---------------------

    def sys_epoll_create(self) -> EpollInstance:
        self._kernel._enter("epoll_create", costs.EPOLL_WORK)
        self.epoll_instances += 1
        return EpollInstance(self)

    def sys_epoll_ctl(
        self, ep: EpollInstance, op: str, fd: int,
        sock: Optional[Socket] = None,
    ) -> bool:
        """Add or remove one registration; False on a bad op/fd."""
        self._kernel._enter("epoll_ctl", costs.EPOLL_CTL_WORK)
        self.epoll_ctl_calls += 1
        if ep.closed:
            return False
        if op == "add":
            if sock is None or fd in ep.interest:
                return False
            ep.interest[fd] = sock
            if sock.watchers is None:
                sock.watchers = []
            sock.watchers.append((ep, fd))
            if sock.readable():
                # Level-triggered add: already-buffered data must not
                # need a fresh edge to surface.
                self._epoll_mark(ep, fd, sock)
            return True
        if op == "del":
            cur = ep.interest.pop(fd, None)
            if cur is None:
                return False
            ep.ready.pop(fd, None)
            if cur.watchers is not None:
                try:
                    cur.watchers.remove((ep, fd))
                except ValueError:
                    pass
            return True
        return False

    def sys_epoll_wait(
        self, ep: EpollInstance, maxevents: Optional[int] = None
    ) -> Any:
        """One O(ready) readiness harvest.

        Returns the ready fds, or the string ``"block"`` when nothing
        is ready (the library then parks via :meth:`wait_epoll`).
        Entries whose socket went unreadable since their edge (consumed
        by an earlier wait, or closed) are dropped as stale here --
        cost is charged only per descriptor actually *reported*, which
        is the whole point versus select's per-registration probe.
        """
        self._kernel._enter("epoll_wait", costs.EPOLL_WAIT_WORK)
        self.epoll_waits += 1
        ready_fds: List[int] = []
        if ep.ready:
            stale: List[int] = []
            interest = ep.interest
            for fd, sock in ep.ready.items():
                if interest.get(fd) is sock and sock.readable():
                    ready_fds.append(fd)
                else:
                    stale.append(fd)
            if stale:
                self.epoll_stale_dropped += len(stale)
                for fd in stale:
                    del ep.ready[fd]
        if not ready_fds:
            return "block"
        if maxevents is not None and len(ready_fds) > maxevents:
            ready_fds = ready_fds[:maxevents]
        self._world.spend(
            costs.EPOLL_PER_READY, times=len(ready_fds), fire=False
        )
        self.epoll_ready_returned += len(ready_fds)
        return ready_fds

    def sys_epoll_close(self, ep: EpollInstance) -> None:
        """Close the interest list: every registration is dropped."""
        self._kernel._enter("net_close", costs.SOCKET_WORK)
        ep.closed = True
        for fd, sock in ep.interest.items():
            if sock.watchers is not None:
                try:
                    sock.watchers.remove((ep, fd))
                except ValueError:
                    pass
        ep.interest.clear()
        ep.ready.clear()
        if ep.waiter is not None:
            # Defensive: a waiter parked by another thread wakes empty.
            waiter, ep.waiter = ep.waiter, None
            self._complete(waiter, [])

    def _epoll_mark(self, ep: EpollInstance, fd: int, sock: Socket) -> None:
        """One readiness edge reaches ``ep``: wake its parked waiter
        (O(1) -- the edge carries the one newly ready fd) or record the
        fd in the ready set for the next wait."""
        waiter = ep.waiter
        if waiter is not None:
            ep.waiter = None
            self.epoll_wakeups += 1
            self._complete(waiter, [fd])
            return
        if fd not in ep.ready:
            ep.ready[fd] = sock

    def _epoll_edges(self, sock: Socket) -> None:
        """Push a readiness edge to every epoll watching ``sock``."""
        for ep, fd in sock.watchers:
            if ep.interest.get(fd) is sock:
                self.epoll_edges += 1
                self._epoll_mark(ep, fd, sock)

    # -- would-block registration (no extra syscall; the issue above
    #    already expressed interest, as with FASYNC on a real kernel) ------

    def _new_request(self, op: str, sock: Optional[Socket], requester: Any,
                     finisher: Optional[Callable] = None, **extra: Any) -> NetRequest:
        return NetRequest(
            reqid=next(self._req_ids),
            op=op,
            sock=sock,
            requester=requester,
            issue_time=self._world.now,
            finisher=finisher,
            **extra,
        )

    def wait_accept(self, sock: Socket, requester: Any,
                    finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("accept", sock, requester, finisher)
        sock.pending_accepts.append(request)
        return request

    def wait_connect(self, sock: Socket, requester: Any,
                     finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("connect", sock, requester, finisher)
        sock.pending_connect = request
        return request

    def wait_recv(self, sock: Socket, requester: Any,
                  finisher: Optional[Callable] = None) -> NetRequest:
        request = self._new_request("recv", sock, requester, finisher)
        if sock.pending_recvs is None:
            sock.pending_recvs = deque()
        sock.pending_recvs.append(request)
        return request

    def wait_send(self, sock: Socket, requester: Any, nbytes: int,
                  meta: Optional[dict],
                  finisher: Optional[Callable] = None) -> NetRequest:
        """Park a backpressured send on the *peer's* receive buffer."""
        request = self._new_request(
            "send", sock, requester, finisher, nbytes=nbytes, meta=meta
        )
        peer = sock.peer
        if peer.waiting_senders is None:
            peer.waiting_senders = deque()
        peer.waiting_senders.append(request)
        self.backpressure_stalls += 1
        return request

    def wait_select(self, entries: List[Tuple[int, Socket]],
                    requester: Any) -> NetRequest:
        request = self._new_request(
            "select", None, requester, None, entries=list(entries)
        )
        for __, sock in entries:
            if sock.selectors is None:
                sock.selectors = []
            sock.selectors.append(request)
        return request

    def wait_epoll(self, ep: EpollInstance, requester: Any) -> NetRequest:
        """Park an epoll_wait caller on its interest list; the next
        readiness edge completes it with the one ready fd (O(1))."""
        request = self._new_request("epoll", None, requester, None, epoll=ep)
        ep.waiter = request
        return request

    def cancel_request(self, request: NetRequest) -> None:
        """Teardown for a cancelled/timed-out waiter: deregister it so
        the kernel never wakes a thread that stopped waiting."""
        if request.done or request.cancelled:
            return
        request.cancelled = True
        sock = request.sock
        if request.op == "accept":
            _discard(sock.pending_accepts, request)
        elif request.op == "recv":
            _discard(sock.pending_recvs, request)
        elif request.op == "send":
            if sock.peer is not None:
                _discard(sock.peer.waiting_senders, request)
        elif request.op == "connect":
            if sock.pending_connect is request:
                sock.pending_connect = None
        elif request.op == "select":
            self._deregister_select(request)
        elif request.op == "epoll":
            ep = request.epoll
            if ep is not None and ep.waiter is request:
                ep.waiter = None

    # -- load-generator surface (kernel-resident remote hosts) ---------------

    def remote_connect(
        self,
        port: int,
        on_connected: Optional[Callable] = None,
        on_rx: Optional[Callable] = None,
        on_eof: Optional[Callable] = None,
        owner: Optional[Any] = None,
    ) -> Optional[Socket]:
        """A remote host connects: no syscall charge (it is not this
        machine's kernel entering), same admission and latency rules.

        ``owner`` attaches a kernel-resident state record (an object
        with ``connected``/``rx``/``eof`` methods, see
        :class:`ResidentClient`); it takes precedence over the per-
        callback hooks and costs no closure per event.
        """
        listener = self.listeners.get(port)
        if listener is None or not self._admit_connection(listener):
            self.connections_refused += 1
            return None
        listener.claims += 1
        client = Socket(self, self.rx_capacity, kernel_owned=True)
        client.owner = owner
        client.on_connected = on_connected
        client.on_rx = on_rx
        client.on_eof = on_eof
        server_side = Socket(self, self.rx_capacity)
        self._pair(client, server_side, port)
        client.state = "connecting"
        self._world.schedule_in(
            self._link_delay(0),
            lambda: self._establish(listener, server_side, client),
            name="net-establish#%d" % server_side.sid,
        )
        return client

    def remote_send(self, sock: Socket, nbytes: int,
                    meta: Optional[dict] = None) -> None:
        """A remote host sends (no syscall charge).  Remote senders are
        never backpressured mid-simulation: over-admission queues on
        the link and counts as a stall."""
        peer = sock.peer
        if peer is None or peer.state == "closed":
            return
        if not self._rx_admit(peer, nbytes):
            self.backpressure_stalls += 1
        self._transmit(peer, nbytes, meta)

    def remote_close(self, sock: Socket) -> None:
        self._close(sock)

    # -- kernel-internal machinery -------------------------------------------

    def _pair(self, a: Socket, b: Socket, port: int) -> None:
        a.peer = b
        b.peer = a
        a.port = port
        b.port = port

    def _admit_connection(self, listener: Socket) -> bool:
        if listener.state != "listening":
            return False
        return len(listener.accept_queue) + listener.claims < listener.backlog

    def _link_delay(self, nbytes: int) -> int:
        delay_us = self.latency_us
        if not self.deterministic:
            delay_us = self._world.rng.expovariate(self.latency_us)
        if self.bandwidth_bytes_per_us > 0 and nbytes:
            delay_us += nbytes / self.bandwidth_bytes_per_us
        return max(self._world.cycles_for_us(delay_us), 1)

    def _establish(self, listener: Socket, server_side: Socket,
                   client: Socket) -> None:
        """Link event: the connection reaches the listener."""
        self._world.spend(costs.NET_DELIVER, fire=False)
        listener.claims -= 1
        if listener.state != "listening":
            self.connections_refused += 1
            client.state = "closed"
            server_side.state = "closed"
            return
        server_side.state = "connected"
        client.state = "connected"
        self.connections_opened += 1
        listener.accept_queue.append((server_side, self._world.now))
        self.accept_depths.append(len(listener.accept_queue))
        if listener.pending_accepts:
            request = listener.pending_accepts.popleft()
            conn = self._accept_pop(listener)
            self._complete(request, conn)
        else:
            self._notify_selectors(listener)
            if listener.watchers:
                self._epoll_edges(listener)
        # Tell the connecting side.
        if client.owner is not None:
            client.owner.connected(client)
        elif client.pending_connect is not None:
            request, client.pending_connect = client.pending_connect, None
            self._complete(request, client)
        elif client.on_connected is not None:
            client.on_connected(client)

    def _accept_pop(self, sock: Socket) -> Optional[Socket]:
        if not sock.accept_queue:
            return None
        conn, enqueued_at = sock.accept_queue.popleft()
        self.accept_waits.append(self._world.now - enqueued_at)
        return conn

    def _rx_admit(self, sock: Socket, nbytes: int) -> bool:
        if sock.kernel_owned:
            return True  # remote endpoints consume on arrival
        return sock.rx_bytes + sock.rx_inflight + nbytes <= sock.rx_capacity

    def _rx_pop(self, sock: Socket) -> Message:
        msg = sock.rx.popleft()
        sock.rx_bytes -= msg.nbytes
        return msg

    def _transmit(self, dst: Socket, nbytes: int,
                  meta: Optional[dict]) -> None:
        dst.rx_inflight += nbytes
        msg = Message(nbytes=nbytes, meta=dict(meta or {}),
                      sent_at=self._world.now)
        self._world.schedule_in(
            self._link_delay(nbytes),
            lambda: self._deliver(dst, msg),
            name="net-deliver",
        )

    def _deliver(self, dst: Socket, msg: Message) -> None:
        """Link event: a message arrives at ``dst``."""
        self._world.spend(costs.NET_DELIVER, fire=False)
        dst.rx_inflight -= msg.nbytes
        if dst.state == "closed":
            return  # arrived after close: dropped on the floor
        msg.delivered_at = self._world.now
        self.messages_delivered += 1
        self.bytes_delivered += msg.nbytes
        if dst.kernel_owned:
            owner = dst.owner
            if owner is not None:
                owner.rx(dst, msg)
            elif dst.on_rx is not None:
                dst.on_rx(dst, msg)
            return
        if dst.pending_recvs:
            # Direct handoff to the parked receiver: the bytes never
            # occupy the buffer, so that space stays free -- re-admit
            # any sender parked on it before the handoff.
            request = dst.pending_recvs.popleft()
            self._world.spend(costs.RECV_WORK, fire=False)
            self._complete(request, msg)
            self._drain_senders(dst)
            return
        if dst.rx is None:
            dst.rx = deque()
        dst.rx.append(msg)
        dst.rx_bytes += msg.nbytes
        self._notify_selectors(dst)
        if dst.watchers:
            self._epoll_edges(dst)

    def _drain_senders(self, sock: Socket) -> None:
        """Receive-buffer space freed: resume backpressured senders."""
        while sock.waiting_senders:
            request = sock.waiting_senders[0]
            if not self._rx_admit(sock, request.nbytes):
                return
            sock.waiting_senders.popleft()
            self._transmit(sock, request.nbytes, request.meta)
            self._complete(request, request.nbytes)

    def _close(self, sock: Socket) -> None:
        if sock.state == "closed":
            return
        was_listening = sock.state == "listening"
        sock.state = "closed"
        if was_listening and self.listeners.get(sock.port) is sock:
            del self.listeners[sock.port]
        # Purge readiness state *now*, before the fd is recycled: a
        # stale interest-list or selector entry matching a reused fd
        # would wake a dispatcher for the wrong socket.
        if sock.watchers:
            for ep, fd in sock.watchers:
                if ep.interest.get(fd) is sock:
                    del ep.interest[fd]
                    ep.ready.pop(fd, None)
            del sock.watchers[:]
        if sock.selectors:
            del sock.selectors[:]
        peer = sock.peer
        if peer is not None and peer.state not in ("closed",):
            self._world.schedule_in(
                self._link_delay(0),
                lambda: self._deliver_eof(peer),
                name="net-eof#%d" % peer.sid,
            )

    def _deliver_eof(self, sock: Socket) -> None:
        self._world.spend(costs.NET_DELIVER, fire=False)
        if sock.state == "closed" or sock.rx_eof:
            return
        sock.rx_eof = True
        self.eof_delivered += 1
        if sock.kernel_owned:
            owner = sock.owner
            if owner is not None:
                owner.eof(sock)
            elif sock.on_eof is not None:
                sock.on_eof(sock)
            return
        # Buffered data drains first; EOF only wakes an *empty* socket.
        if not sock.rx:
            while sock.pending_recvs:
                self._complete(sock.pending_recvs.popleft(), EOF)
        self._notify_selectors(sock)
        if sock.watchers:
            self._epoll_edges(sock)

    # -- completion (both of the paper's paths) ------------------------------

    def _complete(self, request: NetRequest, raw: Any) -> None:
        if request.cancelled:
            return
        request.done = True
        request.complete_time = self._world.now
        if request.finisher is not None:
            request.result = request.finisher(raw)
        else:
            request.result = raw
        if self.channel is not None:
            # First-class path: the datum goes straight to the
            # user-level scheduler through shared memory.
            self.fc_completions += 1
            self.channel.notify(request.requester, request)
            return
        self.sigio_completions += 1
        cause = SigCause(kind="io", thread=request.requester, data=request)
        self._world.spend(costs.INSN, fire=False)
        self._kernel.post_signal(self._proc, SIGIO, cause)

    def _notify_selectors(self, sock: Socket) -> None:
        if not sock.selectors:
            return
        for request in list(sock.selectors):
            if request.done or request.cancelled:
                continue
            ready = [fd for fd, s in request.entries if s.readable()]
            if ready:
                self._deregister_select(request)
                self._complete(request, ready)

    def _deregister_select(self, request: NetRequest) -> None:
        for __, sock in request.entries:
            if sock.selectors and request in sock.selectors:
                sock.selectors.remove(request)

    def __repr__(self) -> str:
        return "NetStack(conns=%d, msgs=%d, stalls=%d)" % (
            self.connections_opened,
            self.messages_delivered,
            self.backpressure_stalls,
        )


class ResidentClient:
    """One kernel-resident simulated client: an O(1) state record.

    The paper's thesis applied to the load generator: a client needs
    no thread, no generator, no stack -- just kernel state advanced by
    event-horizon entries.  The record *is* the socket's owner; the
    kernel calls its ``connected``/``rx``/``eof`` methods directly from
    link events, and the only other entries it touches are its
    pre-scheduled arrival and its think-time wakeups.

    Lifecycle (the states are implicit in ``sock``/``sent``):

    ``CONNECT``(arrive) -> ``SEND`` -> ``AWAIT_REPLY``(rx) ->
    ``THINK``(timer) -> ``SEND`` ... -> ``CLOSE`` after
    ``requests_per_client`` replies.
    """

    __slots__ = ("engine", "cid", "sock", "sent")

    def __init__(self, engine: "ResidentClientEngine", cid: int) -> None:
        self.engine = engine
        self.cid = cid
        self.sock: Optional[Socket] = None
        self.sent = 0

    # -- CONNECT: the pre-scheduled arrival event ------------------------

    def arrive(self) -> None:
        eng = self.engine
        sock = eng.stack.remote_connect(eng.port, owner=self)
        if sock is None:
            eng.refused += 1
            collector = eng.collector
            if collector is not None:
                collector.refused += 1
            return
        self.sock = sock
        eng.active += 1
        if eng.active > eng.peak_active:
            eng.peak_active = eng.active

    # -- SEND ------------------------------------------------------------

    def send(self) -> None:
        eng = self.engine
        meta = {
            "t0": eng.world.now_us,
            "cid": self.cid,
            "rid": self.sent,
        }
        self.sent += 1
        eng.requests_sent += 1
        eng.stack.remote_send(self.sock, eng.req_bytes, meta)

    # -- kernel upcalls (socket owner protocol) --------------------------

    def connected(self, sock: Socket) -> None:
        self.send()

    def rx(self, sock: Socket, msg: Message) -> None:
        """AWAIT_REPLY satisfied: sample latency, then THINK or CLOSE."""
        eng = self.engine
        eng.replies += 1
        latency = eng.world.now_us - msg.meta["t0"]
        eng.latencies_us.append(latency)
        collector = eng.collector
        if collector is not None:
            collector.latencies_us.append(latency)
        if self.sent >= eng.requests_per_client:
            eng.stack.remote_close(self.sock)
            eng.completed += 1
            eng.active -= 1
            return
        eng.world.schedule_in(
            eng.think_cycles, self.send, name="client-%d-think" % self.cid
        )

    def eof(self, sock: Socket) -> None:
        """Server closed first: the record simply goes quiescent."""


class ResidentClientEngine:
    """The shared half of a kernel-resident client fleet.

    Holds everything common to the records (stack, protocol parameters,
    result counters) so each :class:`ResidentClient` is four slots.
    The front-end (:class:`repro.net.loadgen.LoadGenerator`) compiles
    the arrival process into pre-scheduled events whose actions are the
    records' bound ``arrive`` methods, and reads results back through
    this object.  Registers itself on ``stack.resident`` so the
    observability layer can harvest ``loadgen.resident.*`` counters.
    """

    __slots__ = (
        "stack", "world", "port", "requests_per_client", "req_bytes",
        "think_cycles", "collector", "latencies_us", "requests_sent",
        "replies", "refused", "completed", "spawned", "active",
        "peak_active",
    )

    def __init__(
        self,
        stack: NetStack,
        port: int,
        requests_per_client: int,
        req_bytes: int,
        think_us: float,
        collector: Optional[Any] = None,
    ) -> None:
        self.stack = stack
        self.world = stack._world
        self.port = port
        self.requests_per_client = requests_per_client
        self.req_bytes = req_bytes
        self.think_cycles = max(1, self.world.cycles_for_us(think_us))
        self.collector = collector
        self.latencies_us: List[float] = []
        self.requests_sent = 0
        self.replies = 0
        self.refused = 0
        self.completed = 0  # clients that finished all requests + closed
        self.spawned = 0
        self.active = 0  # arrived (admitted) and not yet closed
        self.peak_active = 0
        stack.resident = self

    def client(self, cid: int) -> ResidentClient:
        self.spawned += 1
        return ResidentClient(self, cid)

    def counters(self) -> Dict[str, int]:
        """Harvested as ``loadgen.resident.*`` by the obs layer."""
        return {
            "loadgen.resident.spawned": self.spawned,
            "loadgen.resident.active": self.active,
            "loadgen.resident.peak_active": self.peak_active,
            "loadgen.resident.completed": self.completed,
            "loadgen.resident.refused": self.refused,
            "loadgen.resident.requests_sent": self.requests_sent,
            "loadgen.resident.replies": self.replies,
        }


def _discard(queue: Optional[deque], request: NetRequest) -> None:
    if queue is None:
        return
    try:
        queue.remove(request)
    except ValueError:
        pass
