"""A Marsh & Scott style kernel/user interface (the paper's proposal).

Under "Non-Blocking Kernel Calls" the paper endorses Psyche's
first-class user-level threads [16]: "when issuing non-blocking I/O
requests the kernel associates the request with a user-provided datum
(the calling thread) such that the user-level thread scheduler can be
notified of the I/O completion in conjunction with this datum.  This
obviates signal demultiplexing at the user level which should increase
the response to asynchronous events considerably."

:class:`FirstClassInterface` is that interface: a software-interrupt
channel through shared memory.  Completions carry the datum straight
to a registered user-scheduler callback at a cost comparable to a trap
(no UNIX signal delivery, no universal handler, no sigsetmask pair).
``benchmarks/test_ablation_first_class.py`` measures the difference
against the SIGIO path, reproducing the paper's argument.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.hw import costs
from repro.sim.world import World
from repro.unix.io import IoRequest
from repro.unix.kernel import UnixKernel

#: Cost of the kernel posting a completion into the shared-memory
#: channel and resuming user code -- the "without unduly complicating
#: the operating system kernel" price: far below full signal delivery.
SOFT_INTERRUPT_CYCLES = 240


class FirstClassInterface:
    """The shared-memory kernel/user notification channel."""

    def __init__(self, world: World, kernel: UnixKernel) -> None:
        self.world = world
        self.kernel = kernel
        #: The user-level scheduler's upcall: ``fn(datum, request)``.
        self._upcall: Optional[Callable[[Any, IoRequest], None]] = None
        #: Completions that arrived before an upcall was registered.
        self.backlog: List[Tuple[Any, IoRequest]] = []
        self.notifications = 0

    def register_scheduler(
        self, upcall: Callable[[Any, IoRequest], None]
    ) -> None:
        """One syscall at initialisation registers the channel."""
        self.kernel._enter("fc_register")
        self._upcall = upcall
        backlog, self.backlog = self.backlog, []
        for datum, request in backlog:
            self._notify(datum, request)

    def submit(
        self, fd: int, op: str, nbytes: int, datum: Any
    ) -> IoRequest:
        """Issue non-blocking I/O with a user datum attached.

        One syscall for the issue, as usual; the *completion* comes
        back through shared memory, not a signal.
        """
        if op not in ("read", "write"):
            raise ValueError("bad I/O op: %r" % (op,))
        self.kernel._enter("fc_aio_%s" % op)
        return IoRequest(
            reqid=next(_fc_ids),
            fd=fd,
            op=op,
            nbytes=nbytes,
            requester=datum,
            issue_time=self.world.now,
        )

    def complete(self, request: IoRequest) -> None:
        """Kernel side: the device finished; notify the user scheduler
        through the channel (cheap), never through a signal."""
        request.done = True
        request.result = request.nbytes
        request.complete_time = self.world.now
        self._notify(request.requester, request)

    def notify(self, datum: Any, request: Any) -> None:
        """Kernel side: generic completion with the result already set.

        Disk completions go through :meth:`complete` (which stamps the
        byte count); network completions (:mod:`repro.unix.net`) carry
        richer results and arrive here with ``request.result`` filled
        in.  Same channel, same soft-interrupt cost, same upcall.
        """
        self._notify(datum, request)

    def _notify(self, datum: Any, request: IoRequest) -> None:
        self.world.spend_cycles(SOFT_INTERRUPT_CYCLES, fire=False)
        self.notifications += 1
        if self._upcall is None:
            self.backlog.append((datum, request))
            return
        self._upcall(datum, request)


_fc_ids = itertools.count(1_000_000)
