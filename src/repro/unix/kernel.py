"""The UNIX kernel object: syscall dispatch, processes, signal delivery.

Every service charges the (expensive) kernel enter/exit overhead plus
its in-kernel work, and is counted in :attr:`UnixKernel.syscall_counts`
-- the paper's "few operating system calls" objective is verified
against these counters (see ``tests/integration/test_syscall_budget``).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional

from repro.hw import costs
from repro.hw.memory import Heap
from repro.sim.world import World
from repro.unix.sigset import (
    SIGCHLD,
    SIGCONT,
    SIGIO,
    SIGURG,
    SIGWINCH,
    SigSet,
    check_signal,
)
from repro.unix.signals import (
    DefaultActionTerminate,
    InterruptFrame,
    ProcessSignals,
    SigAction,
    SigCause,
)

#: Signals whose default action is to be discarded (BSD).
_DEFAULT_IGNORED = frozenset(
    {SIGCHLD, SIGURG, SIGWINCH, SIGIO, SIGCONT}
)


class UnixKernel:
    """One machine's UNIX kernel.

    Owns the process table and implements the syscall surface the
    Pthreads library needs (the paper's "about 20 UNIX services").
    """

    def __init__(self, world: World) -> None:
        self.world = world
        self.processes: Dict[int, "UnixProcessLike"] = {}
        self._next_pid = 100
        self.syscall_counts: Counter = Counter()
        #: Set by the mini process scheduler; a process receives posted
        #: signals immediately only while it is current (or marked
        #: ``auto_deliver``, as the single Pthreads process is).
        self.current_proc: Optional["UnixProcessLike"] = None

    # -- process table -------------------------------------------------------

    def register(self, proc: "UnixProcessLike") -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.processes[pid] = proc
        proc.pid = pid
        return pid

    def find(self, pid: int) -> "UnixProcessLike":
        try:
            return self.processes[pid]
        except KeyError:
            raise ProcessLookupError("no such process: %d" % pid) from None

    # -- syscall plumbing ------------------------------------------------------

    def _enter(self, name: str, work_key: Optional[str] = None) -> None:
        """Charge kernel enter/exit overhead plus in-kernel work."""
        self.syscall_counts[name] += 1
        self.world.spend(costs.SYSCALL, fire=False)
        if work_key is not None:
            self.world.spend(work_key, fire=False)
        self.world.fire_due()

    @property
    def total_syscalls(self) -> int:
        return sum(self.syscall_counts.values())

    # -- the services ------------------------------------------------------------

    def getpid(self, proc: "UnixProcessLike") -> int:
        """The paper's "enter and exit UNIX kernel" yardstick."""
        self._enter("getpid", costs.GETPID_WORK)
        return proc.pid

    def sigaction(
        self, proc: "UnixProcessLike", sig: int, action: SigAction
    ) -> SigAction:
        check_signal(sig)
        self._enter("sigaction", costs.SIGACTION_WORK)
        return proc.signals.set_action(sig, action)

    def sigsetmask(self, proc: "UnixProcessLike", mask: SigSet) -> SigSet:
        """Replace the process signal mask; may release pending signals."""
        self._enter("sigsetmask", costs.SIGSETMASK_WORK)
        old = proc.signals.set_mask(mask)
        self._deliver_if_current(proc)
        return old

    def sigblock(self, proc: "UnixProcessLike", signals: SigSet) -> SigSet:
        self._enter("sigblock", costs.SIGSETMASK_WORK)
        return proc.signals.block(signals)

    def sigpending(self, proc: "UnixProcessLike") -> SigSet:
        self._enter("sigpending", costs.SIGSETMASK_WORK)
        return proc.signals.pending_set()

    def kill(
        self,
        target: "UnixProcessLike",
        sig: int,
        cause: Optional[SigCause] = None,
    ) -> None:
        """Generate ``sig`` for ``target`` (also models external senders)."""
        check_signal(sig)
        self._enter("kill", costs.KILL_WORK)
        self.post_signal(target, sig, cause or SigCause(kind="external"))

    def sbrk(self, proc: "UnixProcessLike", amount: int) -> None:
        self._enter("sbrk", costs.SBRK_WORK)
        del proc, amount  # accounting only; the Heap tracks sizes

    def make_heap(self, proc: "UnixProcessLike", **kwargs: Any) -> Heap:
        """A heap whose growth goes through this kernel's ``sbrk``."""
        return Heap(
            self.world.clock,
            self.world.model,
            sbrk=lambda amount: self.sbrk(proc, amount),
            **kwargs,
        )

    # -- signal generation & delivery ----------------------------------------------

    def post_signal(
        self, proc: "UnixProcessLike", sig: int, cause: SigCause
    ) -> None:
        """Mark a signal pending and deliver it if the process is current.

        This is the non-syscall entry used by timers, devices, and other
        in-kernel sources.  On an SMP world, an asynchronous signal
        whose interrupt is taken on a different CPU than the target's
        crosses via an interprocessor interrupt: the pending bit is set
        only when the IPI lands (``IPI_LATENCY`` later), not by a
        direct poke at the target's queues.
        """
        smp = self.world.smp
        if smp is not None and smp.route_signal(self, proc, sig, cause):
            return
        self.post_signal_local(proc, sig, cause)

    def post_signal_local(
        self, proc: "UnixProcessLike", sig: int, cause: SigCause
    ) -> None:
        """Same-CPU signal generation (also the IPI landing action)."""
        proc.signals.post(sig, cause)
        self._deliver_if_current(proc)

    def _deliver_if_current(self, proc: "UnixProcessLike") -> None:
        if getattr(proc, "auto_deliver", False) or proc is self.current_proc:
            self.deliver_signals(proc)

    def deliver_signals(self, proc: "UnixProcessLike") -> int:
        """Deliver every deliverable pending signal to ``proc``.

        Returns the number delivered.  Raises
        :class:`DefaultActionTerminate` when a default-action signal
        kills the process.
        """
        delivered = 0
        while True:
            item = proc.signals.take_deliverable()
            if item is None:
                return delivered
            sig, cause = item
            action = proc.signals.get_action(sig)
            if action.is_ignore():
                continue
            if action.is_default():
                if sig in _DEFAULT_IGNORED:
                    continue
                raise DefaultActionTerminate(sig)
            # Push the interrupt frame: the kernel blocks the signal
            # itself plus the action's mask for the handler's duration.
            self.world.spend(costs.UNIX_SIGNAL_DELIVER, fire=False)
            saved = proc.signals.mask.copy()
            extra = SigSet([sig]) | action.mask
            proc.signals.mask = saved | extra
            frame = InterruptFrame(sig=sig, cause=cause, saved_mask=saved)
            delivered += 1
            if action.manual_return:
                # Pthreads universal handler: the library performs the
                # sigreturn when the interrupted thread resumes.
                proc.interrupt_frames.append(frame)
                action.handler(sig, cause)
            else:
                action.handler(sig, cause)
                self.sigreturn_inline(proc, frame)

    def sigreturn_inline(
        self, proc: "UnixProcessLike", frame: InterruptFrame
    ) -> None:
        """Ordinary handler return: restore mask and global state."""
        self.world.spend(costs.UNIX_SIGRETURN, fire=False)
        proc.signals.mask = frame.saved_mask
        self.world.fire_due()

    def sigreturn_frame(
        self, proc: "UnixProcessLike", frame: InterruptFrame
    ) -> None:
        """Return from a specific interrupt frame held by the library.

        The Pthreads dispatcher parks interrupt frames on the
        interrupted thread's TCB and returns through them only when
        that thread is redispatched; this is the charge-and-restore for
        that deferred path.
        """
        self.world.spend(costs.UNIX_SIGRETURN, fire=False)
        proc.signals.mask = frame.saved_mask
        self.world.fire_due()

    def sigreturn(self, proc: "UnixProcessLike") -> InterruptFrame:
        """Manual sigreturn for the universal handler's deferred path.

        Pops the most recent interrupt frame, charges the return path,
        and restores the mask saved at delivery.
        """
        if not proc.interrupt_frames:
            raise RuntimeError("sigreturn with no pending interrupt frame")
        frame = proc.interrupt_frames.pop()
        self.world.spend(costs.UNIX_SIGRETURN, fire=False)
        proc.signals.mask = frame.saved_mask
        self.world.fire_due()
        return frame


class UnixProcessLike:
    """Structural interface of things the kernel treats as processes.

    Concrete implementations: :class:`repro.unix.process.UnixProcess`
    (the mini multi-process world) and the Pthreads library's host
    process (:class:`repro.core.runtime.HostProcess`).
    """

    pid: int = -1
    signals: ProcessSignals
    interrupt_frames: List[InterruptFrame]
    auto_deliver: bool = False
    #: Which simulated CPU the process runs on (SMP signal routing).
    cpu: int = 0
