"""Structured execution tracing.

Every interesting action in the simulator can emit a trace record:
context switches, signal deliveries, mutex operations, priority
adjustments.  Records carry the virtual timestamp, a kind tag, and
free-form fields.  Tests and the Figure 5 reproduction read the trace to
assert *orderings* ("P2 never ran while P3 was blocked"), which is the
paper's own evidence style.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.fields.items()))
        return "@%d %s(%s)" % (self.time, self.kind, inner)


class Tracer:
    """Collects :class:`TraceRecord` objects against a virtual clock.

    Parameters
    ----------
    clock:
        Object with a ``cycles`` attribute (usually the world's clock).
        May be attached later via :meth:`attach`.
    kinds:
        If given, only these record kinds are kept (cheap filtering for
        long runs).
    limit:
        Maximum records retained (oldest dropped past the limit);
        None means unbounded.
    """

    def __init__(
        self,
        clock: Optional[object] = None,
        kinds: Optional[Iterable[str]] = None,
        limit: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self._kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self._limit = limit
        #: A deque so bounded eviction is O(1) (``maxlen`` drops the
        #: oldest record on append); unbounded when ``limit`` is None.
        #: Iteration and the query helpers behave exactly as the old
        #: list did; callers needing slices use ``list(tracer.records)``.
        self.records: Deque[TraceRecord] = deque(maxlen=limit)
        self.dropped = 0

    def attach(self, clock: object) -> None:
        """Bind the tracer to a clock (done by the runtime on startup)."""
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        time = getattr(self._clock, "cycles", 0) if self._clock else 0
        records = self.records
        if self._limit is not None and len(records) == self._limit:
            self.dropped += 1  # maxlen evicts the oldest on append
        records.append(TraceRecord(time=time, kind=kind, fields=fields))

    def of_kind(self, *kinds: str) -> List[TraceRecord]:
        """Records matching any of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self.records if r.kind in wanted]

    def where(self, kind: str, **match: Any) -> List[TraceRecord]:
        """Records of ``kind`` whose fields include every ``match`` item."""
        out = []
        for record in self.records:
            if record.kind != kind:
                continue
            if all(record.get(k) == v for k, v in match.items()):
                out.append(record)
        return out

    def first(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        hits = self.where(kind, **match)
        return hits[0] if hits else None

    def last(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        hits = self.where(kind, **match)
        return hits[-1] if hits else None

    def latest_time(self) -> Optional[int]:
        """Timestamp of the newest record (None when empty).

        Records are emitted against a monotonic clock, so the last
        record is also the latest one.
        """
        return self.records[-1].time if self.records else None

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
