"""Thread-state inspection and execution timelines.

:class:`Timeline` turns the tracer's dispatch records into "who ran
when" segments -- the exact evidence the paper's Figure 5 presents as
solid lines under the three priority-inversion scenarios.
:class:`Inspector` renders per-thread state from the TCBs, the
information the paper suggests a threads-aware debugger should expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.debug.trace import Tracer


@dataclass(frozen=True)
class Segment:
    """A half-open interval [start, end) during which ``thread`` ran."""

    start: int
    end: int
    thread: str

    @property
    def length(self) -> int:
        return self.end - self.start


class Timeline:
    """Execution segments reconstructed from ``dispatch`` trace records."""

    def __init__(self, tracer: Tracer, end_time: Optional[int] = None) -> None:
        records = tracer.of_kind("dispatch")
        if end_time is None:
            # Without an explicit end the final dispatch would get a
            # zero-length segment and the last-running thread would be
            # undercounted by ran()/runtime_of(); the newest record of
            # *any* kind is the latest instant the trace can vouch for.
            end_time = tracer.latest_time()
        self.segments: List[Segment] = []
        for index, record in enumerate(records):
            if index + 1 < len(records):
                end = records[index + 1].time
            else:
                end = end_time if end_time is not None else record.time
            if end < record.time:
                end = record.time
            self.segments.append(
                Segment(record.time, end, record["thread"])
            )

    def ran(self, thread: str) -> bool:
        """Did ``thread`` execute at all (for a nonzero interval)?"""
        return any(s.thread == thread and s.length > 0 for s in self.segments)

    def runtime_of(self, thread: str) -> int:
        """Total cycles ``thread`` held the CPU."""
        return sum(s.length for s in self.segments if s.thread == thread)

    def ran_during(self, thread: str, start: int, end: int) -> bool:
        """Did ``thread`` run (partly) inside [start, end)?"""
        if end <= start:
            return False  # empty window contains no instants
        for s in self.segments:
            if s.thread != thread:
                continue
            if s.start < end and s.end > start and s.length > 0:
                return True
        return False

    def order_of_first_runs(self) -> List[str]:
        """Thread names in order of first dispatch."""
        seen: List[str] = []
        for s in self.segments:
            if s.thread not in seen:
                seen.append(s.thread)
        return seen

    def render(self, us_per_cycle: float = 1.0, width: int = 72) -> str:
        """ASCII art of the timeline (one row per thread)."""
        if not self.segments:
            return "(empty timeline)"
        t0 = self.segments[0].start
        t1 = max(s.end for s in self.segments)
        span = max(t1 - t0, 1)
        threads = sorted({s.thread for s in self.segments})
        lines = []
        for thread in threads:
            row = [" "] * width
            for s in self.segments:
                if s.thread != thread or s.length == 0:
                    continue
                lo = int((s.start - t0) * (width - 1) / span)
                hi = max(int((s.end - t0) * (width - 1) / span), lo)
                for i in range(lo, hi + 1):
                    row[i] = "="
            lines.append("%-12s |%s|" % (thread, "".join(row)))
        header = "%-12s  t=%d..%d cycles (%.1f us)" % (
            "",
            t0,
            t1,
            span * us_per_cycle,
        )
        return "\n".join([header] + lines)


class Inspector:
    """Debugger-style views over a Pthreads runtime's thread table."""

    def __init__(self, runtime: Any) -> None:
        self._runtime = runtime

    def thread_rows(self) -> List[dict]:
        """One summary dict per live thread."""
        rows = []
        for tcb in self._runtime.all_threads():
            rows.append(
                {
                    "name": tcb.name,
                    "state": tcb.state.name,
                    "priority": tcb.effective_priority,
                    "base_priority": tcb.base_priority,
                    "detached": tcb.detached,
                    "frames": tcb.frames.depth(),
                    "stack_used": tcb.stack.used if tcb.stack else 0,
                    "pending_signals": sorted(tcb.pending.signals()),
                }
            )
        return rows

    def render(self) -> str:
        """Tabular dump of every thread, debugger style."""
        rows = self.thread_rows()
        if not rows:
            return "(no threads)"
        header = "%-14s %-10s %4s %4s %-5s %6s %10s %s" % (
            "THREAD",
            "STATE",
            "PRIO",
            "BASE",
            "DET",
            "FRAMES",
            "STACK",
            "PENDING",
        )
        lines = [header]
        for row in rows:
            lines.append(
                "%-14s %-10s %4d %4d %-5s %6d %10d %s"
                % (
                    row["name"],
                    row["state"],
                    row["priority"],
                    row["base_priority"],
                    "yes" if row["detached"] else "no",
                    row["frames"],
                    row["stack_used"],
                    ",".join(map(str, row["pending_signals"])) or "-",
                )
            )
        return "\n".join(lines)
