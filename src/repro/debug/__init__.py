"""Debugging facilities.

The paper's "Future Work" sketches a threads-aware debugging
environment: context switches visible to the user, per-thread
information extracted from the TCB.  This package provides the
reproduction's version of that: a structured trace of every scheduling
decision, signal delivery, and synchronization event
(:mod:`repro.debug.trace`) and an inspector that renders per-thread
state and execution timelines (:mod:`repro.debug.inspector`) -- the
timelines are also how the Figure 5 priority-inversion plots are
regenerated.
"""

from repro.debug.inspector import Inspector, Timeline
from repro.debug.replay import (
    ScheduleDiff,
    ScheduleStep,
    compare_schedules,
    extract_schedule,
    schedules_identical,
)
from repro.debug.trace import TraceRecord, Tracer

__all__ = [
    "Inspector",
    "ScheduleDiff",
    "ScheduleStep",
    "Timeline",
    "TraceRecord",
    "Tracer",
    "compare_schedules",
    "extract_schedule",
    "schedules_identical",
]
