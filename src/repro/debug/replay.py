"""Schedule comparison: the reproducibility half of perverted debugging.

The paper prefers the perverted policies to time-sliced debugging
because their interleavings are *reproducible*: "errors which occur
during time-sliced round-robin scheduling may not be reproducible".
This module makes that property checkable: extract the schedule (the
ordered list of dispatch decisions) from a traced run and diff two
schedules, reporting the first divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.debug.trace import Tracer


@dataclass(frozen=True)
class ScheduleStep:
    """One dispatch decision."""

    time: int
    thread: str

    def __str__(self) -> str:
        return "@%d->%s" % (self.time, self.thread)


def extract_schedule(tracer: Tracer) -> List[ScheduleStep]:
    """The ordered dispatch decisions of a traced run."""
    return [
        ScheduleStep(record.time, record["thread"])
        for record in tracer.of_kind("dispatch")
    ]


@dataclass
class ScheduleDiff:
    """Result of comparing two schedules."""

    identical: bool
    first_divergence: Optional[int]  # step index, None if identical
    detail: str

    def __bool__(self) -> bool:
        return self.identical


def compare_schedules(
    a: List[ScheduleStep], b: List[ScheduleStep],
    compare_times: bool = True,
) -> ScheduleDiff:
    """Diff two schedules; reports the first step where they part.

    ``compare_times=False`` compares only the *order* of threads (for
    runs whose workloads differ slightly in cost but should interleave
    identically).
    """
    for index, (step_a, step_b) in enumerate(zip(a, b)):
        same = step_a.thread == step_b.thread and (
            not compare_times or step_a.time == step_b.time
        )
        if not same:
            return ScheduleDiff(
                identical=False,
                first_divergence=index,
                detail="step %d: %s vs %s" % (index, step_a, step_b),
            )
    if len(a) != len(b):
        shorter = min(len(a), len(b))
        return ScheduleDiff(
            identical=False,
            first_divergence=shorter,
            detail="lengths differ: %d vs %d steps" % (len(a), len(b)),
        )
    return ScheduleDiff(identical=True, first_divergence=None,
                        detail="identical (%d steps)" % len(a))


def schedules_identical(tracer_a: Tracer, tracer_b: Tracer) -> bool:
    """Convenience: did two traced runs schedule identically?"""
    return bool(
        compare_schedules(
            extract_schedule(tracer_a), extract_schedule(tracer_b)
        )
    )
