"""Cleanup handlers.

The paper argues against the standard's suggested macro implementation
(``pthread_cleanup_push``/``pop`` as a macro pair opening a lexical
scope) because it cannot cross a language-independent interface, and
deliberately implements them as ordinary functions, "trading the
overhead of function calls ... for the generality and language-
independence of the interface".  We follow the paper: push and pop are
plain entry points over a per-thread stack of ``(handler, arg)``.

Handlers are generator functions ``handler(pt, arg)``: they run as
simulated frames on the dying (or popping) thread.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import EINVAL, OK
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs


class CleanupOps(LibraryOps):
    """Entry points for cleanup handlers."""

    ENTRIES = {
        "cleanup_push": "lib_cleanup_push",
        "cleanup_pop": "lib_cleanup_pop",
    }

    def lib_cleanup_push(self, tcb: Tcb, handler: Any, arg: Any = None) -> int:
        """Push ``handler(pt, arg)`` onto the calling thread's stack."""
        if not callable(handler):
            return EINVAL
        self.rt.world.spend(costs.CLEANUP_OP, fire=False)
        tcb.cleanup_stack.append((handler, arg))
        return OK

    def lib_cleanup_pop(self, tcb: Tcb, execute: bool = False) -> int:
        """Pop the most recent handler, running it if ``execute``."""
        rt = self.rt
        rt.world.spend(costs.CLEANUP_OP, fire=False)
        if not tcb.cleanup_stack:
            return EINVAL
        handler, arg = tcb.cleanup_stack.pop()
        if execute:
            # The handler runs before this call "returns": its frame
            # goes on top; the pop's result is already pending below.
            rt.push_frame(
                tcb, handler, (arg,), kind="user", deliver_to_caller=False
            )
        return OK
