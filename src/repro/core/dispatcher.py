"""The dispatcher (Figure 2 of the paper).

Called on kernel exit when the dispatcher flag is set.  Selects the
next thread per the scheduling policy; if it differs from the running
thread, performs a context switch:

- flush the outgoing thread's register windows (``ST_FLUSH_WINDOWS``);
- save/load the UNIX global error number;
- load the incoming frame (``restore`` -> window underflow trap).

Before transferring control the kernel and dispatcher flags are
cleared and the deferred-signal log is checked: if signals were caught
while inside the kernel they are handled now and the dispatch restarts,
because handling them may change which thread should run (the paper's
restart arrow in Figure 2).

When the incoming thread was interrupted by a UNIX signal, the
universal handler's frame is still pending on its stack: the dispatcher
disables all signals (the second ``sigsetmask`` of the paper's
two-per-signal budget), switches, and the thread "returns from the
universal signal handler", re-enabling signals via ``sigreturn``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs
from repro.unix.sigset import SigSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime

#: Shared "all signals blocked" mask for the pre-switch sigsetmask
#: (set_mask copies its argument, so sharing one instance is safe;
#: building it walks every signal number).
_FULL_MASK = SigSet.full()


class Dispatcher:
    """Implements the Figure 2 flowchart."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self._runtime = runtime
        # Pre-resolved cycle charges for the watcher-free fast path
        # (see LibKernel.__init__): one dispatch makes 3-4 charges.
        table = runtime.world._costs
        self._c_select = table[costs.DISPATCH_SELECT]
        self._c_overhead = table[costs.DISPATCH_OVERHEAD]
        self._c_dequeue = table[costs.READY_DEQUEUE]
        self._c_errno = table[costs.ERRNO_SWITCH]
        self.context_switches = 0
        self.dispatch_calls = 0
        self.signal_restarts = 0  # Figure 2's "signals caught?" loop

    def run(self) -> None:
        """One dispatcher invocation.  Requires the kernel flag set."""
        runtime = self._runtime
        kern = runtime.kern
        world = runtime.world
        self.dispatch_calls += 1
        obs = runtime.obs
        if obs is not None:
            # Live sample: ready-queue depth has no persistent counter
            # to harvest later, so it is observed here (one attribute
            # load and an is-check on the disabled path).
            obs.on_dispatch(runtime)
        clock = world.clock
        while True:
            if clock._watchers:
                world.spend(costs.DISPATCH_SELECT, fire=False)
            else:
                clock.cycles += self._c_select
            chosen = self._select()
            # Clear the flags before transferring control (Figure 2).
            if clock._watchers:
                world.spend(costs.DISPATCH_OVERHEAD, fire=False)
            else:
                clock.cycles += self._c_overhead
            kern.dispatcher_flag = False
            kern.kernel_flag = False
            if kern.deferred_signals or kern.deferred_upcalls:
                # Signals were caught while in the kernel: handle them
                # and restart the dispatch -- handling may ready a
                # higher-priority thread.
                self.signal_restarts += 1
                kern.kernel_flag = True
                if chosen is not None and chosen is not runtime.current:
                    # Put the tentative choice back where it came from.
                    runtime.sched.ready.enqueue(chosen, front=True)
                self._drain_deferred_signals()
                continue
            # Equivalent of ``with world.atomic():`` without the
            # contextmanager machinery (one transfer per dispatch).
            world._defer_depth += 1
            try:
                self._transfer_atomic(chosen)
            finally:
                world._defer_depth -= 1
            return

    # -- selection --------------------------------------------------------------

    def _select(self) -> Optional[Tcb]:
        """Pick who should run next; removes the pick from the ready
        queue.  Returns the current thread to mean "keep running"."""
        runtime = self._runtime
        policy = runtime.policy
        current = runtime.current

        if policy is None and (
            current is None or current.state is not ThreadState.RUNNING
        ):
            # No runner to compete with: the head of the ready queue
            # wins outright, so dequeue it directly (identical to the
            # peek-then-remove below -- remove of the head IS dequeue).
            ready = runtime.sched.ready
            if not ready._count:
                return None
            world = runtime.world
            if world.clock._watchers:
                world.spend(costs.READY_DEQUEUE, fire=False)
            else:
                world.clock.cycles += self._c_dequeue
            return ready.dequeue()

        candidate: Optional[Tcb] = None
        if policy is not None:
            candidate = policy.select(runtime)
        if candidate is None:
            candidate = runtime.sched.ready.peek()
        if current is not None and current.state is ThreadState.RUNNING:
            # The runner competes with the best ready thread; ties go
            # to the runner (no switch on equal priority).
            if candidate is None or (
                candidate.effective_priority <= current.effective_priority
            ):
                return current
            # Preempted: head of its own level (it did not yield).
            runtime.sched.preempt_current_for_dispatch()
        if candidate is not None:
            world = runtime.world
            if world.clock._watchers:
                world.spend(costs.READY_DEQUEUE, fire=False)
            else:
                world.clock.cycles += self._c_dequeue
            runtime.sched.ready.remove(candidate)
        return candidate

    def _drain_deferred_signals(self) -> None:
        """Direct every signal (and first-class upcall) logged while
        the kernel flag was set."""
        runtime = self._runtime
        deferred = runtime.kern.deferred_signals
        runtime.kern.deferred_signals = []
        for sig, cause in deferred:
            runtime.sigdeliver.direct_signal(sig, cause)
        upcalls = runtime.kern.deferred_upcalls
        runtime.kern.deferred_upcalls = []
        for request in upcalls:
            runtime.io_ops.fc_wake(request)

    # -- the context switch ---------------------------------------------------------

    def _transfer_atomic(self, chosen: Optional[Tcb]) -> None:
        runtime = self._runtime
        world = runtime.world
        old = runtime.current
        if chosen is old and chosen is not None:
            # No switch -- but if a signal interrupted this thread, it
            # returns from the universal handler right here.
            if chosen.pending_interrupt_frames:
                self._pop_interrupt_frames(chosen)
            return
        if chosen is None:
            # Nothing ready: the processor idles until an event.
            runtime.current = None
            if world.trace is not None:
                world.emit("dispatch", thread="<idle>")
            return

        occupant = runtime.on_cpu
        if occupant is not None and occupant is not chosen:
            # ST_FLUSH_WINDOWS: spill the outgoing thread's windows
            # (even across an idle gap -- they are still in the file).
            world.windows.flush()
            occupant.errno = runtime.unix_errno
        if world.clock._watchers:
            world.spend(costs.ERRNO_SWITCH, fire=False)
        else:
            world.clock.cycles += self._c_errno
        runtime.unix_errno = chosen.errno
        if occupant is not chosen:
            world.windows.switch_in()
        runtime.on_cpu = chosen

        chosen.state = ThreadState.RUNNING
        runtime.current = chosen
        if occupant is not chosen:
            # A dispatch back to the thread already occupying the CPU
            # (e.g. a yield with an empty ready queue) is not a switch.
            chosen.context_switches_in += 1
            self.context_switches += 1
        if world.trace is not None:
            world.emit(
                "dispatch",
                thread=chosen.name,
                from_thread=old.name if old else None,
            )

        if chosen.pending_interrupt_frames:
            self._pop_interrupt_frames(chosen)

    def _pop_interrupt_frames(self, tcb: Tcb) -> None:
        """Return from pending universal-handler frames.

        Signals are disabled (the second ``sigsetmask`` of the paper's
        two-per-signal budget) before resuming an interrupted thread,
        or another universal-handler instance could pile on top of the
        pending one -- the unbounded-stack-growth hazard.  The
        ``sigreturn`` then restores the mask saved at delivery,
        re-enabling signals.
        """
        runtime = self._runtime
        if not tcb.pending_interrupt_frames:
            return
        runtime.unix.sigsetmask(runtime.proc, _FULL_MASK)
        while tcb.pending_interrupt_frames:
            frame = tcb.pending_interrupt_frames.pop()
            runtime.unix.sigreturn_frame(runtime.proc, frame)
