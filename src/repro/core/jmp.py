"""``setjmp`` / ``longjmp`` over simulated frames.

On SunOS, ``setjmp`` performs the same ``ST_FLUSH_WINDOWS`` trap a
context switch does -- which is why the paper uses a setjmp/longjmp
pair as the lower bound on context-switch cost (Table 2).  Both costs
are charged here through the register-window model.

Python generators cannot re-deliver a second return from the same call
site, so the C idiom ``if (setjmp(buf)) ... else ...`` is expressed as
a *structured block*::

    buf = yield pt.jmp_buf()
    jumped, value = yield pt.setjmp_block(buf, body_fn, *args)

``body_fn`` runs as a nested frame; a ``pt.longjmp(buf, v)`` anywhere
below it unwinds back to the block, which then returns ``(True, v)``.
Normal completion returns ``(False, body_result)``.  DESIGN.md section
1 documents this as the one semantic substitution in the reproduction.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.core.errors import EINVAL
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs

_buf_ids = itertools.count(1)


class JmpBuf:
    """A jump buffer: identifies one active ``setjmp_block`` frame."""

    def __init__(self) -> None:
        self.bid = next(_buf_ids)
        self.thread: Optional[Tcb] = None
        self.depth = -1  # frame-stack depth of the block's body frame
        self.armed = False

    def __repr__(self) -> str:
        return "JmpBuf(#%d, armed=%s)" % (self.bid, self.armed)


class JmpOps(LibraryOps):
    """Entry points for the jump machinery."""

    ENTRIES = {
        "jmp_buf_new": "lib_jmp_buf_new",
        "setjmp_block": "lib_setjmp_block",
        "longjmp": "lib_longjmp",
    }

    def lib_jmp_buf_new(self, tcb: Tcb) -> JmpBuf:
        del tcb
        self.rt.world.spend(costs.INSN, fire=False)
        return JmpBuf()

    def lib_setjmp_block(
        self, tcb: Tcb, buf: JmpBuf, fn: Any, *args: Any
    ) -> object:
        """Arm ``buf`` and run ``fn(pt, *args)`` as a nested frame."""
        rt = self.rt
        # setjmp saves the register state: flush windows + store.
        rt.world.windows.flush()
        rt.world.spend(costs.SETJMP_SAVE, fire=False)
        buf.thread = tcb
        buf.armed = True
        rt.push_frame(
            tcb,
            fn,
            args,
            kind="user",
            on_pop=lambda value: self._disarm(buf),
            deliver_to_caller=False,
        )
        buf.depth = tcb.frames.depth()
        # Normal completion: the block returns (False, body_result).
        # (The body frame's on_pop disarms; we intercept the value by
        # delivering it ourselves.)
        frames = list(tcb.frames)
        body_frame = frames[-1]
        caller_frame = frames[-2]
        original_on_pop = body_frame.on_pop

        def _on_pop(value: Any) -> None:
            original_on_pop(value)
            caller_frame.pending_value = (False, value)

        body_frame.on_pop = _on_pop
        return BLOCKED  # the block's result arrives via _on_pop/longjmp

    def _disarm(self, buf: JmpBuf) -> None:
        buf.armed = False

    def lib_longjmp(self, tcb: Tcb, buf: JmpBuf, value: Any = 1) -> object:
        """Unwind to ``buf``'s block; it returns ``(True, value)``."""
        rt = self.rt
        if not buf.armed or buf.thread is not tcb:
            return EINVAL  # jumping across threads / into a dead block
        if buf.depth > tcb.frames.depth():
            buf.armed = False
            return EINVAL
        rt.world.spend(costs.LONGJMP_RESTORE, fire=False)
        # Unwind every frame above and including the block's body.
        dropped = tcb.frames.unwind_to(buf.depth - 1)
        if tcb.stack is not None:
            for frame in dropped:
                tcb.stack.pop(frame.frame_bytes)
        buf.armed = False
        # Reloading the target frame takes the underflow trap.
        rt.world.windows.switch_in()
        tcb.frames.top.pending_value = (True, value)
        rt.world.emit("longjmp", thread=tcb.name, buf=buf.bid)
        return BLOCKED
