"""Thread control blocks and thread states.

The paper's state model: a thread is *blocked* (waiting for an event),
*ready* (runnable, not chosen), *running* (dispatched), or *terminated*
(unschedulable); *detached* combines with any of these.  Once a
detached thread terminates (or a terminated thread is detached) its
memory is reclaimed and it may not be referenced again -- the runtime
enforces that by invalidating the TCB.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.core import config
from repro.hw.memory import Stack
from repro.sim.frames import Frame, FrameStack
from repro.unix.signals import InterruptFrame, SigCause
from repro.unix.sigset import SigSet


class ThreadState(enum.Enum):
    EMBRYO = "embryo"  # lazily created, not yet activated
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class WaitRecord:
    """Why a blocked thread is blocked, and how to tear the wait down.

    ``kind`` is one of ``mutex``, ``cond``, ``join``, ``sigwait``,
    ``delay``, ``io``, ``once``.  ``frame`` is the frame whose pending
    library call blocked; its ``pending_value`` receives the call's
    result at wake-up.  ``teardown`` removes the thread from whatever
    queue it sits on (used when a handler or cancellation interrupts
    the wait); ``interruptible`` says whether a user signal handler may
    interrupt this wait (mutex waits are not interruptible, per the
    paper's deterministic-mutex-state rule).
    """

    __slots__ = (
        "kind", "obj", "frame", "since", "interruptible", "teardown", "data"
    )

    def __init__(
        self,
        kind: str,
        obj: Any,
        frame: Frame,
        since: int = 0,
        interruptible: bool = True,
        teardown: Optional[Callable[[], None]] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.obj = obj
        self.frame = frame
        self.since = since
        self.interruptible = interruptible
        self.teardown = teardown
        self.data = {} if data is None else data

    def deliver(self, value: Any) -> None:
        """Set the blocked call's return value for when the thread runs."""
        self.frame.pending_value = value

    def __repr__(self) -> str:
        return "WaitRecord(%s, obj=%r)" % (self.kind, self.obj)


class ThreadPending:
    """Per-thread pending signals (single slot per signal, BSD-style)."""

    __slots__ = ("_causes", "_order", "lost")

    def __init__(self) -> None:
        self._causes: Dict[int, SigCause] = {}
        self._order: List[int] = []
        self.lost = 0

    def post(self, sig: int, cause: SigCause) -> bool:
        if sig in self._causes:
            self.lost += 1
            return False
        self._causes[sig] = cause
        self._order.append(sig)
        return True

    def take(self, sig: int) -> Optional[SigCause]:
        if sig not in self._causes:
            return None
        self._order.remove(sig)
        return self._causes.pop(sig)

    def take_any_unmasked(self, mask: SigSet) -> Optional[Any]:
        """Pop the oldest pending signal not in ``mask`` as (sig, cause)."""
        for index, sig in enumerate(self._order):
            if sig not in mask:
                del self._order[index]
                return sig, self._causes.pop(sig)
        return None

    def take_any_in(self, wanted: SigSet) -> Optional[Any]:
        """Pop the oldest pending signal contained in ``wanted``."""
        for index, sig in enumerate(self._order):
            if sig in wanted:
                del self._order[index]
                return sig, self._causes.pop(sig)
        return None

    def __contains__(self, sig: int) -> bool:
        return sig in self._causes

    def signals(self) -> SigSet:
        return SigSet(self._causes.keys())

    def __len__(self) -> int:
        return len(self._causes)


class Tcb:
    """A thread control block.

    Everything the library knows about one thread lives here; the
    paper's debugger sketch ("information could be extracted from the
    thread control block") is served by :class:`repro.debug.Inspector`
    reading these fields.

    ``__slots__`` keeps the (potentially many thousands of) TCBs a
    churny workload allocates compact and attribute access branch-free;
    new fields must be added to the tuple below.
    """

    __slots__ = (
        "tid",
        "name",
        "state",
        "detached",
        "base_priority",
        "effective_priority",
        "policy",
        "frames",
        "stack",
        "errno",
        "start_fn",
        "start_args",
        "sigmask",
        "pending",
        "pending_interrupt_frames",
        "wait",
        "exit_value",
        "joiner",
        "reclaimed",
        "exiting",
        "intr_enabled",
        "intr_type",
        "cancel_pending",
        "cleanup_stack",
        "tsd",
        "held_mutexes",
        "srp_stack",
        "lazy",
        "meta_stack_size",
        "tcb_addr",
        "redirect_request",
        "crashed_with",
        "cpu_cycles",
        "context_switches_in",
        "_kill_cause",
        "_wake_cb",
        "_wrap_pop_cb",
    )

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.state = ThreadState.EMBRYO
        self.detached = False

        # Scheduling.
        self.base_priority = config.PTHREAD_DEFAULT_PRIORITY
        self.effective_priority = config.PTHREAD_DEFAULT_PRIORITY
        self.policy = config.SCHED_FIFO

        # Execution.
        self.frames = FrameStack()
        self.stack: Optional[Stack] = None
        self.errno = 0
        self.start_fn: Optional[Callable] = None
        self.start_args: tuple = ()

        # Signals.
        self.sigmask = SigSet()
        self.pending = ThreadPending()
        self.pending_interrupt_frames: List[InterruptFrame] = []

        # Blocking.
        self.wait: Optional[WaitRecord] = None

        # Join/exit protocol.
        self.exit_value: Any = None
        self.joiner: Optional["Tcb"] = None
        self.reclaimed = False
        self.exiting = False

        # Cancellation ("interruptibility", draft-6 vocabulary).
        self.intr_enabled = True
        self.intr_type = config.PTHREAD_INTR_CONTROLLED
        self.cancel_pending = False

        # Cleanup handlers and thread-specific data.
        self.cleanup_stack: List[Any] = []
        self.tsd: Dict[int, Any] = {}

        # Synchronization protocol state.
        self.held_mutexes: List[Any] = []
        self.srp_stack: List[int] = []  # saved priorities (ceiling protocol)

        # Lazy creation (paper's future-work extension).
        self.lazy = False
        self.meta_stack_size: Optional[int] = None

        # Pool bookkeeping and handler redirect.
        self.tcb_addr = 0
        self.redirect_request: Optional[Any] = None
        #: Set when the thread died of an unhandled simulated exception.
        self.crashed_with: Optional[BaseException] = None

        # Statistics.
        self.cpu_cycles = 0
        self.context_switches_in = 0

        # Hot-path caches: the (frozen) directed-at-me SigCause reused
        # by pthread_kill, the timer queue's wake-me callback, and the
        # fake-call wrapper's on_pop callback.
        self._kill_cause: Optional[SigCause] = None
        self._wake_cb: Optional[Callable[[], None]] = None
        self._wrap_pop_cb: Optional[Callable[[Any], Any]] = None

    # -- predicates --------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.TERMINATED and not self.reclaimed

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def check_valid(self) -> None:
        """Raise if this TCB has been reclaimed (dangling reference)."""
        if self.reclaimed:
            raise ReferenceError(
                "thread %r was detached+terminated and reclaimed; "
                "references to it are invalid" % (self.name,)
            )

    def __repr__(self) -> str:
        return "Tcb(%s, %s, prio=%d/%d)" % (
            self.name,
            self.state.value,
            self.effective_priority,
            self.base_priority,
        )
