"""Condition variables.

``cond_wait`` atomically unlocks the associated mutex and suspends; the
mutex is reacquired before the call returns, so the mutex is always in
a known state -- even when signals interrupt the wait, because the
fake-call wrapper reacquires it before any user handler runs (paper,
"Synchronization" and "Fake Calls").

``cond_signal`` readies the highest-priority waiter.  If the mutex is
still held the woken thread moves straight onto the mutex queue (the
"atomically relocked" half of the contract); the waiting call returns
only with the mutex held.

Timed waits go through the library timer queue, so timeouts arrive via
the ordinary SIGALRM machinery and respect the monolithic monitor.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.core.attr import CondAttr
from repro.core.errors import EBUSY, EINVAL, EPERM, ETIMEDOUT, OK
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.queues import PrioWaitQueue
from repro.core.tcb import Tcb
from repro.hw import costs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.mutex import Mutex

_cond_ids = itertools.count(1)


class Cond:
    """A Pthreads condition variable."""

    def __init__(self, attr: Optional[CondAttr] = None) -> None:
        attr = (attr or CondAttr()).validated()
        self.cid = next(_cond_ids)
        self.name = attr.name or "cond-%d" % self.cid
        self.waiters = PrioWaitQueue()
        #: The mutex current waiters used (must be consistent).
        self.bound_mutex: Optional["Mutex"] = None
        self.destroyed = False
        self.signals_sent = 0
        self.broadcasts_sent = 0

    def __repr__(self) -> str:
        return "Cond(%s, waiters=%d)" % (self.name, len(self.waiters))


class CondOps(LibraryOps):
    """Entry points for condition variables."""

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        # Watcher-free fast-path charges (see LibKernel.__init__).
        table = runtime.world._costs
        self._c_wait_setup = table[costs.COND_WAIT_SETUP]
        self._c_signal = table[costs.COND_SIGNAL_WORK]

    ENTRIES = {
        "cond_init": "lib_cond_init",
        "cond_destroy": "lib_cond_destroy",
        "cond_wait": "lib_cond_wait",
        "cond_timedwait": "lib_cond_timedwait",
        "cond_signal": "lib_cond_signal",
        "cond_broadcast": "lib_cond_broadcast",
    }

    def lib_cond_init(self, tcb: Tcb, attr: Optional[CondAttr] = None) -> Cond:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        cond = Cond(attr)
        check = self.rt.check
        if check is not None:
            check.register_cond(cond)
        return cond

    def lib_cond_destroy(self, tcb: Tcb, cond: Cond) -> int:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        if cond.destroyed:
            return EINVAL
        if cond.waiters:
            return EBUSY
        cond.destroyed = True
        return OK

    # -- waiting -----------------------------------------------------------------

    def lib_cond_wait(self, tcb: Tcb, cond: Cond, mutex: "Mutex") -> object:
        return self._wait_common(tcb, cond, mutex, timeout_us=None)

    def lib_cond_timedwait(
        self, tcb: Tcb, cond: Cond, mutex: "Mutex", timeout_us: float
    ) -> object:
        if timeout_us <= 0:
            # POSIX: an abstime already in the past is a *timeout*, not
            # a usage error -- validate, honour the cancellation point,
            # and return ETIMEDOUT with the mutex still held.
            rt = self.rt
            if cond.destroyed:
                return EINVAL
            if mutex.owner is not tcb:
                return EPERM
            if rt.cancel_ops.act_if_pending(tcb):
                return BLOCKED
            rt.world.spend(costs.COND_WAIT_SETUP, fire=False)
            return ETIMEDOUT
        return self._wait_common(tcb, cond, mutex, timeout_us=timeout_us)

    def _wait_common(
        self,
        tcb: Tcb,
        cond: Cond,
        mutex: "Mutex",
        timeout_us: Optional[float],
    ) -> object:
        rt = self.rt
        if cond.destroyed:
            return EINVAL
        if mutex.owner is not tcb:
            return EPERM
        if cond.waiters and cond.bound_mutex is not mutex:
            return EINVAL  # concurrent waits must share one mutex
        # A conditional wait is an interruption point: act on a pending
        # cancellation before giving up the mutex.
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.COND_WAIT_SETUP, fire=False)
        else:
            world.clock.cycles += self._c_wait_setup
        cond.bound_mutex = mutex
        cond.waiters.add(tcb)
        record = rt.block_current(
            kind="cond",
            obj=cond,
            interruptible=True,
            teardown=lambda: cond.waiters.remove(tcb),
            mutex=mutex,
        )
        if timeout_us is not None:
            handle = rt.timer_ops.add_timeout(
                timeout_us, lambda: self._timeout_fire(tcb, cond, mutex)
            )
            record.data["timeout_handle"] = handle
        # Atomic with the suspension: release the mutex (which may hand
        # it straight to a waiter).
        rt.mutex_ops.unlock_locked(tcb, mutex)
        if world.trace is not None:
            world.emit("cond-wait", thread=tcb.name, cond=cond.name)
        rt.kern.leave()
        return BLOCKED

    def _timeout_fire(self, tcb: Tcb, cond: Cond, mutex: "Mutex") -> None:
        """Timer-queue callback (kernel flag held)."""
        if tcb.wait is None or tcb.wait.kind != "cond" or tcb.wait.obj is not cond:
            return  # already woken; stale timeout
        cond.waiters.remove(tcb)
        self.rt.world.emit("cond-timeout", thread=tcb.name, cond=cond.name)
        self.rt.mutex_ops.grant_to_waker(tcb, mutex, ETIMEDOUT)

    # -- waking ---------------------------------------------------------------------

    def lib_cond_signal(self, tcb: Tcb, cond: Cond) -> int:
        rt = self.rt
        if cond.destroyed:
            return EINVAL
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.COND_SIGNAL_WORK, fire=False)
        else:
            world.clock.cycles += self._c_signal
        cond.signals_sent += 1
        self._wake_one(cond)
        rt.kern.leave()
        del tcb
        return OK

    def lib_cond_broadcast(self, tcb: Tcb, cond: Cond) -> int:
        rt = self.rt
        if cond.destroyed:
            return EINVAL
        rt.kern.enter()
        cond.broadcasts_sent += 1
        while cond.waiters:
            rt.world.spend(costs.COND_SIGNAL_WORK, fire=False)
            self._wake_one(cond)
        rt.kern.leave()
        del tcb
        return OK

    def _wake_one(self, cond: Cond) -> None:
        """Move the highest-priority waiter toward mutex reacquisition."""
        rt = self.rt
        waiter = cond.waiters.pop_highest()
        if waiter is None:
            return
        record = waiter.wait
        mutex = record.data["mutex"] if record is not None else None
        handle = record.data.get("timeout_handle") if record else None
        if handle is not None:
            rt.timer_ops.cancel_timeout(handle)
        if rt.world.trace is not None:
            rt.world.emit("cond-wake", thread=waiter.name, cond=cond.name)
        if mutex is None:
            if record is not None:
                record.deliver(OK)
            rt.sched.make_ready(waiter)
            return
        rt.mutex_ops.grant_to_waker(waiter, mutex, OK)
