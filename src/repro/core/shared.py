"""Cross-process shared mutexes (the paper's Future Work, sketched).

"The current status of the implementation still lacks shared mutexes
and condition variables which can be used across processes.  Such
objects could either be implemented on top of existing interprocess
communication primitives or by allocating a mutex object in a shared
data space.  The latter approach should achieve better performance."

This module implements the *shared data space* variant over the mini
UNIX process world: a :class:`SharedArena` models a segment mapped by
several processes; a :class:`SharedMutex` keeps its ``ldstub`` byte
there, so the uncontended path costs the same Figure 4 sequence with
no kernel involvement.  Contention falls back to the IPC primitives
the paper names: the waiter ``pause()``s and the unlocker ``kill()``s
it awake.  Exactly as the paper predicts, *protocols* (priority
inheritance across processes) are not attempted -- the two libraries
would have to communicate -- and this limitation is documented rather
than papered over.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.hw import costs
from repro.hw.atomic import AtomicCell
from repro.sim.world import World
from repro.unix import process as uproc
from repro.unix.sigset import SIGUSR2

_arena_ids = itertools.count(1)
_shared_ids = itertools.count(1)

#: The signal shared mutexes use to wake a paused waiter.
WAKE_SIGNAL = SIGUSR2


class SharedArena:
    """A shared memory segment mapped into several processes."""

    def __init__(self, world: World, size: int = 4096) -> None:
        self.arena_id = next(_arena_ids)
        self.world = world
        self.size = size
        self.used = 0
        self.attached_pids: List[int] = []

    def attach(self, proc: uproc.UnixProcess) -> None:
        """Map the segment into ``proc`` (mmap-ish; one syscall)."""
        proc.kernel._enter("shmat")
        if proc.pid not in self.attached_pids:
            self.attached_pids.append(proc.pid)

    def allocate(self, nbytes: int) -> int:
        if self.used + nbytes > self.size:
            raise MemoryError("shared arena exhausted")
        offset = self.used
        self.used += nbytes
        return offset


class SharedMutex:
    """A mutex living in a shared data space.

    The lock byte and waiter list are "in" the arena; ownership is a
    pid (there is no cross-process notion of a thread here, matching
    the paper's process-level framing).
    """

    def __init__(self, arena: SharedArena, name: Optional[str] = None):
        self.sid = next(_shared_ids)
        self.name = name or "shared-mutex-%d" % self.sid
        self.arena = arena
        self.offset = arena.allocate(16)
        self.cell = AtomicCell(0)
        self.owner_pid: Optional[int] = None
        self.waiter_pids: List[int] = []
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        return self.cell.value != 0

    def __repr__(self) -> str:
        return "SharedMutex(%s, owner_pid=%s, waiters=%d)" % (
            self.name, self.owner_pid, len(self.waiter_pids),
        )


def shared_mutex_lock(mutex: SharedMutex, proc: uproc.UnixProcess):
    """Process-body generator: acquire a shared mutex.

    Uncontended: the Figure 4 atomic sequence against shared memory,
    zero syscalls.  Contended: register as a waiter and ``pause()``
    until the unlocker's ``kill()`` (the IPC fallback).
    """
    if proc.pid not in mutex.arena.attached_pids:
        raise RuntimeError(
            "process %d has not attached %s's arena"
            % (proc.pid, mutex.name)
        )
    world = mutex.arena.world
    while True:
        world.spend(costs.MUTEX_FAST_LOCK, fire=False)
        old = mutex.cell.value
        mutex.cell.value = 0xFF  # ldstub on the shared byte
        if old == 0:
            mutex.owner_pid = proc.pid
            mutex.acquisitions += 1
            return
        mutex.contentions += 1
        mutex.waiter_pids.append(proc.pid)
        yield uproc.pause()


def shared_mutex_unlock(mutex: SharedMutex, proc: uproc.UnixProcess):
    """Process-body generator: release a shared mutex.

    Clears the shared byte, then wakes the oldest waiter through
    ``kill`` -- the only kernel involvement, and only under contention.
    """
    if mutex.owner_pid != proc.pid:
        raise RuntimeError(
            "process %d unlocking %s owned by %s"
            % (proc.pid, mutex.name, mutex.owner_pid)
        )
    world = mutex.arena.world
    world.spend(costs.MUTEX_FAST_UNLOCK, fire=False)
    mutex.owner_pid = None
    mutex.cell.value = 0
    if mutex.waiter_pids:
        waiter = mutex.waiter_pids.pop(0)
        yield uproc.kill(waiter, WAKE_SIGNAL)
    return
