"""``pthread_once``: dynamic package initialisation, exactly once.

If the init routine dies (a simulated exception, or cancellation of
the initiating thread), the control block resets so a later call may
retry -- POSIX's rule for a cancelled init -- and threads already
blocked on the call return ``EAGAIN`` rather than deadlocking.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from repro.core.errors import EAGAIN, OK
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs
from repro.sim.frames import SimException

_once_ids = itertools.count(1)


class Once:
    """A once-control block."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or "once-%d" % next(_once_ids)
        self.done = False
        self.running = False
        self.waiters: List[Tcb] = []

    def __repr__(self) -> str:
        state = "done" if self.done else ("running" if self.running else "new")
        return "Once(%s, %s)" % (self.name, state)


class OnceOps(LibraryOps):
    """Entry point for ``pthread_once``."""

    ENTRIES = {"once": "lib_once", "_once_failed": "lib_once_failed"}

    def lib_once(self, tcb: Tcb, once: Once, init_routine: Any) -> object:
        """Run ``init_routine(pt)`` exactly once across all callers.

        Callers arriving while the routine runs block until it
        completes; every call returns 0.
        """
        rt = self.rt
        rt.world.spend(costs.ONCE_OP, fire=False)
        if once.done:
            return OK
        rt.kern.enter()
        if once.done:  # re-test under the monitor
            rt.kern.leave()
            return OK
        if once.running:
            once.waiters.append(tcb)
            rt.block_current(
                kind="once",
                obj=once,
                interruptible=False,
                teardown=lambda: once.waiters.remove(tcb),
            )
            rt.kern.leave()
            return BLOCKED
        once.running = True
        rt.push_frame(
            tcb,
            _once_shell,
            (once, init_routine),
            kind="user",
            deliver_to_caller=False,
            on_pop=lambda value: self._settle(once, succeeded=True),
        )
        rt.kern.leave()
        return OK

    def lib_once_failed(self, tcb: Tcb, once: Once) -> int:
        """Internal: the init routine died; reset and release."""
        del tcb
        self._settle(once, succeeded=False)
        return OK

    def _settle(self, once: Once, succeeded: bool) -> None:
        """Init finished (or failed): release the waiters.

        On failure the block resets so a later ``pthread_once`` may
        retry, and current waiters get EAGAIN.
        """
        if once.done or not once.running:
            return  # already settled (failure path ran before on_pop)
        rt = self.rt
        rt.kern.enter()
        once.done = succeeded
        once.running = False
        result = OK if succeeded else EAGAIN
        for waiter in once.waiters:
            if waiter.wait is not None and waiter.wait.kind == "once":
                waiter.wait.deliver(result)
            rt.sched.make_ready(waiter)
        once.waiters = []
        rt.kern.leave()


def _once_shell(pt, once: Once, init_routine):
    """Runs the init routine; reports failure before re-raising."""
    try:
        result = yield pt.call(init_routine)
    except SimException:
        yield pt.lib_raw("_once_failed", once)
        raise
    except GeneratorExit:
        # The initiating thread was cancelled mid-init: reset the
        # block and release waiters synchronously (no yields are
        # allowed while a generator is being closed).
        rt = pt.runtime
        once.running = False
        for blocked in once.waiters:
            if blocked.wait is not None and blocked.wait.kind == "once":
                blocked.wait.deliver(EAGAIN)
            rt.sched.make_ready(blocked)
        once.waiters = []
        raise
    return result
