"""The thread scheduler: ready-queue management and preemption checks.

Priority-driven preemptive scheduling: whenever a thread becomes ready
with a priority above the running thread's, the dispatcher flag is set
and the preemption happens on the next kernel exit.  Yielded and
time-sliced threads go to the tail of their priority level; preempted
threads go to the head (they did not choose to stop running).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.queues import ReadyQueue
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


class Scheduler:
    """Ready-queue operations, cost-charged."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self._runtime = runtime
        # Watcher-free fast-path charge (see LibKernel.__init__).
        self._c_enqueue = runtime.world._costs[costs.READY_ENQUEUE]
        self.ready = ReadyQueue()

    def _charge_enqueue(self) -> None:
        world = self._runtime.world
        if world.clock._watchers:
            world.spend(costs.READY_ENQUEUE, fire=False)
        else:
            world.clock.cycles += self._c_enqueue

    # -- making threads runnable ------------------------------------------------

    def make_ready(self, tcb: Tcb, front: bool = False) -> None:
        """Transition a thread to READY and check for preemption.

        Must be called with the kernel flag set (all callers are
        library internals).
        """
        world = self._runtime.world
        if world.clock._watchers:
            world.spend(costs.READY_ENQUEUE, fire=False)
        else:
            world.clock.cycles += self._c_enqueue
        tcb.state = ThreadState.READY
        tcb.wait = None
        self.ready.enqueue(tcb, front=front)
        runtime = self._runtime
        current = runtime.current
        if current is None or (
            tcb.effective_priority > current.effective_priority
        ):
            runtime.kern.dispatcher_flag = True  # request_dispatch inline
        # Signals parked while the thread sat in an uninterruptible
        # wait get their fake calls installed before it runs again
        # (guarded here: the pending list is empty in the common case).
        if tcb.pending._order:
            runtime.sigdeliver.on_thread_runnable(tcb)

    def take(self, tcb: Tcb) -> bool:
        """Remove a specific thread from the ready queue."""
        return self.ready.remove(tcb)

    def pop_next(self) -> Optional[Tcb]:
        """Dequeue the highest-priority ready thread."""
        self._runtime.world.spend(costs.READY_DEQUEUE, fire=False)
        return self.ready.dequeue()

    # -- displacing the running thread ---------------------------------------------

    def yield_current(self) -> None:
        """``pthread_yield``: current to the tail of its own level."""
        self._requeue_current(front=False)

    def preempt_current(self) -> None:
        """Preemption: current to the head of its own level."""
        self._requeue_current(front=True)

    def slice_current(self) -> None:
        """Time-slice expiry (signal action rule 2): tail of own level."""
        self._requeue_current(front=False)

    def pervert_current_to_lowest(self) -> None:
        """Perverted policies: current to the tail of the lowest queue."""
        current = self._must_current()
        self._runtime.world.spend(costs.READY_ENQUEUE, fire=False)
        current.state = ThreadState.READY
        self.ready.enqueue_lowest_tail(current)
        self._runtime.current = None
        self._runtime.kern.request_dispatch()

    def preempt_current_for_dispatch(self) -> None:
        """Dispatcher-internal preemption: like :meth:`preempt_current`
        but without re-requesting a dispatch (we are already in one)."""
        current = self._must_current()
        self._charge_enqueue()
        current.state = ThreadState.READY
        self.ready.enqueue(current, front=True)
        self._runtime.current = None

    def _requeue_current(self, front: bool) -> None:
        current = self._must_current()
        self._charge_enqueue()
        current.state = ThreadState.READY
        self.ready.enqueue(current, front=front)
        self._runtime.current = None
        self._runtime.kern.request_dispatch()

    def _must_current(self) -> Tcb:
        current = self._runtime.current
        if current is None:
            raise RuntimeError("no current thread to displace")
        return current

    # -- priority changes ----------------------------------------------------------

    def priority_changed(self, tcb: Tcb) -> None:
        """Re-file a thread after a priority adjustment.

        Ready threads are repositioned in the ready queue; the running
        thread may lose the CPU if someone ready now outranks it; a
        blocked thread's wait-queue position is the wait object's
        business (protocol code resorts it there).
        """
        runtime = self._runtime
        runtime.world.spend(costs.PRIO_ADJUST, fire=False)
        if tcb.state is ThreadState.READY:
            front = runtime.config.unboost_placement == "head"
            self.ready.reposition(tcb, front=front)
            current = runtime.current
            if current is not None and (
                tcb.effective_priority > current.effective_priority
            ):
                runtime.kern.request_dispatch()
        elif tcb is runtime.current:
            head = self.ready.peek()
            if head is not None and (
                head.effective_priority > tcb.effective_priority
            ):
                runtime.kern.request_dispatch()
