"""Priority queues of threads.

Two queue shapes appear throughout the library:

- :class:`ReadyQueue`: one FIFO per priority level (the classic
  multi-level ready queue).  Supports head/tail insertion (preempted
  threads go to the head, yielded/sliced threads to the tail) and the
  perverted policies' "tail of the lowest priority queue" reposition.
- :class:`PrioWaitQueue`: a priority-ordered wait list (mutex and
  condition variable sleepers): the highest-priority waiter wakes
  first, FIFO among equals, and a waiter's position follows protocol
  priority boosts.

Host-speed notes: the ready queue maintains a bisect-sorted index of
occupied priority levels (``_index``, ascending) plus a thread->level
map (``_where``), so ``dequeue``/``peek``/``enqueue_lowest_tail`` never
re-derive the occupied set with ``sorted()`` and ``remove`` never scans
every level.  The wait queue keeps a parallel sort-key list so ``add``
is a bisect instead of a linear Python-level scan.  Behaviour is
identical to the naive implementations (asserted by the equivalence
property tests in ``tests/properties/test_prop_queue_equivalence.py``).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.core import config
from repro.core.tcb import Tcb


class ReadyQueue:
    """Multi-level FIFO ready queue, highest priority first."""

    __slots__ = ("_levels", "_index", "_where", "_count")

    def __init__(self) -> None:
        self._levels: Dict[int, Deque[Tcb]] = {}
        #: Ascending sorted list of priority levels with queued threads.
        self._index: List[int] = []
        #: Which level each queued thread is filed at (a perverted-policy
        #: reposition may file a thread away from its own priority).
        self._where: Dict[Tcb, int] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, tcb: Tcb) -> bool:
        return tcb in self._where

    def _file(self, tcb: Tcb, priority: int, front: bool) -> None:
        level = self._levels.get(priority)
        if level is None:
            level = self._levels[priority] = deque()
        if not level:
            insort(self._index, priority)
        if front:
            level.appendleft(tcb)
        else:
            level.append(tcb)
        self._where[tcb] = priority
        self._count += 1

    def enqueue(self, tcb: Tcb, front: bool = False) -> None:
        """Insert at the thread's current effective priority.

        (The body is :meth:`_file` inlined -- enqueue runs on every
        ready transition.)
        """
        priority = tcb.effective_priority
        level = self._levels.get(priority)
        if level is None:
            level = self._levels[priority] = deque()
        if not level:
            insort(self._index, priority)
        if front:
            level.appendleft(tcb)
        else:
            level.append(tcb)
        self._where[tcb] = priority
        self._count += 1

    def enqueue_lowest_tail(self, tcb: Tcb) -> None:
        """Perverted-policy reposition: tail of the lowest priority queue.

        The thread keeps its priority; it is merely *ordered* behind
        everything currently ready (the paper accepts that this may
        violate priority scheduling -- that is the point).
        """
        index = self._index
        lowest = index[0] if index else config.PTHREAD_MIN_PRIORITY
        self._file(tcb, lowest, front=False)

    def dequeue(self) -> Optional[Tcb]:
        """Pop the head of the highest non-empty priority level."""
        index = self._index
        if not index:
            return None
        priority = index[-1]
        level = self._levels[priority]
        tcb = level.popleft()
        if not level:
            index.pop()
        del self._where[tcb]
        self._count -= 1
        return tcb

    def peek(self) -> Optional[Tcb]:
        index = self._index
        if not index:
            return None
        return self._levels[index[-1]][0]

    def remove(self, tcb: Tcb) -> bool:
        """Remove a specific thread wherever it is queued."""
        priority = self._where.pop(tcb, None)
        if priority is None:
            return False
        level = self._levels[priority]
        level.remove(tcb)
        if not level:
            self._index.remove(priority)
        self._count -= 1
        return True

    def reposition(self, tcb: Tcb, front: bool = False) -> None:
        """Re-file a thread after its effective priority changed."""
        if self.remove(tcb):
            self.enqueue(tcb, front=front)

    def threads(self) -> List[Tcb]:
        """All queued threads, highest priority first, FIFO within."""
        out: List[Tcb] = []
        levels = self._levels
        for priority in reversed(self._index):
            out.extend(levels[priority])
        return out

    def all_at(self, priority: int) -> List[Tcb]:
        return list(self._levels.get(priority, ()))

    def _levels_with_items(self) -> Iterator[int]:
        return iter(self._index)

    def __repr__(self) -> str:
        parts = [
            "%d:[%s]" % (p, ",".join(t.name for t in self._levels[p]))
            for p in reversed(self._index)
        ]
        return "ReadyQueue(%s)" % " ".join(parts)


class PrioWaitQueue:
    """Priority-ordered waiter list (highest first, FIFO among equals)."""

    __slots__ = ("_items", "_keys")

    def __init__(self) -> None:
        self._items: List[Tcb] = []
        #: Parallel sort keys (negated priority: ascending keys give the
        #: highest priority first; bisect_right keeps FIFO among equals).
        self._keys: List[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, tcb: Tcb) -> bool:
        return tcb in self._items

    def __iter__(self) -> Iterator[Tcb]:
        return iter(self._items)

    def add(self, tcb: Tcb) -> None:
        """Insert behind all waiters of >= priority (stable)."""
        key = -tcb.effective_priority
        # After every waiter of >= priority (equal keys sort before),
        # before the first strictly-lower-priority waiter.
        index = bisect_right(self._keys, key)
        self._keys.insert(index, key)
        self._items.insert(index, tcb)

    def pop_highest(self) -> Optional[Tcb]:
        if not self._items:
            return None
        del self._keys[0]
        return self._items.pop(0)

    def remove(self, tcb: Tcb) -> bool:
        try:
            index = self._items.index(tcb)
        except ValueError:
            return False
        del self._items[index]
        del self._keys[index]
        return True

    def resort(self, tcb: Tcb) -> None:
        """Re-file one waiter whose priority changed (boost/unboost)."""
        if self.remove(tcb):
            self.add(tcb)

    def highest_priority(self) -> Optional[int]:
        if not self._items:
            return None
        return self._items[0].effective_priority

    def threads(self) -> List[Tcb]:
        return list(self._items)

    def __repr__(self) -> str:
        return "PrioWaitQueue([%s])" % ", ".join(
            "%s@%d" % (t.name, t.effective_priority) for t in self._items
        )
