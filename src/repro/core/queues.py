"""Priority queues of threads.

Two queue shapes appear throughout the library:

- :class:`ReadyQueue`: one FIFO per priority level (the classic
  multi-level ready queue).  Supports head/tail insertion (preempted
  threads go to the head, yielded/sliced threads to the tail) and the
  perverted policies' "tail of the lowest priority queue" reposition.
- :class:`PrioWaitQueue`: a priority-ordered wait list (mutex and
  condition variable sleepers): the highest-priority waiter wakes
  first, FIFO among equals, and a waiter's position follows protocol
  priority boosts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.core import config
from repro.core.tcb import Tcb


class ReadyQueue:
    """Multi-level FIFO ready queue, highest priority first."""

    def __init__(self) -> None:
        self._levels: Dict[int, Deque[Tcb]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, tcb: Tcb) -> bool:
        # A perverted-policy reposition may file a thread below its own
        # priority level, so scan every level.
        return any(tcb in level for level in self._levels.values())

    def enqueue(self, tcb: Tcb, front: bool = False) -> None:
        """Insert at the thread's current effective priority."""
        level = self._levels.setdefault(tcb.effective_priority, deque())
        if front:
            level.appendleft(tcb)
        else:
            level.append(tcb)
        self._count += 1

    def enqueue_lowest_tail(self, tcb: Tcb) -> None:
        """Perverted-policy reposition: tail of the lowest priority queue.

        The thread keeps its priority; it is merely *ordered* behind
        everything currently ready (the paper accepts that this may
        violate priority scheduling -- that is the point).
        """
        occupied = list(self._levels_with_items())
        lowest = min(occupied) if occupied else config.PTHREAD_MIN_PRIORITY
        level = self._levels.setdefault(lowest, deque())
        level.append(tcb)
        self._count += 1

    def dequeue(self) -> Optional[Tcb]:
        """Pop the head of the highest non-empty priority level."""
        for priority in sorted(self._levels_with_items(), reverse=True):
            self._count -= 1
            return self._levels[priority].popleft()
        return None

    def peek(self) -> Optional[Tcb]:
        for priority in sorted(self._levels_with_items(), reverse=True):
            return self._levels[priority][0]
        return None

    def remove(self, tcb: Tcb) -> bool:
        """Remove a specific thread wherever it is queued."""
        for level in self._levels.values():
            try:
                level.remove(tcb)
            except ValueError:
                continue
            self._count -= 1
            return True
        return False

    def reposition(self, tcb: Tcb, front: bool = False) -> None:
        """Re-file a thread after its effective priority changed."""
        if self.remove(tcb):
            self.enqueue(tcb, front=front)

    def threads(self) -> List[Tcb]:
        """All queued threads, highest priority first, FIFO within."""
        out: List[Tcb] = []
        for priority in sorted(self._levels_with_items(), reverse=True):
            out.extend(self._levels[priority])
        return out

    def all_at(self, priority: int) -> List[Tcb]:
        return list(self._levels.get(priority, ()))

    def _levels_with_items(self) -> Iterator[int]:
        return (p for p, q in self._levels.items() if q)

    def __repr__(self) -> str:
        parts = [
            "%d:[%s]" % (p, ",".join(t.name for t in self._levels[p]))
            for p in sorted(self._levels_with_items(), reverse=True)
        ]
        return "ReadyQueue(%s)" % " ".join(parts)


class PrioWaitQueue:
    """Priority-ordered waiter list (highest first, FIFO among equals)."""

    def __init__(self) -> None:
        self._items: List[Tcb] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, tcb: Tcb) -> bool:
        return tcb in self._items

    def __iter__(self) -> Iterator[Tcb]:
        return iter(self._items)

    def add(self, tcb: Tcb) -> None:
        """Insert behind all waiters of >= priority (stable)."""
        priority = tcb.effective_priority
        index = len(self._items)
        for i, other in enumerate(self._items):
            if other.effective_priority < priority:
                index = i
                break
        self._items.insert(index, tcb)

    def pop_highest(self) -> Optional[Tcb]:
        if not self._items:
            return None
        return self._items.pop(0)

    def remove(self, tcb: Tcb) -> bool:
        try:
            self._items.remove(tcb)
        except ValueError:
            return False
        return True

    def resort(self, tcb: Tcb) -> None:
        """Re-file one waiter whose priority changed (boost/unboost)."""
        if self.remove(tcb):
            self.add(tcb)

    def highest_priority(self) -> Optional[int]:
        if not self._items:
            return None
        return self._items[0].effective_priority

    def threads(self) -> List[Tcb]:
        return list(self._items)

    def __repr__(self) -> str:
        return "PrioWaitQueue([%s])" % ", ".join(
            "%s@%d" % (t.name, t.effective_priority) for t in self._items
        )
