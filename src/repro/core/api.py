"""The public thread-code API: the ``pt`` facade.

Every simulated thread body receives a :class:`PT` as its first
argument and drives the library by yielding the ops it builds::

    def worker(pt, m, results):
        yield pt.work(1_000)                 # compute 1000 cycles
        err = yield pt.mutex_lock(m)
        results.append((yield pt.self_id()).name)
        yield pt.mutex_unlock(m)
        return 42                            # becomes the exit value

Methods mirror the Pthreads interface; each returns an *op descriptor*
-- nothing happens until the op is yielded.  Names drop the
``pthread_`` prefix (``pt.create``, ``pt.mutex_lock``, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core import semaphore as _sem
from repro.sim.ops import Invoke, LibCall, SysCall, Work
from repro.unix.sigset import SigSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


#: Work ops are immutable and keyed only by their cycle count, so the
#: handful of distinct values a program uses are shared rather than
#: re-allocated on every yield (bounded in case a program generates
#: unboundedly many distinct burst lengths).
_WORK_CACHE: dict = {}
_WORK_CACHE_MAX = 1024


def _work_op(cycles: int) -> Work:
    op = _WORK_CACHE.get(cycles)
    if op is None:
        op = Work(cycles)
        if len(_WORK_CACHE) < _WORK_CACHE_MAX:
            _WORK_CACHE[cycles] = op
    return op


class PT:
    """Op builder handed to every simulated thread body."""

    __slots__ = ("runtime", "_seg_self_op")

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self.runtime = runtime
        self._seg_self_op = LibCall("self")

    # -- computation and structure ---------------------------------------------

    def work(self, cycles: int) -> Work:
        """Burn ``cycles`` of CPU (preemptible)."""
        return _work_op(cycles)

    def work_us(self, us: float) -> Work:
        """Burn ``us`` microseconds of CPU on this machine."""
        return _work_op(self.runtime.world.cycles_for_us(us))

    def charge(self, cost_key: str) -> Work:
        """Burn the model cost of a named primitive (library bodies)."""
        return _work_op(self.runtime.world.model.cost(cost_key))

    def call(self, fn: Callable, *args: Any, **kwargs: Any) -> Invoke:
        """Call ``fn(pt, *args)`` as a nested simulated frame."""
        return Invoke(fn, args, kwargs)

    def lib_raw(self, name: str, *args: Any, **kwargs: Any) -> LibCall:
        """Invoke a library entry point by name (escape hatch)."""
        return LibCall(name, args, kwargs)

    # -- thread management -----------------------------------------------------------

    def create(self, fn: Callable, *args: Any, **kwargs: Any) -> LibCall:
        """``pthread_create(fn, *args, attr=..., name=...)`` -> Tcb."""
        return LibCall("create", (fn,) + args, kwargs)

    def join(self, thread: Any) -> LibCall:
        """``pthread_join`` -> ``(err, exit_value)``."""
        return LibCall("join", (thread,))

    def detach(self, thread: Any) -> LibCall:
        return LibCall("detach", (thread,))

    def exit(self, value: Any = None) -> LibCall:
        return LibCall("exit", (value,))

    def self_id(self) -> LibCall:
        return self._seg_self_op

    def equal(self, a: Any, b: Any) -> LibCall:
        return LibCall("equal", (a, b))

    def yield_(self) -> LibCall:
        return LibCall("yield")

    def setprio(self, thread: Any, priority: int) -> LibCall:
        return LibCall("setprio", (thread, priority))

    def getprio(self, thread: Any) -> LibCall:
        return LibCall("getprio", (thread,))

    def setschedparam(
        self, thread: Any, policy: Optional[str], priority: int
    ) -> LibCall:
        return LibCall("setschedparam", (thread, policy, priority))

    def getschedparam(self, thread: Any) -> LibCall:
        return LibCall("getschedparam", (thread,))

    def activate(self, thread: Any) -> LibCall:
        """Activate a lazily created thread (extension)."""
        return LibCall("activate", (thread,))

    def set_errno(self, value: int) -> LibCall:
        """Write the calling thread's errno (the UNIX global while
        running; saved/restored by the dispatcher)."""
        return LibCall("set_errno", (value,))

    def get_errno(self) -> LibCall:
        return LibCall("get_errno")

    # -- mutexes ------------------------------------------------------------------------

    def mutex_init(self, attr: Any = None) -> LibCall:
        return LibCall("mutex_init", (attr,))

    def mutex_destroy(self, mutex: Any) -> LibCall:
        return LibCall("mutex_destroy", (mutex,))

    def mutex_lock(self, mutex: Any) -> LibCall:
        # Ops are immutable, so one per mutex is shared across calls;
        # the segment cache additionally relies on the identity to
        # match replayed ops with a single ``is``.
        try:
            return mutex._seg_lock_op
        except AttributeError:
            op = LibCall("mutex_lock", (mutex,))
            try:
                mutex._seg_lock_op = op
            except (AttributeError, TypeError):
                pass
            return op

    def mutex_trylock(self, mutex: Any) -> LibCall:
        return LibCall("mutex_trylock", (mutex,))

    def mutex_unlock(self, mutex: Any) -> LibCall:
        try:
            return mutex._seg_unlock_op
        except AttributeError:
            op = LibCall("mutex_unlock", (mutex,))
            try:
                mutex._seg_unlock_op = op
            except (AttributeError, TypeError):
                pass
            return op

    def mutex_setprioceiling(self, mutex: Any, ceiling: int) -> LibCall:
        return LibCall("mutex_setprioceiling", (mutex, ceiling))

    def mutex_getprioceiling(self, mutex: Any) -> LibCall:
        return LibCall("mutex_getprioceiling", (mutex,))

    # -- condition variables ---------------------------------------------------------------

    def cond_init(self, attr: Any = None) -> LibCall:
        return LibCall("cond_init", (attr,))

    def cond_destroy(self, cond: Any) -> LibCall:
        return LibCall("cond_destroy", (cond,))

    def cond_wait(self, cond: Any, mutex: Any) -> LibCall:
        return LibCall("cond_wait", (cond, mutex))

    def cond_timedwait(self, cond: Any, mutex: Any, timeout_us: float) -> LibCall:
        return LibCall("cond_timedwait", (cond, mutex, timeout_us))

    def cond_signal(self, cond: Any) -> LibCall:
        try:
            return cond._seg_signal_op
        except AttributeError:
            op = LibCall("cond_signal", (cond,))
            try:
                cond._seg_signal_op = op
            except (AttributeError, TypeError):
                pass
            return op

    def cond_broadcast(self, cond: Any) -> LibCall:
        return LibCall("cond_broadcast", (cond,))

    # -- semaphores (built on mutex + cond, paper ref [17]) -------------------------------------

    def sem_init(self, value: int = 0, name: Optional[str] = None) -> LibCall:
        return LibCall("sem_init", (value, name))

    def sem_destroy(self, sem: Any) -> LibCall:
        return LibCall("sem_destroy", (sem,))

    def sem_wait(self, sem: Any) -> Invoke:
        """Dijkstra P (may suspend)."""
        return Invoke(_sem.sem_wait_body, (sem,))

    def sem_post(self, sem: Any) -> Invoke:
        """Dijkstra V."""
        return Invoke(_sem.sem_post_body, (sem,))

    def sem_trywait(self, sem: Any) -> LibCall:
        return LibCall("sem_trywait", (sem,))

    def sem_getvalue(self, sem: Any) -> LibCall:
        return LibCall("sem_getvalue", (sem,))

    # -- reader-writer locks and barriers (compositions, like semaphores) ------------------------

    def rwlock_init(self, name: Optional[str] = None) -> LibCall:
        return LibCall("rwlock_init", (name,))

    def rwlock_rdlock(self, rwlock: Any) -> Invoke:
        from repro.core import rwlock as _rw

        return Invoke(_rw.rdlock_body, (rwlock,))

    def rwlock_wrlock(self, rwlock: Any) -> Invoke:
        from repro.core import rwlock as _rw

        return Invoke(_rw.wrlock_body, (rwlock,))

    def rwlock_unlock(self, rwlock: Any) -> Invoke:
        from repro.core import rwlock as _rw

        return Invoke(_rw.unlock_body, (rwlock,))

    def barrier_init(self, count: int, name: Optional[str] = None) -> LibCall:
        return LibCall("barrier_init", (count, name))

    def barrier_wait(self, barrier: Any) -> Invoke:
        from repro.core import barrier as _barrier

        return Invoke(_barrier.barrier_wait_body, (barrier,))

    # -- signals --------------------------------------------------------------------------------

    def sigaction(
        self, sig: int, handler: Any, mask: Optional[SigSet] = None
    ) -> LibCall:
        return LibCall("sigaction", (sig, handler, mask))

    def sigmask(self, how: str, signals: Optional[SigSet] = None) -> LibCall:
        return LibCall("sigmask", (how, signals))

    def kill(self, thread: Any, sig: int) -> LibCall:
        """``pthread_kill``: library-internal signal to a thread."""
        return LibCall("kill", (thread, sig))

    def sigwait(self, signals: SigSet) -> LibCall:
        return LibCall("sigwait", (signals,))

    def thread_sigpending(self) -> LibCall:
        return LibCall("thread_sigpending")

    def sig_redirect(self, fn: Callable, *args: Any) -> LibCall:
        """From a handler: divert control to ``fn`` after it returns."""
        return LibCall("sig_redirect", (fn,) + args)

    # -- cancellation -----------------------------------------------------------------------------

    def cancel(self, thread: Any) -> LibCall:
        return LibCall("cancel", (thread,))

    def setintr(self, state: str) -> LibCall:
        return LibCall("setintr", (state,))

    def setintrtype(self, intr_type: str) -> LibCall:
        return LibCall("setintrtype", (intr_type,))

    def testintr(self) -> LibCall:
        return LibCall("testintr")

    # -- cleanup, TSD, once ----------------------------------------------------------------------------

    def cleanup_push(self, handler: Callable, arg: Any = None) -> LibCall:
        return LibCall("cleanup_push", (handler, arg))

    def cleanup_pop(self, execute: bool = False) -> LibCall:
        return LibCall("cleanup_pop", (execute,))

    def key_create(self, destructor: Optional[Callable] = None) -> LibCall:
        return LibCall("key_create", (destructor,))

    def key_delete(self, key: int) -> LibCall:
        return LibCall("key_delete", (key,))

    def setspecific(self, key: int, value: Any) -> LibCall:
        return LibCall("setspecific", (key, value))

    def getspecific(self, key: int) -> LibCall:
        return LibCall("getspecific", (key,))

    def once(self, once_control: Any, init_routine: Callable) -> LibCall:
        return LibCall("once", (once_control, init_routine))

    # -- time and I/O ------------------------------------------------------------------------------------

    def delay_us(self, us: float) -> LibCall:
        """Suspend the calling thread for ``us`` microseconds."""
        return LibCall("delay_us", (us,))

    def read(self, fd: int, nbytes: int, device: str = "disk0") -> LibCall:
        return LibCall("read", (fd, nbytes), {"device": device})

    def write(self, fd: int, nbytes: int, device: str = "disk0") -> LibCall:
        return LibCall("write", (fd, nbytes), {"device": device})

    # -- sockets (the simulated network stack; see repro.core.netlib) -------------------------------------

    def socket(self) -> LibCall:
        """A new socket fd (-1 when no network stack is attached)."""
        return LibCall("socket")

    def bind(self, fd: int, port: int) -> LibCall:
        """Bind a socket to a port -> err."""
        return LibCall("bind", (fd, port))

    def listen(self, fd: int, backlog: int = 8) -> LibCall:
        """Start listening -> err."""
        return LibCall("listen", (fd, backlog))

    def accept(self, fd: int) -> LibCall:
        """Block for a connection -> ``(err, conn_fd)``."""
        return LibCall("accept", (fd,))

    def connect(self, fd: int, port: int) -> LibCall:
        """Connect to a listening port -> ``(err, fd)``."""
        return LibCall("connect", (fd, port))

    def send(self, fd: int, nbytes: int, meta: Any = None) -> LibCall:
        """Send a message -> ``(err, nbytes)``; blocks on backpressure."""
        return LibCall("send", (fd, nbytes), {"meta": meta})

    def recv(self, fd: int) -> LibCall:
        """Receive one message -> ``(err, msg_or_None)`` (None = EOF)."""
        return LibCall("recv", (fd,))

    def select(
        self, fds: Any, timeout_us: Optional[float] = None
    ) -> LibCall:
        """Wait for readiness on any of ``fds`` -> ``(err, ready_fds)``."""
        return LibCall("select", (list(fds),), {"timeout_us": timeout_us})

    def close(self, fd: int) -> LibCall:
        """Close a descriptor (socket, epoll, or device mapping) -> err."""
        return LibCall("net_close", (fd,))

    def epoll_create(self) -> LibCall:
        """A new epoll interest-list fd (-1 when no network stack)."""
        return LibCall("epoll_create")

    def epoll_ctl(self, epfd: int, op: str, fd: int) -> LibCall:
        """Register (``"add"``) / deregister (``"del"``) ``fd`` -> err."""
        return LibCall("epoll_ctl", (epfd, op, fd))

    def epoll_wait(
        self,
        epfd: int,
        maxevents: Optional[int] = None,
        timeout_us: Optional[float] = None,
    ) -> LibCall:
        """Wait for readiness on the interest list -> ``(err, ready_fds)``.

        O(ready), not O(registered): the kernel pushes readiness edges
        to the interest list, so a wakeup never probes idle fds."""
        return LibCall(
            "epoll_wait", (epfd,),
            {"maxevents": maxevents, "timeout_us": timeout_us},
        )

    # -- jumps ----------------------------------------------------------------------------------------------

    def jmp_buf(self) -> LibCall:
        return LibCall("jmp_buf_new")

    def setjmp_block(self, buf: Any, fn: Callable, *args: Any) -> LibCall:
        """Run ``fn`` under ``buf``; returns ``(jumped, value)``."""
        return LibCall("setjmp_block", (buf, fn) + args)

    def longjmp(self, buf: Any, value: Any = 1) -> LibCall:
        return LibCall("longjmp", (buf, value))

    # -- raw UNIX access (benchmarks, comparisons) ----------------------------------------------------------------

    def unix_getpid(self) -> SysCall:
        """A raw ``getpid`` -- Table 2's UNIX-kernel yardstick."""
        return SysCall("getpid")

    def raise_fault(self, sig: int) -> SysCall:
        """Cause a synchronous fault (SIGSEGV, SIGFPE, ...) right here."""
        return SysCall("raise", (sig,))

    def __repr__(self) -> str:
        return "PT(%r)" % (self.runtime,)
