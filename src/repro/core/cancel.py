"""Thread cancellation (draft-6 "interruptibility").

``pthread_cancel`` sends the internal ``SIGCANCEL``; what happens next
is the paper's Table 1:

==========  =============  ==================================================
State       Type           Action
==========  =============  ==================================================
disabled    any            pends on the thread until cancellation is enabled
enabled     controlled     pends until an interruption point is reached
enabled     asynchronous   acted upon immediately
==========  =============  ==================================================

Interruption points are the calls that may suspend indefinitely
(conditional waits, join, sigwait, delay, I/O) -- *except* locking a
mutex, excluded so cleanup handlers always see a deterministic mutex
state -- plus the explicit ``pthread_testintr``.

Acting on a cancellation: interruptibility is disabled, all other
signals are masked, and a fake call to ``pthread_exit`` is pushed onto
the thread's stack (so cleanup handlers and TSD destructors run on the
dying thread at its own priority).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import config as cfg
from repro.core.errors import EINVAL, ESRCH, OK
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs
from repro.unix.sigset import SIGCANCEL, SigSet
from repro.unix.signals import SigCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime

#: Wait kinds that are interruption points (note: no "mutex").
INTERRUPTION_WAITS = frozenset({"cond", "join", "sigwait", "delay", "io"})


class CancelOps(LibraryOps):
    """Entry points for cancellation."""

    ENTRIES = {
        "cancel": "lib_cancel",
        "setintr": "lib_setintr",
        "setintrtype": "lib_setintrtype",
        "testintr": "lib_testintr",
    }

    def lib_cancel(self, tcb: Tcb, target: Tcb) -> int:
        """``pthread_cancel``: request cancellation of ``target``."""
        del tcb
        rt = self.rt
        if not isinstance(target, Tcb) or target.reclaimed:
            return ESRCH
        rt.kern.enter()
        rt.world.spend(costs.CANCEL_WORK, fire=False)
        rt.thread_ops._ensure_active(target)
        cause = SigCause(kind="cancel", thread=target)
        rt.sigdeliver.direct_signal(SIGCANCEL, cause)
        rt.kern.leave()
        return OK

    def lib_setintr(self, tcb: Tcb, state: str) -> object:
        """Enable/disable cancellation; returns ``(err, old_state)``."""
        rt = self.rt
        old = (
            cfg.PTHREAD_INTR_ENABLE
            if tcb.intr_enabled
            else cfg.PTHREAD_INTR_DISABLE
        )
        if state not in (cfg.PTHREAD_INTR_ENABLE, cfg.PTHREAD_INTR_DISABLE):
            return (EINVAL, old)
        rt.world.spend(costs.ATTR_OP, fire=False)
        tcb.intr_enabled = state == cfg.PTHREAD_INTR_ENABLE
        if (
            tcb.intr_enabled
            and tcb.cancel_pending
            and tcb.intr_type == cfg.PTHREAD_INTR_ASYNCHRONOUS
        ):
            # Re-enabled with asynchronous type: act immediately.
            rt.kern.enter()
            self.act_on_cancel(tcb)
            rt.kern.leave()
            return BLOCKED
        return (OK, old)

    def lib_setintrtype(self, tcb: Tcb, intr_type: str) -> object:
        """Set controlled/asynchronous; returns ``(err, old_type)``."""
        rt = self.rt
        old = tcb.intr_type
        if intr_type not in (
            cfg.PTHREAD_INTR_CONTROLLED,
            cfg.PTHREAD_INTR_ASYNCHRONOUS,
        ):
            return (EINVAL, old)
        rt.world.spend(costs.ATTR_OP, fire=False)
        tcb.intr_type = intr_type
        if (
            tcb.intr_enabled
            and tcb.cancel_pending
            and intr_type == cfg.PTHREAD_INTR_ASYNCHRONOUS
        ):
            rt.kern.enter()
            self.act_on_cancel(tcb)
            rt.kern.leave()
            return BLOCKED
        return (OK, old)

    def lib_testintr(self, tcb: Tcb) -> object:
        """``pthread_testintr``: an explicit interruption point."""
        self.rt.world.spend(costs.CANCEL_WORK, fire=False)
        if self.act_if_pending(tcb):
            return BLOCKED
        return OK

    # -- the delivery-side logic (Table 1) --------------------------------------------

    def on_cancel_signal(self, tcb: Tcb) -> None:
        """SIGCANCEL reached ``tcb`` (kernel flag held): apply Table 1."""
        rt = self.rt
        if not tcb.intr_enabled:
            tcb.cancel_pending = True
            rt.world.emit("cancel-pend", thread=tcb.name, why="disabled")
            return
        if tcb.intr_type == cfg.PTHREAD_INTR_ASYNCHRONOUS:
            self.act_on_cancel(tcb)
            return
        # Enabled + controlled: act only at an interruption point.
        wait = tcb.wait
        if (
            tcb.state is ThreadState.BLOCKED
            and wait is not None
            and wait.kind in INTERRUPTION_WAITS
        ):
            self.act_on_cancel(tcb)
            return
        tcb.cancel_pending = True
        rt.world.emit("cancel-pend", thread=tcb.name, why="controlled")

    def act_if_pending(self, tcb: Tcb) -> bool:
        """Called at interruption points: act on a pending cancel.

        Returns True when the thread is now exiting (the caller must
        abandon its call and return BLOCKED).
        """
        if not (
            tcb.cancel_pending
            and tcb.intr_enabled
            and not tcb.exiting
        ):
            return False
        rt = self.rt
        rt.kern.enter()
        self.act_on_cancel(tcb)
        rt.kern.leave()
        return True

    def act_on_cancel(self, tcb: Tcb) -> None:
        """Act on a cancellation request (kernel flag held)."""
        rt = self.rt
        rt.world.spend(costs.CANCEL_WORK, fire=False)
        tcb.cancel_pending = False
        tcb.intr_enabled = False  # per the paper
        tcb.sigmask = SigSet.full()  # all other signals disabled
        rt.world.emit("cancelled", thread=tcb.name)

        reacquire = None
        if tcb.state is ThreadState.BLOCKED and tcb.wait is not None:
            wait = tcb.wait
            if wait.teardown is not None:
                wait.teardown()
            handle = wait.data.get("timeout_handle")
            if handle is not None:
                rt.timer_ops.cancel_timeout(handle)
            # POSIX: cancellation inside a conditional wait reacquires
            # the mutex before the cleanup handlers run.
            reacquire = wait.data.get("mutex")
            tcb.wait = None
            tcb.state = ThreadState.READY  # transitional; ready below
            rt.push_frame(
                tcb,
                _cancel_body,
                (reacquire,),
                kind="wrapper",
                deliver_to_caller=False,
            )
            rt.sched.ready.enqueue(tcb)
            rt.kern.request_dispatch()
            return
        # Running (asynchronous self-cancel) or ready: the fake call to
        # pthread_exit lands on top of whatever the thread was doing.
        rt.push_frame(
            tcb,
            _cancel_body,
            (None,),
            kind="wrapper",
            deliver_to_caller=False,
        )


def _cancel_body(pt, reacquire):
    """The fake call to ``pthread_exit`` (plus condvar mutex rescue)."""
    if reacquire is not None:
        yield pt.mutex_lock(reacquire)
    yield pt.exit(cfg.PTHREAD_CANCELED)
