"""POSIX error numbers and per-thread errno.

Draft 6 of POSIX 1003.4a (the draft the paper implements) had most
calls return -1 and set ``errno``; the ratified standard returns the
error number directly.  We follow the modern convention -- every
``pthread_*`` entry point returns 0 on success or an error number --
but the library still maintains a per-thread errno that the dispatcher
saves and restores across context switches, exactly as the paper's
"loading UNIX's global error number with the thread's error number"
step does.
"""

from __future__ import annotations

OK = 0
EPERM = 1
ESRCH = 3
EINTR = 4
EAGAIN = 11
ENOMEM = 12
EBUSY = 16
EINVAL = 22
EDEADLK = 35
ETIMEDOUT = 60
ENOSPC = 28
EBADF = 9
EPIPE = 32
ENOTCONN = 57
EISCONN = 56
EADDRINUSE = 48
ECONNREFUSED = 61

_NAMES = {
    OK: "OK",
    EPERM: "EPERM",
    ESRCH: "ESRCH",
    EINTR: "EINTR",
    EAGAIN: "EAGAIN",
    ENOMEM: "ENOMEM",
    EBUSY: "EBUSY",
    EINVAL: "EINVAL",
    EDEADLK: "EDEADLK",
    ETIMEDOUT: "ETIMEDOUT",
    ENOSPC: "ENOSPC",
    EBADF: "EBADF",
    EPIPE: "EPIPE",
    ENOTCONN: "ENOTCONN",
    EISCONN: "EISCONN",
    EADDRINUSE: "EADDRINUSE",
    ECONNREFUSED: "ECONNREFUSED",
}


def errno_name(err: int) -> str:
    """Symbolic name of an error number (for messages and traces)."""
    return _NAMES.get(err, "E#%d" % err)


class PthreadsInternalError(Exception):
    """The library detected a broken internal invariant.

    These are bugs in the library (or deliberately injected faults in
    tests), never user errors: user errors come back as error numbers.
    """
