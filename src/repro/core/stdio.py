"""A thread-safe stdio layer: the paper's reentrancy future-work item.

"A major obstacle to the use of threads is to make C libraries
reentrant for threads.  Several library calls use global state
information, some interfaces are non-reentrant ... This issue has not
been addressed yet to supplement our implementation with a thread-safe
C library."  This module addresses it for the canonical offender,
stdio: every stream carries a mutex (flockfile-style), writes are
line-buffered in per-stream state, and an unlocked variant is kept so
tests can demonstrate the interleaving corruption the locked API
prevents.

Usage (from thread code)::

    stdio = yield pt.lib_raw("stdio_open", "log")
    yield pt.call(stdio_puts, stdio, "hello from %s" % name)
    ...
    lines = stdio.drain()
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.core.attr import MutexAttr
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs

_stream_ids = itertools.count(1)


class Stream:
    """A buffered output stream with a flockfile-style mutex."""

    def __init__(self, runtime, name: Optional[str] = None) -> None:
        self.stream_id = next(_stream_ids)
        self.name = name or "stream-%d" % self.stream_id
        self.mutex = runtime.mutex_ops.lib_mutex_init(
            None, MutexAttr(name="%s.flock" % self.name)
        )
        #: The character buffer for the line being assembled (the
        #: "global state information" that makes naive stdio
        #: non-reentrant).
        self.partial: List[str] = []
        self.lines: List[str] = []
        #: Simulated cycles per character (tunable so tests can place
        #: preemption points inside a line).
        self.char_cost = 5

    def drain(self) -> List[str]:
        out = self.lines
        self.lines = []
        return out

    def __repr__(self) -> str:
        return "Stream(%s, %d lines buffered)" % (
            self.name, len(self.lines),
        )


class StdioOps(LibraryOps):
    """Stream creation entry point."""

    ENTRIES = {"stdio_open": "lib_stdio_open"}

    def lib_stdio_open(self, tcb: Tcb, name: Optional[str] = None) -> Stream:
        del tcb
        self.rt.world.spend(costs.SEM_OVERHEAD, fire=False)
        return Stream(self.rt, name)


def stdio_puts(pt, stream: Stream, text: str):
    """Thread-safe ``fputs``: the whole line appears atomically."""
    yield pt.mutex_lock(stream.mutex)
    yield from _emit_chars(pt, stream, text)
    yield pt.mutex_unlock(stream.mutex)
    return len(text)


def stdio_puts_unlocked(pt, stream: Stream, text: str):
    """``fputs_unlocked``: fast, but corrupts output under concurrency
    (kept to demonstrate *why* the locking layer exists)."""
    yield from _emit_chars(pt, stream, text)
    return len(text)


def _emit_chars(pt, stream: Stream, text: str):
    """Character-at-a-time emission into the shared line buffer --
    preemptible between characters, exactly like real stdio's buffer
    manipulation is preemptible at instruction granularity.  Without
    the stream mutex, concurrent writers interleave characters and
    steal each other's partially assembled lines."""
    for char in text:
        stream.partial.append(char)
        yield pt.work(stream.char_cost)  # preemption point per char
    stream.lines.append("".join(stream.partial))
    stream.partial = []
