"""Reader-writer locks, built on mutexes and condition variables.

The paper notes that "other synchronization methods ... can be easily
implemented on top of these primitives"; semaphores are its example.
Reader-writer locks are the other classic composition and round out
the library.  Writer-preference: arriving writers block new readers,
so writers cannot starve (the policy real Pthreads rwlocks adopted).

Like the semaphore bodies, these are library-level generator routines
over the primitive entry points::

    rw = yield pt.rwlock_init()
    yield pt.rwlock_rdlock(rw)
    ...
    yield pt.rwlock_unlock(rw)
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.attr import CondAttr, MutexAttr
from repro.core.errors import EPERM, OK
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs

_rw_ids = itertools.count(1)


class RwLock:
    """State: >0 readers inside, or one writer; waiting counts."""

    def __init__(self, runtime, name: Optional[str] = None) -> None:
        self.rwid = next(_rw_ids)
        self.name = name or "rwlock-%d" % self.rwid
        self.mutex = runtime.mutex_ops.lib_mutex_init(
            None, MutexAttr(name="%s.mutex" % self.name)
        )
        self.readers_cond = runtime.cond_ops.lib_cond_init(
            None, CondAttr(name="%s.readers" % self.name)
        )
        self.writers_cond = runtime.cond_ops.lib_cond_init(
            None, CondAttr(name="%s.writers" % self.name)
        )
        self.active_readers = 0
        self.active_writer: Optional[Tcb] = None
        self.waiting_writers = 0
        # Statistics.
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    def __repr__(self) -> str:
        return "RwLock(%s, readers=%d, writer=%s, ww=%d)" % (
            self.name,
            self.active_readers,
            self.active_writer.name if self.active_writer else None,
            self.waiting_writers,
        )


class RwLockOps(LibraryOps):
    """The creation entry point (the lock/unlock paths are generator
    compositions, exposed through the PT facade)."""

    ENTRIES = {"rwlock_init": "lib_rwlock_init"}

    def lib_rwlock_init(self, tcb: Tcb, name: Optional[str] = None) -> RwLock:
        del tcb
        self.rt.world.spend(costs.SEM_OVERHEAD, fire=False)
        rw = RwLock(self.rt, name)
        check = self.rt.check
        if check is not None:
            check.register_rwlock(rw)
        return rw


def _unlock_cleanup(pt, mutex):
    """Cleanup: release the internal mutex if cancelled mid-wait."""
    yield pt.mutex_unlock(mutex)


def _writer_cancel_cleanup(pt, arg):
    """Cleanup for a cancelled writer: withdraw its queue claim (only
    if it was actually registered -- the claim flag travels with the
    handler so a cancellation landing before the increment, or after
    the decrement, cannot unbalance ``waiting_writers``), let blocked
    readers through if it was the last writer, and release the internal
    mutex (reacquired by the cancellation machinery)."""
    rw, claim = arg
    if claim[0]:
        claim[0] = False
        rw.waiting_writers -= 1
        if rw.waiting_writers == 0 and rw.active_writer is None:
            yield pt.cond_broadcast(rw.readers_cond)
    yield pt.mutex_unlock(rw.mutex)


def rdlock_body(pt, rw: RwLock):
    """Acquire for reading; blocks while a writer is active/waiting.

    A cancellation point; cancellation leaves the lock consistent.
    """
    yield pt.charge(costs.SEM_OVERHEAD)
    yield pt.mutex_lock(rw.mutex)
    yield pt.cleanup_push(_unlock_cleanup, rw.mutex)
    # Writer preference: also wait out queued writers.
    while rw.active_writer is not None or rw.waiting_writers > 0:
        yield pt.cond_wait(rw.readers_cond, rw.mutex)
    rw.active_readers += 1
    rw.read_acquisitions += 1
    yield pt.cleanup_pop(False)
    yield pt.mutex_unlock(rw.mutex)
    return OK


def wrlock_body(pt, rw: RwLock):
    """Acquire for writing; exclusive.

    A cancellation point; a cancelled waiter withdraws its queue claim
    so readers it was blocking can proceed.
    """
    yield pt.charge(costs.SEM_OVERHEAD)
    me = yield pt.self_id()
    yield pt.mutex_lock(rw.mutex)
    # Install the cleanup handler *before* taking the queue claim: a
    # cancellation landing between the two would otherwise leak a
    # ``waiting_writers`` claim and block readers forever.  The claim
    # flag tells the handler whether the claim is live.
    claim = [False]
    yield pt.cleanup_push(_writer_cancel_cleanup, (rw, claim))
    claim[0] = True
    rw.waiting_writers += 1
    while rw.active_writer is not None or rw.active_readers > 0:
        yield pt.cond_wait(rw.writers_cond, rw.mutex)
    rw.waiting_writers -= 1
    claim[0] = False
    rw.active_writer = me
    rw.write_acquisitions += 1
    yield pt.cleanup_pop(False)
    yield pt.mutex_unlock(rw.mutex)
    return OK


def unlock_body(pt, rw: RwLock):
    """Release either mode; wakes writers first (preference)."""
    yield pt.charge(costs.SEM_OVERHEAD)
    me = yield pt.self_id()
    yield pt.mutex_lock(rw.mutex)
    if rw.active_writer is me:
        rw.active_writer = None
    elif rw.active_readers > 0:
        rw.active_readers -= 1
    else:
        yield pt.mutex_unlock(rw.mutex)
        return EPERM
    if rw.active_readers == 0 and rw.active_writer is None:
        if rw.waiting_writers > 0:
            yield pt.cond_signal(rw.writers_cond)
        else:
            yield pt.cond_broadcast(rw.readers_cond)
    yield pt.mutex_unlock(rw.mutex)
    return OK
