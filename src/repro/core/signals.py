"""Thread-level signal operations.

``pthread_kill`` (internal signals) never touches the UNIX kernel --
the whole point of Table 2's "thread signal handler (internal)" row
being five times cheaper than the external one: the signal is directed
inside the library, straight through the delivery model.

Per-thread masks are pure library state.  Signal *actions* are
process-wide (POSIX semantics): one table shared by all threads,
installed with :meth:`SignalOps.lib_sigaction`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.errors import EINVAL, ESRCH, OK
from repro.core.fakecall import UserAction
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs
from repro.unix.signals import SigCause
from repro.unix.sigset import SIG_DFL, SIGCANCEL, SigSet, check_signal

SIG_BLOCK = "block"
SIG_UNBLOCK = "unblock"
SIG_SETMASK = "setmask"


class SignalOps(LibraryOps):
    """Entry points for thread-level signalling."""

    ENTRIES = {
        "sigaction": "lib_sigaction",
        "sigmask": "lib_sigmask",
        "kill": "lib_kill",
        "sigwait": "lib_sigwait",
        "thread_sigpending": "lib_thread_sigpending",
        "sig_redirect": "lib_sig_redirect",
        "_recheck_signals": "lib_recheck_signals",
    }

    # -- actions ------------------------------------------------------------------

    def lib_sigaction(
        self,
        tcb: Tcb,
        sig: int,
        handler: Any,
        mask: Optional[SigSet] = None,
    ) -> Any:
        """Install a process-wide user action for ``sig``.

        ``handler`` is a generator function ``handler(pt, sig)``, or
        ``SIG_IGN`` / ``SIG_DFL``.  Returns ``(err, old_handler)``.
        """
        del tcb
        rt = self.rt
        try:
            check_signal(sig)
        except ValueError:
            return (EINVAL, None)
        if sig == SIGCANCEL:
            return (EINVAL, None)  # the cancellation signal is reserved
        rt.kern.enter()
        rt.world.spend(costs.SIG_MASK_OP, fire=False)
        old = rt.user_actions.get(sig)
        rt.user_actions[sig] = UserAction(handler, mask)
        rt.kern.leave()
        return (OK, old.handler if old else SIG_DFL)

    # -- masks --------------------------------------------------------------------

    def lib_sigmask(
        self, tcb: Tcb, how: str, signals: Optional[SigSet] = None
    ) -> Any:
        """Per-thread mask manipulation; returns ``(err, old_mask)``."""
        rt = self.rt
        if how not in (SIG_BLOCK, SIG_UNBLOCK, SIG_SETMASK):
            return (EINVAL, tcb.sigmask.copy())
        signals = signals if signals is not None else SigSet()
        rt.kern.enter()
        rt.world.spend(costs.SIG_MASK_OP, fire=False)
        old = tcb.sigmask.copy()
        if how == SIG_BLOCK:
            tcb.sigmask = tcb.sigmask | signals
        elif how == SIG_UNBLOCK:
            tcb.sigmask = tcb.sigmask - signals
        else:
            tcb.sigmask = signals.copy()
        # Unmasking may release thread- or process-pended signals.
        rt.sigdeliver.recheck_thread(tcb)
        rt.kern.leave()
        return (OK, old)

    def lib_thread_sigpending(self, tcb: Tcb) -> SigSet:
        self.rt.world.spend(costs.SIG_MASK_OP, fire=False)
        return tcb.pending.signals()

    def lib_recheck_signals(self, tcb: Tcb) -> int:
        """Internal: wrapper epilogue mask-restore recheck."""
        rt = self.rt
        rt.kern.enter()
        rt.sigdeliver.recheck_thread(tcb)
        rt.kern.leave()
        return OK

    # -- sending -------------------------------------------------------------------

    def lib_kill(self, tcb: Tcb, target: Tcb, sig: int) -> int:
        """``pthread_kill``: direct a signal at a thread -- entirely
        inside the library (no UNIX kernel involvement)."""
        del tcb
        rt = self.rt
        try:
            check_signal(sig)
        except ValueError:
            return EINVAL
        if not isinstance(target, Tcb) or target.reclaimed:
            return ESRCH
        rt.kern.enter()
        # Sending a signal to a lazy thread is synchronisation.
        if target.state is ThreadState.EMBRYO:
            rt.thread_ops._ensure_active(target)
        # SigCause is frozen, so one directed-at-target instance serves
        # every pthread_kill aimed at the same thread.
        cause = target._kill_cause
        if cause is None:
            cause = SigCause(kind="directed", thread=target)
            target._kill_cause = cause
        rt.sigdeliver.direct_signal(sig, cause)
        rt.kern.leave()
        return OK

    # -- synchronous waiting ------------------------------------------------------------

    def lib_sigwait(self, tcb: Tcb, signals: SigSet) -> Any:
        """Wait for one of ``signals``; returns ``(err, sig)``.

        The waited set behaves as unmasked for the duration (recipient
        rule 5's parenthetical) and is re-masked on return (action
        rule 3).
        """
        rt = self.rt
        if not signals:
            return (EINVAL, 0)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        rt.world.spend(costs.SIG_MASK_OP, fire=False)
        # Already pending on the thread?  Consume without blocking.
        item = tcb.pending.take_any_in(signals)
        if item is not None:
            rt.kern.leave()
            return (OK, item[0])
        # A process-pended signal in the set?
        for index, (sig, cause) in enumerate(rt.process_pending):
            if sig in signals:
                del rt.process_pending[index]
                rt.kern.leave()
                return (OK, sig)
        rt.block_current(
            kind="sigwait",
            obj=None,
            interruptible=True,
            set=signals.copy(),
        )
        rt.kern.leave()
        return BLOCKED

    # -- redirect (implementation-defined, used by the Ada runtime) ----------------------------

    def lib_sig_redirect(self, tcb: Tcb, fn: Any, *args: Any) -> int:
        """From inside a user handler: after the handler returns,
        transfer control to ``fn(pt, *args)`` instead of the
        interruption point."""
        self.rt.world.spend(costs.INSN, times=4, fire=False)
        in_wrapper = any(f.kind == "wrapper" for f in tcb.frames)
        if not in_wrapper:
            return EINVAL
        tcb.redirect_request = (fn, args)
        return OK
