"""Thread-blocking I/O over asynchronous UNIX requests.

UNIX read/write would block the whole process; the library instead
issues a non-blocking request and suspends only the calling *thread*.
The completion arrives as SIGIO with a cause naming the requester
(delivery-model rule 4), and only that thread wakes.  The paper credits
this layer to Viresh Rustagi and discusses its limits under "Open
Problems" (UNIX lacks non-blocking equivalents for some calls).
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import EINVAL
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs
from repro.unix import net as _net


class IoOps(LibraryOps):
    """Entry points for thread-level read/write.

    Two completion paths exist:

    - the paper's shipping design: SIGIO through the universal handler,
      demultiplexed by delivery-model rule 4;
    - the paper's *proposed* design (Open Problems / Marsh & Scott):
      a first-class kernel/user channel that hands the completion and
      its datum straight to the library scheduler (``fc_*``), skipping
      signal delivery entirely.
    """

    ENTRIES = {
        "read": "lib_read",
        "write": "lib_write",
    }

    def lib_read(
        self, tcb: Tcb, fd: int, nbytes: int, device: str = "disk0"
    ) -> Any:
        """Blocking-at-thread-level read; returns ``(err, nbytes)``."""
        return self._io(tcb, "read", fd, nbytes, device)

    def lib_write(
        self, tcb: Tcb, fd: int, nbytes: int, device: str = "disk0"
    ) -> Any:
        """Blocking-at-thread-level write; returns ``(err, nbytes)``."""
        return self._io(tcb, "write", fd, nbytes, device)

    def _io(self, tcb: Tcb, op: str, fd: int, nbytes: int, device: str) -> Any:
        rt = self.rt
        # Descriptor-first routing: an fd installed in the runtime's
        # fd table names its device (or socket) directly, as on UNIX.
        # Unmapped fds fall back to the legacy ``device=`` keyword --
        # the fallback charges nothing, so pre-fd-table programs run
        # bit-identically (pinned by test_fdtable_regression).
        dev = rt.fds.get(fd)
        if dev is None:
            dev = rt.io_devices.get(device)
        elif isinstance(dev, _net.Socket):
            # Sockets share the descriptor space: read/recv and
            # write/send are the same call on a socket fd.
            if op == "read":
                return rt.net_ops.lib_recv(tcb, fd)
            return rt.net_ops.lib_send(tcb, fd, nbytes)
        if dev is None:
            return (EINVAL, 0)
        if nbytes < 0:
            return (EINVAL, 0)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        rt.world.spend(costs.INSN, times=8, fire=False)
        request = dev.submit(fd, op, nbytes, requester=tcb)
        rt.block_current(
            kind="io",
            obj=dev,
            interruptible=True,
            request=request,
        )
        rt.world.emit(
            "io-issue", thread=tcb.name, op=op, fd=fd, nbytes=nbytes
        )
        rt.kern.leave()
        return BLOCKED

    # -- the first-class channel (upcall side) -----------------------------------

    def fc_upcall(self, datum: Any, request: Any) -> None:
        """The user-scheduler upcall the channel invokes on completion.

        Respects the monolithic monitor: inside the kernel the upcall
        is logged for the dispatcher (like a deferred signal);
        otherwise it wakes the thread immediately -- no recipient
        search, no sigsetmask pair, no universal handler.
        """
        rt = self.rt
        del datum  # the request carries the requester
        if rt.kern.kernel_flag:
            rt.kern.deferred_upcalls.append(request)
            rt.kern.request_dispatch()
            return
        rt.kern.enter()
        self.fc_wake(request)
        rt.kern.request_dispatch()
        rt.kern.leave()

    def fc_wake(self, request: Any) -> None:
        """Wake the requester (kernel flag held)."""
        rt = self.rt
        tcb = request.requester
        wait = tcb.wait
        if (
            wait is None
            or wait.kind != "io"
            or wait.data.get("request") is not request
        ):
            return  # already woken (interrupted or cancelled)
        wait.deliver((0, request.result))
        rt.sched.make_ready(tcb)
        rt.world.emit("io-fc-wake", thread=tcb.name)
