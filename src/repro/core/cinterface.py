"""A C-flavoured, language-independent procedural interface.

The paper stresses a "language-independent interface": every service is
a *linkable entry point*, never a C macro, so any language binding can
call it ("It was decided to avoid C macros for interface
implementations in general ... trading the overhead of function calls
... for the generality and language-independence of the interface").

This module is that interface shape: plain functions named exactly
like the POSIX entry points, returning op descriptors for the yielding
runtime.  Bindings (the Ada layer, user code ported from C) can target
these names one-for-one::

    from repro.core import cinterface as c

    def body(pt):
        m = yield c.pthread_mutex_init(pt)
        yield c.pthread_mutex_lock(pt, m)
        yield c.pthread_mutex_unlock(pt, m)
        me = yield c.pthread_self(pt)
        yield c.pthread_exit(pt, 0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.unix.sigset import SigSet

# -- thread management --------------------------------------------------------


def pthread_create(pt, fn: Callable, *args: Any, attr=None, name=None):
    return pt.create(fn, *args, attr=attr, name=name)


def pthread_join(pt, thread):
    return pt.join(thread)


def pthread_detach(pt, thread):
    return pt.detach(thread)


def pthread_exit(pt, value: Any = None):
    return pt.exit(value)


def pthread_self(pt):
    return pt.self_id()


def pthread_equal(pt, a, b):
    return pt.equal(a, b)


def pthread_yield(pt):
    return pt.yield_()


def pthread_setprio(pt, thread, priority: int):
    return pt.setprio(thread, priority)


def pthread_getprio(pt, thread):
    return pt.getprio(thread)


def pthread_setschedparam(pt, thread, policy, priority: int):
    return pt.setschedparam(thread, policy, priority)


def pthread_getschedparam(pt, thread):
    return pt.getschedparam(thread)


# -- mutexes ----------------------------------------------------------------------


def pthread_mutex_init(pt, attr=None):
    return pt.mutex_init(attr)


def pthread_mutex_destroy(pt, mutex):
    return pt.mutex_destroy(mutex)


def pthread_mutex_lock(pt, mutex):
    return pt.mutex_lock(mutex)


def pthread_mutex_trylock(pt, mutex):
    return pt.mutex_trylock(mutex)


def pthread_mutex_unlock(pt, mutex):
    return pt.mutex_unlock(mutex)


def pthread_mutex_setprioceiling(pt, mutex, ceiling: int):
    return pt.mutex_setprioceiling(mutex, ceiling)


def pthread_mutex_getprioceiling(pt, mutex):
    return pt.mutex_getprioceiling(mutex)


# -- condition variables ------------------------------------------------------------


def pthread_cond_init(pt, attr=None):
    return pt.cond_init(attr)


def pthread_cond_destroy(pt, cond):
    return pt.cond_destroy(cond)


def pthread_cond_wait(pt, cond, mutex):
    return pt.cond_wait(cond, mutex)


def pthread_cond_timedwait(pt, cond, mutex, timeout_us: float):
    return pt.cond_timedwait(cond, mutex, timeout_us)


def pthread_cond_signal(pt, cond):
    return pt.cond_signal(cond)


def pthread_cond_broadcast(pt, cond):
    return pt.cond_broadcast(cond)


# -- signals ----------------------------------------------------------------------------


def sigaction(pt, sig: int, handler: Any, mask: Optional[SigSet] = None):
    return pt.sigaction(sig, handler, mask)


def sigprocmask(pt, how: str, signals: Optional[SigSet] = None):
    # POSIX spells the thread-level call sigprocmask/pthread_sigmask.
    return pt.sigmask(how, signals)


def pthread_kill(pt, thread, sig: int):
    return pt.kill(thread, sig)


def sigwait(pt, signals: SigSet):
    return pt.sigwait(signals)


# -- cancellation (draft-6 names) ----------------------------------------------------------


def pthread_cancel(pt, thread):
    return pt.cancel(thread)


def pthread_setintr(pt, state: str):
    return pt.setintr(state)


def pthread_setintrtype(pt, intr_type: str):
    return pt.setintrtype(intr_type)


def pthread_testintr(pt):
    return pt.testintr()


# -- cleanup handlers (functions, NOT macros -- the paper's position) ------------------------------


def pthread_cleanup_push(pt, handler: Callable, arg: Any = None):
    return pt.cleanup_push(handler, arg)


def pthread_cleanup_pop(pt, execute: bool = False):
    return pt.cleanup_pop(execute)


# -- thread-specific data and once --------------------------------------------------------------------


def pthread_key_create(pt, destructor: Optional[Callable] = None):
    return pt.key_create(destructor)


def pthread_key_delete(pt, key: int):
    return pt.key_delete(key)


def pthread_setspecific(pt, key: int, value: Any):
    return pt.setspecific(key, value)


def pthread_getspecific(pt, key: int):
    return pt.getspecific(key)


def pthread_once(pt, once_control, init_routine: Callable):
    return pt.once(once_control, init_routine)
