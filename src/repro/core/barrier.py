"""Barriers, built on mutexes and condition variables.

Another "on top of these primitives" composition: N threads rendezvous
at the barrier; the last arrival releases everyone and exactly one
caller per cycle receives the *serial* indication (mirroring
``PTHREAD_BARRIER_SERIAL_THREAD``).  Generation counting makes the
barrier reusable and immune to spurious wakeups.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.attr import CondAttr, MutexAttr
from repro.core.errors import EINVAL
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs

#: The value exactly one waiter per cycle receives.
BARRIER_SERIAL_THREAD = -1

_barrier_ids = itertools.count(1)


class Barrier:
    """A cyclic barrier for ``count`` participants."""

    def __init__(self, runtime, count: int, name: Optional[str] = None):
        if count < 1:
            raise ValueError("barrier needs at least one participant")
        self.bid = next(_barrier_ids)
        self.name = name or "barrier-%d" % self.bid
        self.count = count
        self.arrived = 0
        self.generation = 0
        self.mutex = runtime.mutex_ops.lib_mutex_init(
            None, MutexAttr(name="%s.mutex" % self.name)
        )
        self.cond = runtime.cond_ops.lib_cond_init(
            None, CondAttr(name="%s.cond" % self.name)
        )
        self.cycles_completed = 0

    def __repr__(self) -> str:
        return "Barrier(%s, %d/%d, gen=%d)" % (
            self.name, self.arrived, self.count, self.generation,
        )


class BarrierOps(LibraryOps):
    """The creation entry point."""

    ENTRIES = {"barrier_init": "lib_barrier_init"}

    def lib_barrier_init(
        self, tcb: Tcb, count: int, name: Optional[str] = None
    ):
        del tcb
        self.rt.world.spend(costs.SEM_OVERHEAD, fire=False)
        if count < 1:
            return EINVAL
        return Barrier(self.rt, count, name)


def barrier_wait_body(pt, barrier: Barrier):
    """Wait at the barrier.

    Returns :data:`BARRIER_SERIAL_THREAD` for the releasing arrival
    and 0 for everyone else, POSIX style.  Like POSIX's
    ``pthread_barrier_wait``, this is *not* a cancellation point: a
    cancelled arrival would strand the whole party, so cancellation is
    deferred for the duration.
    """
    from repro.core import config as cfg

    yield pt.charge(costs.SEM_OVERHEAD)
    _err, previous_intr = yield pt.setintr(cfg.PTHREAD_INTR_DISABLE)
    result = yield pt.call(_barrier_wait_inner, barrier)
    yield pt.setintr(previous_intr)
    yield pt.testintr()  # act on a cancel that arrived while waiting
    return result


def _barrier_wait_inner(pt, barrier: Barrier):
    yield pt.mutex_lock(barrier.mutex)
    generation = barrier.generation
    barrier.arrived += 1
    if barrier.arrived == barrier.count:
        barrier.arrived = 0
        barrier.generation += 1
        barrier.cycles_completed += 1
        yield pt.cond_broadcast(barrier.cond)
        yield pt.mutex_unlock(barrier.mutex)
        return BARRIER_SERIAL_THREAD
    while barrier.generation == generation:
        yield pt.cond_wait(barrier.cond, barrier.mutex)
    yield pt.mutex_unlock(barrier.mutex)
    return 0
