"""Base plumbing shared by the library's entry-point modules.

Each subsystem (threads, mutexes, condition variables, ...) is an
``*Ops`` class holding its entry points; :data:`BLOCKED` is the
sentinel an entry point returns after parking the calling thread (the
call's real result is delivered through the wait record when the
thread wakes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


class _Blocked:
    """Sentinel: the entry point blocked the caller."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<BLOCKED>"


BLOCKED = _Blocked()


class LibraryOps:
    """A bundle of library entry points.

    Subclasses set :attr:`ENTRIES` mapping public call names (the names
    :class:`~repro.core.api.PT` ops carry) to method names.
    """

    ENTRIES: Dict[str, str] = {}

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self.rt = runtime

    def register(self, registry: Dict[str, Callable]) -> None:
        for public, method in self.ENTRIES.items():
            if public in registry:
                raise ValueError("duplicate library entry point: %r" % public)
            registry[public] = getattr(self, method)
