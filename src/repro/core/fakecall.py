"""Fake calls: running user signal handlers on a thread's own stack.

A fake call (paper, Figure 3) pushes a *wrapper* frame onto the target
thread's stack so the user handler executes at the thread's priority
when the thread is next dispatched -- never in the context of whoever
happened to be running when the signal arrived.

The wrapper:

1. reacquires the mutex if the handler interrupted a conditional wait
   (the interrupted wait terminates with ``EINTR``);
2. saves the thread's errno;
3. applies the sigaction mask (plus the signal itself);
4. calls the user handler;
5. restores errno and the mask, and delivers any signals the restore
   unmasked;
6. returns to the interruption point -- or to a routine the handler
   designated via ``pt.sig_redirect`` (the implementation-defined
   redirect feature the paper's Ada runtime depends on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.errors import EINTR
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs
from repro.unix.signals import SigCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


class UserAction:
    """A user sigaction: handler generator + mask to apply while it runs."""

    def __init__(self, handler: Any, mask=None) -> None:
        from repro.unix.sigset import SigSet

        self.handler = handler
        self.mask = mask if mask is not None else SigSet()
        # (sig, saved_bits, action_bits) -> merged wrapper mask.  SigSet
        # instances on live masks are never mutated in place (they are
        # always replaced), so the merged sets can be shared across
        # wrapper invocations.
        self._merge_cache: dict = {}


class FakeCalls:
    """Installs wrapper frames (kernel flag held)."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self.rt = runtime
        # Watcher-free fast-path charge (see LibKernel.__init__).
        self._c_setup = runtime.world._costs[costs.FAKE_CALL_SETUP]
        self.installed = 0

    def install(
        self, tcb: Tcb, sig: int, cause: SigCause, action: UserAction
    ) -> None:
        rt = self.rt
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.FAKE_CALL_SETUP, fire=False)
        else:
            world.clock.cycles += self._c_setup
        self.installed += 1

        reacquire = None
        was_blocked = tcb.state is ThreadState.BLOCKED
        if was_blocked:
            wait = tcb.wait
            if wait is None:
                was_blocked = False
            elif not wait.interruptible:
                # Mutex waits stay deterministic: park the signal on
                # the thread; it is re-examined when the wait ends.
                tcb.pending.post(sig, cause)
                return
            else:
                # Terminate the interrupted wait with EINTR; a
                # conditional wait additionally reacquires its mutex
                # before the handler runs.
                if wait.teardown is not None:
                    wait.teardown()
                handle = wait.data.get("timeout_handle")
                if handle is not None:
                    rt.timer_ops.cancel_timeout(handle)
                reacquire = wait.data.get("mutex")
                wait.deliver(EINTR)
                tcb.wait = None

        if rt.world.trace is not None:
            rt.world.emit(
                "fake-call", thread=tcb.name, sig=sig,
                interrupted_wait=was_blocked,
            )
        on_pop = tcb._wrap_pop_cb
        if on_pop is None:
            on_pop = tcb._wrap_pop_cb = (
                lambda value, _tcb=tcb: self._wrapper_popped(_tcb)
            )
        rt.push_frame(
            tcb,
            _wrapper_body,
            (tcb, sig, action, reacquire),
            kind="wrapper",
            frame_bytes=160,
            deliver_to_caller=False,
            on_pop=on_pop,
        )
        if was_blocked:
            rt.sched.make_ready(tcb)

    def _wrapper_popped(self, tcb: Tcb) -> Optional[Any]:
        """Wrapper returned: honour a redirect request, if any."""
        rt = self.rt
        redirect = getattr(tcb, "redirect_request", None)
        if redirect is None:
            return None
        tcb.redirect_request = None
        fn, args = redirect
        # The redirect routine runs on top of the interruption point.
        # If it raises a SimException, the exception propagates into
        # the interrupted frame at its suspended yield -- exactly what
        # the Ada runtime needs to turn a synchronous signal into an
        # exception at the faulting statement.
        rt.push_frame(
            tcb, fn, args, kind="redirect", deliver_to_caller=False
        )
        return None


def _wrapper_body(pt, tcb: Tcb, sig: int, action: UserAction, reacquire):
    """The wrapper frame's code (paper, "Fake Calls")."""
    if reacquire is not None:
        # The handler interrupted a conditional wait: reacquire the
        # mutex first, so user code always sees it held.
        yield pt.mutex_lock(reacquire)
    yield pt.charge(costs.WRAPPER_OVERHEAD)
    # The wrapper runs as the (current) thread: the live errno is the
    # UNIX global; save and restore it around the user handler.
    saved_errno = pt.runtime.unix_errno
    # Masks are immutable in practice (always replaced, never mutated),
    # so the saved mask is the object itself and the merged mask comes
    # from the action's cache.
    saved_mask = tcb.sigmask
    key = (sig, saved_mask._bits, action.mask._bits)
    merged = action._merge_cache.get(key)
    if merged is None:
        from repro.unix.sigset import SigSet

        merged = saved_mask | action.mask | SigSet([sig])
        action._merge_cache[key] = merged
    tcb.sigmask = merged
    try:
        yield pt.call(action.handler, sig)
    except GeneratorExit:
        # The thread is being torn down (cancellation/exit) while the
        # handler runs: restore state synchronously -- no yields are
        # allowed while the generator is closing.
        pt.runtime.unix_errno = saved_errno
        tcb.errno = saved_errno
        tcb.sigmask = saved_mask
        raise
    except BaseException:
        # A SimException escaping the handler: restore, recheck, and
        # let it propagate to the interrupted frame.
        pt.runtime.unix_errno = saved_errno
        tcb.errno = saved_errno
        tcb.sigmask = saved_mask
        yield pt.lib_raw("_recheck_signals")
        raise
    pt.runtime.unix_errno = saved_errno
    tcb.errno = saved_errno
    tcb.sigmask = saved_mask
    # Deliver anything the mask restore just unmasked.
    yield pt.lib_raw("_recheck_signals")
