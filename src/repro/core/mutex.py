"""Mutexes.

The uncontended path is the paper's Figure 4: a seven-instruction
restartable atomic sequence -- ``ldstub`` test-and-set followed by
recording the owner -- executed *without entering the library kernel*,
which is what makes the "mutex lock/unlock, no contention" row of
Table 2 an order of magnitude cheaper than any kernel-based
synchronisation.  Contention falls into the kernel: the waiter joins a
priority-ordered queue (optionally boosting the owner, per protocol)
and the unlocker hands the mutex directly to the highest-priority
waiter.

The paper's observation that "the implementation of different
protocols compromises efficiency ... a simple mutex lock could have
been implemented with a test-and-set but it now requires an additional
check of the attributes" is visible here as the ``protocol_check``
charge on every operation.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.core import config as cfg
from repro.core.attr import MutexAttr
from repro.core.errors import EBUSY, EDEADLK, EINVAL, EPERM, OK
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.queues import PrioWaitQueue
from repro.core.tcb import Tcb
from repro.hw import costs
from repro.hw.atomic import AtomicCell, RestartableSequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime

_mutex_ids = itertools.count(1)


class Mutex:
    """A Pthreads mutex object."""

    def __init__(
        self, runtime: "PthreadsRuntime", attr: Optional[MutexAttr] = None
    ) -> None:
        attr = (attr or MutexAttr()).validated()
        self.mid = next(_mutex_ids)
        self.name = attr.name or "mutex-%d" % self.mid
        self.protocol = attr.protocol
        self.prioceiling = attr.prioceiling
        self.cell = AtomicCell(0)  # the ldstub target byte
        self.owner: Optional[Tcb] = None
        self.waiters = PrioWaitQueue()
        self.destroyed = False
        # Figure 4: the lock sequence is restartable so the owner store
        # commits atomically with the test-and-set.
        self.lock_sequence = RestartableSequence(
            runtime.world.clock, runtime.world.model, name=self.name
        )
        # Statistics for the protocol benchmarks.  Each counter has a
        # run-wide twin on :class:`MutexOps`; the invariant (checked by
        # ``repro.check``) is that the per-mutex counts sum to the
        # run-wide ones.
        self.contentions = 0
        self.acquisitions = 0
        self.handoffs = 0

    @property
    def locked(self) -> bool:
        return self.cell.value != 0

    def __repr__(self) -> str:
        return "Mutex(%s, %s, owner=%s, waiters=%d)" % (
            self.name,
            self.protocol,
            self.owner.name if self.owner else None,
            len(self.waiters),
        )


class MutexOps(LibraryOps):
    """Entry points for mutex operations."""

    ENTRIES = {
        "mutex_init": "lib_mutex_init",
        "mutex_destroy": "lib_mutex_destroy",
        "mutex_lock": "lib_mutex_lock",
        "mutex_trylock": "lib_mutex_trylock",
        "mutex_unlock": "lib_mutex_unlock",
        "mutex_setprioceiling": "lib_mutex_setprioceiling",
        "mutex_getprioceiling": "lib_mutex_getprioceiling",
    }

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        super().__init__(runtime)
        # Watcher-free fast-path charges (see LibKernel.__init__).
        table = runtime.world._costs
        self._c_protocol = table[costs.PROTOCOL_CHECK]
        self._c_fast_lock = table[costs.MUTEX_FAST_LOCK]
        self._c_fast_unlock = table[costs.MUTEX_FAST_UNLOCK]
        #: Run-wide totals (per-mutex counts live on each Mutex, but
        #: mutexes are not enumerable from the runtime; these feed the
        #: observability harvest).
        self.contentions = 0
        self.handoffs = 0

    # -- lifecycle ----------------------------------------------------------------

    def lib_mutex_init(
        self, tcb: Tcb, attr: Optional[MutexAttr] = None
    ) -> Mutex:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        mutex = Mutex(self.rt, attr)
        check = self.rt.check
        if check is not None:
            check.register_mutex(mutex)
        return mutex

    def lib_mutex_destroy(self, tcb: Tcb, mutex: Mutex) -> int:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        if mutex.destroyed:
            return EINVAL
        if mutex.locked or mutex.waiters:
            return EBUSY
        mutex.destroyed = True
        return OK

    # -- lock ----------------------------------------------------------------------

    def lib_mutex_lock(self, tcb: Tcb, mutex: Mutex) -> int:
        rt = self.rt
        if mutex.destroyed:
            return EINVAL
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.PROTOCOL_CHECK, fire=False)
        else:
            world.clock.cycles += self._c_protocol
        if mutex.protocol == cfg.PRIO_PROTECT and rt.config.check_ceilings:
            if tcb.base_priority > mutex.prioceiling:
                # The paper: locking above the ceiling should be an
                # error, otherwise the protocol's bound is void.
                return EINVAL
        if mutex.owner is tcb:
            return EDEADLK
        if self._try_fast_acquire(tcb, mutex):
            self._after_acquire(tcb, mutex)
            return OK
        return self._lock_slow(tcb, mutex)

    def lib_mutex_trylock(self, tcb: Tcb, mutex: Mutex) -> int:
        rt = self.rt
        if mutex.destroyed:
            return EINVAL
        rt.world.spend(costs.PROTOCOL_CHECK, fire=False)
        if mutex.protocol == cfg.PRIO_PROTECT and rt.config.check_ceilings:
            if tcb.base_priority > mutex.prioceiling:
                return EINVAL
        if mutex.owner is tcb:
            return EDEADLK
        if self._try_fast_acquire(tcb, mutex):
            self._after_acquire(tcb, mutex)
            return OK
        return EBUSY

    def _try_fast_acquire(self, tcb: Tcb, mutex: Mutex) -> bool:
        """Figure 4: ldstub + record owner, as a restartable sequence."""
        rt = self.rt
        clock = rt.world.clock
        if clock._watchers:
            rt.world.spend(costs.MUTEX_FAST_LOCK, fire=False)
        else:
            clock.cycles += self._c_fast_lock
        seq = mutex.lock_sequence
        if seq.interrupt_hook is None and not clock._watchers:
            # No interruption source and no clock watchers: the
            # sequence below runs straight through, so charge its seven
            # instructions in one advance and perform the two stores
            # directly.  Identical virtual time and identical final
            # state -- nothing can observe the clock mid-sequence.
            seq.runs += 1
            clock.advance(seq._insn * 7)
            old = mutex.cell.value
            mutex.cell.value = 0xFF
            if old == 0:
                mutex.owner = tcb
            return old == 0
        state = {}

        def _ldstub():
            state["old"] = mutex.cell.value
            mutex.cell.value = 0xFF

        def _store_owner():
            if state["old"] == 0:
                mutex.owner = tcb
            return state["old"]

        old = mutex.lock_sequence.run(
            [
                _ldstub,  # ldstub [%o0+mutex_lock],%o1
                lambda: None,  # tst %o1
                lambda: None,  # bne mutex_locked
                lambda: None,  # sethi %hi(_kern),%o1
                lambda: None,  # or %o1,%lo(_kern),%o1
                lambda: None,  # ld [%o1+pthread_self],%o1
                _store_owner,  # st %o1,[%o0+mutex_owner]
            ],
            # The ldstub is irreversible: interruption after it rolls
            # forward (the owner store is completed, never skipped).
            commit_index=1,
        )
        return old == 0

    def _after_acquire(self, tcb: Tcb, mutex: Mutex) -> None:
        rt = self.rt
        mutex.acquisitions += 1
        rt.protocols.on_acquired(tcb, mutex)
        if rt.world.trace is not None:
            rt.world.emit("mutex-lock", thread=tcb.name, mutex=mutex.name)
        policy = rt.policy
        if policy is not None:
            policy.on_mutex_acquired(rt)

    def _lock_slow(self, tcb: Tcb, mutex: Mutex) -> object:
        """Contended: queue up (priority order), boost owner, block."""
        rt = self.rt
        rt.kern.enter()
        rt.world.spend(costs.MUTEX_SLOW_EXTRA, fire=False)
        if not mutex.locked:
            # The owner released between our ldstub and kernel entry
            # (cannot happen in the serial simulation, but the retest
            # is part of the real code path's shape).
            mutex.cell.value = 0xFF
            mutex.owner = tcb
            rt.kern.leave()
            self._after_acquire(tcb, mutex)
            return OK
        mutex.contentions += 1
        self.contentions += 1
        mutex.waiters.add(tcb)
        rt.protocols.on_contention(tcb, mutex)
        rt.world.emit(
            "mutex-contention", thread=tcb.name, mutex=mutex.name,
            owner=mutex.owner.name if mutex.owner else None,
        )
        # Mutex waits are not interruptible: the mutex must be in a
        # deterministic state when cleanup handlers run (paper).
        rt.block_current(
            kind="mutex",
            obj=mutex,
            interruptible=False,
            teardown=lambda: mutex.waiters.remove(tcb),
        )
        rt.kern.leave()
        return BLOCKED

    # -- unlock ----------------------------------------------------------------------

    def lib_mutex_unlock(self, tcb: Tcb, mutex: Mutex) -> int:
        rt = self.rt
        if mutex.destroyed:
            return EINVAL
        world = rt.world
        watched = bool(world.clock._watchers)
        if watched:
            world.spend(costs.PROTOCOL_CHECK, fire=False)
        else:
            world.clock.cycles += self._c_protocol
        if mutex.owner is not tcb:
            return EPERM
        if not mutex.waiters and mutex.protocol == cfg.PRIO_NONE:
            # Uncontended, no protocol: clear the byte and go.
            if watched:
                world.spend(costs.MUTEX_FAST_UNLOCK, fire=False)
            else:
                world.clock.cycles += self._c_fast_unlock
            mutex.cell.value = 0
            mutex.owner = None
            rt.protocols.on_released(tcb, mutex)
            if rt.world.trace is not None:
                rt.world.emit(
                    "mutex-unlock", thread=tcb.name, mutex=mutex.name
                )
            return OK
        rt.kern.enter()
        if world.clock._watchers:
            world.spend(costs.MUTEX_FAST_UNLOCK, fire=False)
        else:
            world.clock.cycles += self._c_fast_unlock
        self.unlock_locked(tcb, mutex)
        rt.kern.leave()
        return OK

    def unlock_locked(self, tcb: Tcb, mutex: Mutex) -> None:
        """Release ``mutex`` with the kernel flag held.

        Also used internally by condition variables (atomic
        unlock-and-wait).
        """
        rt = self.rt
        if rt.world.trace is not None:
            rt.world.emit("mutex-unlock", thread=tcb.name, mutex=mutex.name)
        rt.protocols.on_released(tcb, mutex)
        heir = mutex.waiters.pop_highest()
        if heir is None:
            mutex.cell.value = 0
            mutex.owner = None
            return
        # Hand the mutex directly to the highest-priority waiter: the
        # cell stays set, ownership transfers.
        rt.world.spend(costs.MUTEX_TRANSFER, fire=False)
        self.handoffs += 1
        mutex.handoffs += 1
        mutex.owner = heir
        mutex.acquisitions += 1
        rt.protocols.on_acquired(heir, mutex)
        result = OK
        if heir.wait is not None:
            result = heir.wait.data.get("result", OK)
            heir.wait.deliver(result)
        rt.sched.make_ready(heir)
        if rt.world.trace is not None:
            rt.world.emit("mutex-transfer", mutex=mutex.name, to=heir.name)

    def grant_to_waker(self, tcb: Tcb, mutex: Mutex, result: int) -> bool:
        """Try to hand ``mutex`` to ``tcb`` (a condvar waker path).

        With the kernel flag held: if the mutex is free, ``tcb``
        acquires it and becomes ready (its blocked call returns
        ``result``); otherwise ``tcb`` joins the waiter queue and will
        get ``result`` when the mutex is handed over.  Returns True if
        acquired immediately.
        """
        rt = self.rt
        from repro.core.tcb import WaitRecord

        if not mutex.locked:
            mutex.cell.value = 0xFF
            mutex.owner = tcb
            mutex.acquisitions += 1
            rt.protocols.on_acquired(tcb, mutex)
            if tcb.wait is not None:
                tcb.wait.deliver(result)
            rt.sched.make_ready(tcb)
            return True
        record = WaitRecord(
            kind="mutex",
            obj=mutex,
            frame=tcb.wait.frame if tcb.wait else tcb.frames.top,
            since=rt.world.now,
            interruptible=False,
            teardown=lambda: mutex.waiters.remove(tcb),
            data={"result": result},
        )
        tcb.wait = record
        mutex.waiters.add(tcb)
        # Count the blocked reacquisition on both the mutex and the
        # run-wide total, exactly as the ordinary slow path does; the
        # hand-over it eventually receives is counted by unlock_locked.
        mutex.contentions += 1
        self.contentions += 1
        rt.protocols.on_contention(tcb, mutex)
        return False

    # -- ceilings ---------------------------------------------------------------------

    def lib_mutex_setprioceiling(
        self, tcb: Tcb, mutex: Mutex, ceiling: int
    ) -> tuple:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        try:
            cfg.check_priority(ceiling)
        except ValueError:
            return (EINVAL, mutex.prioceiling)
        if mutex.locked:
            return (EBUSY, mutex.prioceiling)
        old = mutex.prioceiling
        mutex.prioceiling = ceiling
        return (OK, old)

    def lib_mutex_getprioceiling(self, tcb: Tcb, mutex: Mutex) -> int:
        del tcb
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        return mutex.prioceiling
