"""Counting semaphores, built on mutexes and condition variables.

The paper: "Other synchronization methods such as counting semaphores
can be easily implemented on top of these primitives [17]" -- and Table
2 times exactly that construction ("semaphore synchronization refers to
one Dijkstra P operation plus one V operation").  Accordingly the P/V
bodies here are *library-level generator routines* composed from the
mutex and condvar entry points, not new primitives.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.attr import CondAttr, MutexAttr
from repro.core.errors import EAGAIN, EBUSY, EINVAL, OK
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs

_sem_ids = itertools.count(1)


class Semaphore:
    """A counting semaphore: a count guarded by a mutex + condvar."""

    def __init__(self, runtime, value: int = 0, name: Optional[str] = None):
        if value < 0:
            raise ValueError("semaphore value must be >= 0: %r" % value)
        self.sid = next(_sem_ids)
        self.name = name or "sem-%d" % self.sid
        self.count = value
        self.mutex = runtime.mutex_ops.lib_mutex_init(
            None, MutexAttr(name="%s.mutex" % self.name)
        )
        self.cond = runtime.cond_ops.lib_cond_init(
            None, CondAttr(name="%s.cond" % self.name)
        )
        self.waits = 0
        self.posts = 0

    def __repr__(self) -> str:
        return "Semaphore(%s, count=%d)" % (self.name, self.count)


class SemOps(LibraryOps):
    """Semaphore creation and the non-blocking queries.

    The blocking P operation is the generator
    :func:`sem_wait_body`, composed from mutex/cond calls exactly as
    the paper's library does; the facade exposes it as ``pt.sem_wait``.
    """

    ENTRIES = {
        "sem_init": "lib_sem_init",
        "sem_destroy": "lib_sem_destroy",
        "sem_trywait": "lib_sem_trywait",
        "sem_getvalue": "lib_sem_getvalue",
    }

    def lib_sem_init(
        self, tcb: Tcb, value: int = 0, name: Optional[str] = None
    ) -> Semaphore:
        del tcb
        self.rt.world.spend(costs.SEM_OVERHEAD, fire=False)
        sem = Semaphore(self.rt, value=value, name=name)
        check = self.rt.check
        if check is not None:
            check.register_sem(sem)
        return sem

    def lib_sem_destroy(self, tcb: Tcb, sem: Semaphore) -> int:
        """Destroy both components, or neither.

        Validating before mutating matters: destroying the condvar
        first and then failing the mutex destroy (EBUSY) would leave
        the semaphore half-destroyed and permanently unusable.
        """
        rt = self.rt
        rt.world.spend(costs.ATTR_OP, fire=False)
        if sem.cond.destroyed or sem.mutex.destroyed:
            return EINVAL
        if sem.cond.waiters or sem.mutex.locked or sem.mutex.waiters:
            return EBUSY
        # Both destroys are now guaranteed to succeed.
        err = rt.cond_ops.lib_cond_destroy(tcb, sem.cond)
        assert err == OK
        err = rt.mutex_ops.lib_mutex_destroy(tcb, sem.mutex)
        assert err == OK
        return OK

    def lib_sem_trywait(self, tcb: Tcb, sem: Semaphore) -> int:
        """Non-blocking P: EAGAIN when the count is zero."""
        rt = self.rt
        err = rt.mutex_ops.lib_mutex_lock(tcb, sem.mutex)
        if err != OK:
            return err
        rt.world.spend(costs.SEM_OVERHEAD, fire=False)
        if sem.count > 0:
            sem.count -= 1
            result = OK
        else:
            result = EAGAIN
        rt.mutex_ops.lib_mutex_unlock(tcb, sem.mutex)
        return result

    def lib_sem_getvalue(self, tcb: Tcb, sem: Semaphore) -> int:
        del tcb
        self.rt.world.spend(costs.INSN, times=2, fire=False)
        return sem.count


def _unlock_cleanup(pt, mutex):
    """Cleanup handler: release a mutex held across a cancellable wait
    (the standard libc pattern -- cancellation inside the cond wait
    reacquires the mutex, and this hands it back)."""
    yield pt.mutex_unlock(mutex)


def sem_wait_body(pt, sem: Semaphore):
    """Dijkstra P, composed from the primitives (paper ref [17]).

    A cancellation point: cancellation while blocked leaves the
    semaphore consistent (count untouched, mutex released by the
    cleanup handler).
    """
    yield pt.charge(costs.SEM_OVERHEAD)
    err = yield pt.mutex_lock(sem.mutex)
    if err != OK:
        return err
    yield pt.cleanup_push(_unlock_cleanup, sem.mutex)
    sem.waits += 1
    while sem.count == 0:
        # The wait can return spuriously or with EINTR (a handler
        # interrupted it; the wrapper reacquired the mutex).  Either
        # way the predicate is re-evaluated, as POSIX demands.
        yield pt.cond_wait(sem.cond, sem.mutex)
    sem.count -= 1
    yield pt.cleanup_pop(False)
    yield pt.mutex_unlock(sem.mutex)
    return OK


def sem_post_body(pt, sem: Semaphore):
    """Dijkstra V, composed from the primitives."""
    yield pt.charge(costs.SEM_OVERHEAD)
    err = yield pt.mutex_lock(sem.mutex)
    if err != OK:
        return err
    sem.posts += 1
    sem.count += 1
    yield pt.cond_signal(sem.cond)
    yield pt.mutex_unlock(sem.mutex)
    return OK
