"""Library-wide constants and tunables.

Priorities follow the draft's convention: larger number = more urgent.
The scheduling policy names cover POSIX (`SCHED_FIFO`, `SCHED_RR`,
`SCHED_OTHER`) plus the paper's three *perverted* debugging policies.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Priority range (inclusive).
PTHREAD_MIN_PRIORITY = 0
PTHREAD_MAX_PRIORITY = 127

#: Default priority of threads created with default attributes.
PTHREAD_DEFAULT_PRIORITY = 64

# Scheduling policies.
SCHED_FIFO = "fifo"
SCHED_RR = "rr"
SCHED_OTHER = "other"  # alias of FIFO in this implementation
# Perverted debugging policies (paper, "Perverted Scheduling").
SCHED_MUTEX_SWITCH = "mutex-switch"
SCHED_RR_ORDERED = "rr-ordered-switch"
SCHED_RANDOM = "random-switch"

ALL_POLICIES = frozenset(
    {
        SCHED_FIFO,
        SCHED_RR,
        SCHED_OTHER,
        SCHED_MUTEX_SWITCH,
        SCHED_RR_ORDERED,
        SCHED_RANDOM,
    }
)

# Mutex protocols (attribute values).
PRIO_NONE = "none"
PRIO_INHERIT = "inherit"
PRIO_PROTECT = "protect"  # priority ceiling, implemented via SRP

ALL_PROTOCOLS = frozenset({PRIO_NONE, PRIO_INHERIT, PRIO_PROTECT})

# Cancellation (draft-6 "interruptibility") constants.
PTHREAD_INTR_ENABLE = "enable"
PTHREAD_INTR_DISABLE = "disable"
PTHREAD_INTR_CONTROLLED = "controlled"
PTHREAD_INTR_ASYNCHRONOUS = "asynchronous"

#: The value a cancelled thread's exit status carries.
PTHREAD_CANCELED = object()

#: Detach state attribute values.
PTHREAD_CREATE_JOINABLE = "joinable"
PTHREAD_CREATE_DETACHED = "detached"

#: Default thread stack size in bytes.
DEFAULT_STACK_SIZE = 64 * 1024

#: Maximum number of thread-specific-data keys.
PTHREAD_KEYS_MAX = 128

#: Iterations of destructor passes at thread exit (POSIX allows a cap).
PTHREAD_DESTRUCTOR_ITERATIONS = 4


@dataclass
class RuntimeConfig:
    """Tunables for one :class:`~repro.core.runtime.PthreadsRuntime`.

    Attributes
    ----------
    pool_size:
        Pre-cached TCB/stack pairs (0 disables the pool; the ablation
        benchmark uses this to reproduce the paper's "allocation is
        ~70 % of creation time" claim).
    timeslice_us:
        Round-robin quantum in microseconds for ``SCHED_RR`` threads
        (None disables the slicer entirely).
    unboost_placement:
        Where a thread goes in its priority queue when a protocol boost
        is removed: ``"head"`` (the paper's recommendation -- the thread
        is not penalised for a boost it did not choose) or ``"tail"``
        (strict requeue).
    default_stack_size:
        Stack size for threads whose attributes don't specify one.
    mixed_protocol_unlock:
        How unlocking behaves when inheritance and ceiling mutexes are
        nested (the paper's Table 4 discussion): ``"linear-search"``
        recomputes from all held mutexes (safe, avoids unbounded
        inversion) or ``"stack"`` (pure SRP pop -- exhibits the paper's
        step-4 divergence, kept for the Table 4 reproduction).
    check_ceilings:
        Refuse (EINVAL) locking a ceiling mutex from a thread whose
        priority exceeds the ceiling, per the paper's recommendation.
    segments:
        Enable the executor's segment compiler (see
        :mod:`repro.sim.segments`).  Purely a host-speed feature --
        simulated behaviour is bit-identical either way, which the
        property tests assert.  The ``REPRO_SEGMENTS=0`` environment
        variable force-disables it regardless of this flag.
    """

    pool_size: int = 32
    timeslice_us: float = 20_000.0
    unboost_placement: str = "head"
    default_stack_size: int = DEFAULT_STACK_SIZE
    mixed_protocol_unlock: str = "linear-search"
    check_ceilings: bool = True
    segments: bool = True

    def __post_init__(self) -> None:
        if self.pool_size < 0:
            raise ValueError("pool_size must be >= 0")
        if self.timeslice_us is not None and self.timeslice_us < 500.0:
            # A quantum smaller than the slice-handling cost livelocks:
            # the timer is permanently overdue and no thread progresses
            # (the same thrash a real machine would exhibit).
            raise ValueError(
                "timeslice_us must be >= 500 microseconds or None, got %r"
                % (self.timeslice_us,)
            )
        if self.unboost_placement not in ("head", "tail"):
            raise ValueError(
                "unboost_placement must be 'head' or 'tail', got %r"
                % (self.unboost_placement,)
            )
        if self.mixed_protocol_unlock not in ("linear-search", "stack"):
            raise ValueError(
                "mixed_protocol_unlock must be 'linear-search' or 'stack', "
                "got %r" % (self.mixed_protocol_unlock,)
            )


def check_priority(priority: int) -> int:
    """Validate a priority; returns it or raises ValueError."""
    if not PTHREAD_MIN_PRIORITY <= priority <= PTHREAD_MAX_PRIORITY:
        raise ValueError(
            "priority %r outside [%d, %d]"
            % (priority, PTHREAD_MIN_PRIORITY, PTHREAD_MAX_PRIORITY)
        )
    return priority
