"""The per-process file-descriptor table.

UNIX routes ``read``/``write`` by descriptor; the library used to route
by a ``device="disk0"`` keyword instead, which cannot name a socket.
:class:`FdTable` restores the UNIX shape: small integers mapping to
whatever object services the descriptor (an
:class:`~repro.unix.io.IoDevice` or a :class:`~repro.unix.net.Socket`).

Descriptors 0-2 are reserved for the stdio trio, as on a real process.
The table is pure bookkeeping: constructing it and resolving an fd
charge no cycles, so a runtime that never installs an entry behaves
bit-identically to one built before this table existed (the legacy
``device=`` keyword keeps working as a fallback in
:meth:`repro.core.iolib.IoOps._io`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: First descriptor handed out (0-2 belong to stdin/stdout/stderr).
FIRST_FD = 3


class FdTable:
    """fd -> servicing object (device or socket) for one process."""

    def __init__(self) -> None:
        self._entries: Dict[int, Any] = {}
        self._next_fd = FIRST_FD
        self.opened = 0
        self.closed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries

    def alloc(self, obj: Any) -> int:
        """Install ``obj`` under the lowest unused descriptor."""
        fd = self._next_fd
        while fd in self._entries:
            fd += 1
        self._entries[fd] = obj
        self._next_fd = fd + 1
        self.opened += 1
        return fd

    def get(self, fd: int) -> Optional[Any]:
        """The object servicing ``fd`` (None when unmapped)."""
        return self._entries.get(fd)

    def close(self, fd: int) -> Optional[Any]:
        """Unmap ``fd``; returns the evicted object (None if unmapped).

        Freed descriptors are reused lowest-first, the POSIX rule
        (``open`` returns the lowest available descriptor).
        """
        obj = self._entries.pop(fd, None)
        if obj is not None:
            self.closed += 1
            if fd < self._next_fd:
                self._next_fd = fd if fd >= FIRST_FD else FIRST_FD
        return obj

    def fds(self):
        """Live descriptors (ascending)."""
        return sorted(self._entries)

    def __repr__(self) -> str:
        return "FdTable(open=%d)" % len(self._entries)
