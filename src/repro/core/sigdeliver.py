"""The signal delivery model.

Implements the paper's two rule lists verbatim:

Recipient resolution (highest precedence first):

1. directed at a thread -> that thread;
2. synchronous -> the thread which caused it;
3. timer expiration -> the thread which armed the timer (the library
   timer queue and the time-slicer are special armers);
4. I/O completion -> the thread which requested the I/O;
5. any thread with the signal unmasked (linear search, sigwait counts
   as unmasked);
6. otherwise pend on the process until a thread becomes eligible.

Action selection for the chosen thread (highest precedence first):

1. thread masked the signal -> pend on the thread;
2. alarm from a timer -> ready the suspended armer, or requeue the
   running thread if the expiry was a time slice;
3. thread suspended in sigwait -> ready it, re-mask the waited set;
4. a handler is registered -> install a fake call, apply the
   sigaction mask, ready the thread;
5. the cancellation signal -> cancellation processing (Table 1);
6. action is ignore -> discard;
7. default action -> performed on the *process*.

All entry points here run with the kernel flag held.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.errors import EINTR, OK
from repro.core.tcb import Tcb
from repro.hw import costs
from repro.unix.sigset import SIG_DFL, SIG_IGN, SIGALRM, SIGCANCEL, SIGIO
from repro.unix.signals import SigCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


class SignalDelivery:
    """Recipient resolution and action selection."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self.rt = runtime
        # Watcher-free fast-path charges (see LibKernel.__init__).
        table = runtime.world._costs
        self._c_recipient = table[costs.SIG_RECIPIENT_RULES]
        self._c_action = table[costs.SIG_ACTION_RULES]
        self.delivered_to_threads = 0
        self.pended_on_process = 0
        self._rechecking = False

    # -- recipient resolution -------------------------------------------------------

    def direct_signal(self, sig: int, cause: SigCause) -> None:
        """Entry from the universal handler / deferred-signal drain."""
        rt = self.rt
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.SIG_RECIPIENT_RULES, fire=False)
        else:
            world.clock.cycles += self._c_recipient

        # Timer expirations have library-internal armers to unpack
        # before the generic rules.
        if cause.kind == "timer":
            if cause.data == "timeslice":
                self._handle_timeslice()
                return
            if cause.data == "libtimer":
                rt.timer_ops.on_alarm()
                return

        recipient = self._find_recipient(sig, cause)
        if recipient is None:
            # Rule 6: no eligible thread; pend on the process.
            self.pended_on_process += 1
            rt.process_pending.append((sig, cause))
            if world.trace is not None:
                world.emit("signal-process-pend", sig=sig)
            return
        self.deliver_to_thread(recipient, sig, cause)

    def _find_recipient(self, sig: int, cause: SigCause) -> Optional[Tcb]:
        rt = self.rt
        # Rules 1-4: the cause names the thread.
        if cause.kind in ("directed", "cancel", "synchronous", "timer", "io"):
            target = cause.thread
            if isinstance(target, Tcb) and target.alive:
                return target
            if cause.kind == "synchronous" and rt.current is not None:
                return rt.current
            return None
        # Rule 5: linear search for a thread with the signal unmasked.
        # (sigwait is "just another case where the signal is unmasked".)
        for tcb in rt.all_threads():
            rt.world.spend(costs.INSN, fire=False)
            if not tcb.alive:
                continue
            if self._eligible(tcb, sig):
                return tcb
        return None

    def _eligible(self, tcb: Tcb, sig: int) -> bool:
        from repro.core.tcb import ThreadState

        if tcb.state is ThreadState.EMBRYO:
            return False  # lazy threads receive signals only once active
        if tcb.wait is not None and tcb.wait.kind == "sigwait":
            if sig in tcb.wait.data["set"]:
                return True
        return sig not in tcb.sigmask

    def _handle_timeslice(self) -> None:
        """Action rule 2, second half: requeue the running thread."""
        rt = self.rt
        current = rt.current
        if current is None:
            return
        from repro.core import config as cfg

        if current.policy != cfg.SCHED_RR:
            return
        rt.world.spend(costs.TIMER_TICK, fire=False)
        rt.world.emit("timeslice", thread=current.name)
        rt.sched.slice_current()

    # -- action selection ----------------------------------------------------------------

    def deliver_to_thread(self, tcb: Tcb, sig: int, cause: SigCause) -> None:
        rt = self.rt
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.SIG_ACTION_RULES, fire=False)
        else:
            world.clock.cycles += self._c_action
        self.delivered_to_threads += 1
        if world.trace is not None:
            world.emit("signal-thread", thread=tcb.name, sig=sig)

        # I/O completion wake (delivery-model rule 4's action).
        if cause.kind == "io" and self._wake_io(tcb, cause):
            return

        # Rule 3 (checked before the mask: the sigwait set is
        # effectively unmasked while the thread waits in sigwait).
        if (
            tcb.wait is not None
            and tcb.wait.kind == "sigwait"
            and sig in tcb.wait.data["set"]
        ):
            self._wake_sigwait(tcb, sig)
            return

        # Rule 1: masked -> pend on the thread.
        if sig in tcb.sigmask:
            tcb.pending.post(sig, cause)
            if rt.world.trace is not None:
                rt.world.emit("signal-thread-pend", thread=tcb.name, sig=sig)
            return

        # Rule 2: a plain alarm readies its suspended armer.
        if sig == SIGALRM and cause.kind == "timer":
            if tcb.wait is not None and tcb.wait.kind == "delay":
                tcb.wait.deliver(OK)
                rt.sched.make_ready(tcb)
            return

        # Rule 4: a registered user handler -> fake call.
        action = rt.user_actions.get(sig)
        if action is not None and action.handler not in (SIG_DFL, SIG_IGN):
            rt.fakecalls.install(tcb, sig, cause, action)
            return
        if action is not None and action.handler == SIG_IGN:
            return  # rule 6

        # Rule 5: cancellation.
        if sig == SIGCANCEL:
            rt.cancel_ops.on_cancel_signal(tcb)
            return

        # Rule 6/7: no user action installed.
        if sig == SIGIO or sig == SIGALRM:
            return  # completions/expirations with no sleeper: discard
        rt.process_default_action(sig)

    def _wake_io(self, tcb: Tcb, cause: SigCause) -> bool:
        wait = tcb.wait
        if wait is None or wait.kind != "io":
            return False
        request = cause.data
        if wait.data.get("request") is not request:
            return False
        wait.deliver((OK, request.result))
        self.rt.sched.make_ready(tcb)
        return True

    def _wake_sigwait(self, tcb: Tcb, sig: int) -> None:
        """Action rule 3: ready the sigwait-er, re-mask the set."""
        rt = self.rt
        wait = tcb.wait
        waited = wait.data["set"]
        tcb.sigmask = tcb.sigmask | waited  # re-masked on return
        wait.deliver((OK, sig))
        rt.sched.make_ready(tcb)

    # -- rechecks ------------------------------------------------------------------------

    def recheck_thread(self, tcb: Tcb) -> None:
        """A thread's mask dropped: deliver newly eligible pendings."""
        if self._rechecking:
            return
        self._rechecking = True
        try:
            while True:
                item = tcb.pending.take_any_unmasked(tcb.sigmask)
                if item is None:
                    break
                sig, cause = item
                self.deliver_to_thread(tcb, sig, cause)
            self.recheck_process_pending()
        finally:
            self._rechecking = False

    def recheck_process_pending(self) -> None:
        """Rule 6 drain: some thread may now take a process-pended
        signal (mask change, new sigwait, thread creation)."""
        rt = self.rt
        if not rt.process_pending:
            return
        remaining = []
        for sig, cause in rt.process_pending:
            recipient = self._find_recipient(sig, cause)
            if recipient is None:
                remaining.append((sig, cause))
            else:
                self.deliver_to_thread(recipient, sig, cause)
        rt.process_pending = remaining

    def on_thread_runnable(self, tcb: Tcb) -> None:
        """A thread left an uninterruptible wait: pendings that were
        parked during the wait get their fake calls installed now,
        before the thread resumes user code."""
        if tcb.exiting or not tcb.pending or self._rechecking:
            return
        self._rechecking = True
        try:
            while True:
                item = tcb.pending.take_any_unmasked(tcb.sigmask)
                if item is None:
                    return
                sig, cause = item
                self.deliver_to_thread(tcb, sig, cause)
        finally:
            self._rechecking = False


# Re-export for the wrapper's convenience.
__all__ = ["SignalDelivery", "EINTR"]
