"""The Pthreads runtime: executor loop, universal handler, host process.

One :class:`PthreadsRuntime` is one UNIX process running the Pthreads
library.  It owns the library kernel (monolithic monitor), the
scheduler and dispatcher, the thread table, and the executor that runs
thread programs op by op against the virtual clock.

The control-flow trick that makes a pure-Python reproduction possible:
thread bodies are generators, so "context switching" is just choosing
which generator the executor resumes next.  All library code runs as
plain Python inside the executor's call, charging virtual time; when a
library call blocks the calling thread, it parks a wait record and
returns the :data:`~repro.core.libbase.BLOCKED` sentinel, and the
Python stack unwinds naturally back to the executor loop, which then
resumes whatever thread the dispatcher chose.
"""

from __future__ import annotations

import os
from types import GeneratorType
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core import config as cfg
from repro.core.attr import ThreadAttr
from repro.core.dispatcher import Dispatcher
from repro.core.errors import PthreadsInternalError
from repro.core.fdtable import FdTable
from repro.core.kernel import LibKernel
from repro.core.libbase import BLOCKED
from repro.core.pool import ThreadPool
from repro.core.scheduler import Scheduler
from repro.core.tcb import Tcb, ThreadState, WaitRecord
from repro.sim.frames import Frame, ProgramCrash, SimException
from repro.sim.ops import Invoke, LibCall, SysCall, Work
from repro.sim.segments import _BLACKLISTED as _SEG_BLACKLISTED
from repro.sim.world import DeadlockError, World
from repro.unix.io import IoDevice
from repro.unix.kernel import UnixKernel
from repro.unix.net import NetStack
from repro.unix.signals import (
    InterruptFrame,
    ProcessSignals,
    SigAction,
    SigCause,
)
from repro.unix.sigset import NSIG, SIGCANCEL, UNMASKABLE, SigSet
from repro.unix.timers import IntervalTimer


class HostProcess:
    """The UNIX process hosting the Pthreads library."""

    def __init__(self, kernel: UnixKernel, name: str = "pthreads-proc") -> None:
        self.name = name
        self.signals = ProcessSignals()
        self.interrupt_frames: List[InterruptFrame] = []
        # Signals posted to this process deliver immediately: from the
        # UNIX kernel's viewpoint it is always the running process.
        self.auto_deliver = True
        self.pid = kernel.register(self)


class PthreadsRuntime:
    """One process's Pthreads library instance plus its executor."""

    def __init__(
        self,
        model: Union[str, object] = "sparc-ipx",
        seed: int = 0,
        config: Optional[cfg.RuntimeConfig] = None,
        policy: Optional[object] = None,
        trace: Optional[object] = None,
        world: Optional[World] = None,
        obs: Optional[object] = None,
        check: Optional[object] = None,
        ncpus: int = 1,
    ) -> None:
        self.config = config or cfg.RuntimeConfig()
        # ncpus > 1 attaches the SMP extension: the library still runs
        # on CPU 0, but asynchronous signals cross from the interrupt
        # CPU via IPI events (see repro.sim.smp).
        self.world = (
            world if world is not None else World(model, seed=seed, ncpus=ncpus)
        )
        if trace is not None:
            trace.attach(self.world.clock)
            self.world.trace = trace
        #: Invariant-checking context (:class:`repro.check.CheckContext`)
        #: or None (the default -- hot paths guard on ``check is None``,
        #: the same pattern as ``obs`` below).  Set before the
        #: subsystems are built so objects they create get registered.
        self.check = check
        if check is not None:
            check.attach(self)
        #: Observability facade (:class:`repro.obs.Observability`) or
        #: None (the default -- hot paths guard on ``obs is None``).
        #: World-level wiring happens *now*, before the subsystems below
        #: spend their first cycle, so cycle attribution covers the
        #: whole run and sums to the final clock exactly.
        self.obs = obs
        if obs is not None:
            obs.attach_world(self.world)
        self.unix = UnixKernel(self.world)
        self.proc = HostProcess(self.unix)
        self.heap = self.unix.make_heap(self.proc)
        self.kern = LibKernel(self)
        self.sched = Scheduler(self)
        self.dispatcher = Dispatcher(self)
        self.policy = policy  # perverted/debug scheduling policy or None
        self.pool = ThreadPool(
            self.world,
            self.heap,
            size=self.config.pool_size,
            stack_size=self.config.default_stack_size,
        )

        #: The simulated UNIX global errno (switched by the dispatcher).
        self.unix_errno = 0
        self.current: Optional[Tcb] = None
        #: The thread whose register windows physically occupy the CPU
        #: (stays set across idle periods; flushed on the next switch).
        self.on_cpu: Optional[Tcb] = None
        self.threads: Dict[int, Tcb] = {}
        #: Insertion-ordered set of live (non-terminated, non-reclaimed)
        #: threads.  ``self.threads`` keeps every thread ever created,
        #: so scans over it grow without bound under create/join churn;
        #: the executor's idle path only ever walks this index.
        self._live: Dict[Tcb, None] = {}
        #: name -> first live thread registered under that name (a pure
        #: cache for :meth:`find_thread`; misses fall back to a scan).
        self._by_name: Dict[str, Tcb] = {}
        self._next_tid = 1
        #: Process-wide user signal actions (signal actions are shared
        #: by all threads; only masks are per-thread).
        self.user_actions: Dict[int, Any] = {}
        #: Signals no thread could take yet (delivery-model rule 6).
        self.process_pending: List[Any] = []
        self.terminated_by: Optional[int] = None  # default-action signal
        self.steps = 0

        # Subsystems (registered entry points).
        self.registry: Dict[str, Callable] = {}
        self._build_subsystems()

        # The PT facade is stateless apart from the runtime reference;
        # one shared instance serves every frame (push_frame would
        # otherwise allocate one per simulated call).
        from repro.core.api import PT

        self._pt = PT(self)

        # Segment compiler (see repro.sim.segments): replays recorded
        # straight-line op runs.  Dynamic preconditions (clock
        # watchers, choice sources, traces, policies) are re-checked on
        # every step, so the cache is constructed unconditionally
        # unless configured off.
        self._max_steps: Optional[int] = None
        self._until_cycles: Optional[int] = None
        if self.config.segments and os.environ.get("REPRO_SEGMENTS") != "0":
            from repro.sim.segments import SegmentSpace

            self._segments: Optional[SegmentSpace] = SegmentSpace(self)
        else:
            self._segments = None

        # Devices, descriptors, networking, and timers.
        self.io_devices: Dict[str, IoDevice] = {}
        #: The per-process descriptor table (fd -> device/socket).
        #: Construction and resolution are free, so runtimes that
        #: never install an entry behave exactly as before it existed.
        self.fds = FdTable()
        #: The simulated socket layer, or None until
        #: :meth:`add_net_stack` attaches one.
        self.net: Optional[NetStack] = None
        self._install_universal_handler()
        self.timer = IntervalTimer(self.world, self.unix, self.proc)
        self._slicer: Optional[IntervalTimer] = None
        if self.config.timeslice_us is not None:
            self._start_slicer()
        if obs is not None:
            obs.attach(self)

    # -- construction helpers ----------------------------------------------------

    def _build_subsystems(self) -> None:
        # Imported here to keep module import order acyclic.
        from repro.core.barrier import BarrierOps
        from repro.core.cancel import CancelOps
        from repro.core.cleanup import CleanupOps
        from repro.core.cond import CondOps
        from repro.core.fakecall import FakeCalls
        from repro.core.iolib import IoOps
        from repro.core.jmp import JmpOps
        from repro.core.netlib import NetOps
        from repro.core.mutex import MutexOps
        from repro.core.once import OnceOps
        from repro.core.protocols import ProtocolManager
        from repro.core.rwlock import RwLockOps
        from repro.core.stdio import StdioOps
        from repro.core.semaphore import SemOps
        from repro.core.sigdeliver import SignalDelivery
        from repro.core.signals import SignalOps
        from repro.core.threads import ThreadOps
        from repro.core.timerq import TimerOps
        from repro.core.tsd import TsdOps

        self.fakecalls = FakeCalls(self)
        self.sigdeliver = SignalDelivery(self)
        self.protocols = ProtocolManager(self)
        self.thread_ops = ThreadOps(self)
        self.mutex_ops = MutexOps(self)
        self.cond_ops = CondOps(self)
        self.sem_ops = SemOps(self)
        self.signal_ops = SignalOps(self)
        self.cancel_ops = CancelOps(self)
        self.cleanup_ops = CleanupOps(self)
        self.tsd_ops = TsdOps(self)
        self.once_ops = OnceOps(self)
        self.jmp_ops = JmpOps(self)
        self.timer_ops = TimerOps(self)
        self.io_ops = IoOps(self)
        self.net_ops = NetOps(self)
        self.rwlock_ops = RwLockOps(self)
        self.barrier_ops = BarrierOps(self)
        self.stdio_ops = StdioOps(self)
        for ops in (
            self.thread_ops,
            self.mutex_ops,
            self.cond_ops,
            self.sem_ops,
            self.signal_ops,
            self.cancel_ops,
            self.cleanup_ops,
            self.tsd_ops,
            self.once_ops,
            self.jmp_ops,
            self.timer_ops,
            self.io_ops,
            self.net_ops,
            self.rwlock_ops,
            self.barrier_ops,
            self.stdio_ops,
        ):
            ops.register(self.registry)

    def _install_universal_handler(self) -> None:
        """Install the universal handler for every maskable UNIX signal
        (library initialisation, as in the paper)."""
        action = SigAction(
            handler=self._universal_handler, manual_return=True
        )
        for sig in range(1, NSIG):
            if sig in UNMASKABLE or sig == SIGCANCEL:
                continue
            self.unix.sigaction(self.proc, sig, action)

    def _start_slicer(self) -> None:
        from repro.unix.sigset import SIGVTALRM

        quantum = self.world.cycles_for_us(self.config.timeslice_us)
        self._slicer = IntervalTimer(
            self.world, self.unix, self.proc, which=1, sig=SIGVTALRM
        )
        self._slicer.arm(
            quantum, interval_cycles=quantum, tag="timeslice"
        )

    # -- thread table ---------------------------------------------------------------

    def new_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def register_thread(self, tcb: Tcb) -> None:
        """Enter a freshly created thread into the table and indexes."""
        self.threads[tcb.tid] = tcb
        self._live[tcb] = None
        self._by_name.setdefault(tcb.name, tcb)

    def thread_unlisted(self, tcb: Tcb) -> None:
        """Drop a thread from the live indexes (terminated or reclaimed)."""
        self._live.pop(tcb, None)
        if self._by_name.get(tcb.name) is tcb:
            del self._by_name[tcb.name]

    def all_threads(self) -> List[Tcb]:
        return [t for t in self.threads.values() if not t.reclaimed]

    def live_threads(self) -> List[Tcb]:
        # Terminated-but-joinable threads stay in ``threads`` (their
        # exit value is still claimable) but leave the live index.
        return [t for t in self._live if t.alive]

    def find_thread(self, name: str) -> Optional[Tcb]:
        cached = self._by_name.get(name)
        if cached is not None and not cached.reclaimed:
            return cached
        for tcb in self.all_threads():
            if tcb.name == name:
                self._by_name[name] = tcb
                return tcb
        return None

    # -- snapshot integrity -------------------------------------------------

    def state_digest(self) -> str:
        """A stable hash of the runtime's observable state.

        Combines the world digest with the executor's own bookkeeping
        and a per-thread summary.  Used by :mod:`repro.fleet` to verify
        that resuming a forked prefix snapshot lands in exactly the
        state a replay-from-scratch reaches at the same choice point.
        """
        import hashlib

        threads = sorted(
            "%d:%s:%s:%d:%s:%d:%d:%d"
            % (
                tcb.tid,
                tcb.name,
                tcb.state.value,
                len(tcb.frames),
                tcb.wait.kind if tcb.wait is not None else "-",
                tcb.errno,
                tcb.cpu_cycles,
                tcb.context_switches_in,
            )
            for tcb in self.threads.values()
            if not tcb.reclaimed
        )
        parts = [
            self.world.state_digest(),
            str(self.steps),
            str(self.unix_errno),
            str(self.terminated_by),
            self.current.name if self.current is not None else "-",
        ]
        parts.extend(threads)
        return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()

    # -- starting programs -------------------------------------------------------------

    def main(
        self,
        fn: Callable,
        *args: Any,
        name: str = "main",
        priority: int = cfg.PTHREAD_DEFAULT_PRIORITY,
        policy: str = cfg.SCHED_FIFO,
    ) -> Tcb:
        """Create the initial thread running ``fn(pt, *args)``."""
        attr = ThreadAttr(priority=priority, policy=policy, name=name)
        return self.thread_ops.create_thread(fn, args, attr, creator=None)

    def add_io_device(
        self,
        name: str = "disk0",
        first_class: bool = False,
        **kwargs: Any,
    ) -> IoDevice:
        """Attach a device.  ``first_class=True`` routes completions
        through the Marsh & Scott kernel/user channel (the paper's
        Open Problems proposal) instead of SIGIO demultiplexing."""
        channel = None
        if first_class:
            channel = self._ensure_first_class()
        device = IoDevice(
            self.world, self.unix, self.proc, name=name,
            channel=channel, **kwargs,
        )
        self.io_devices[name] = device
        return device

    def add_net_stack(
        self, first_class: bool = False, **kwargs: Any
    ) -> NetStack:
        """Attach the simulated socket layer (idle until used).

        ``first_class=True`` routes completions through the Marsh &
        Scott kernel/user channel instead of SIGIO demultiplexing --
        the same switch :meth:`add_io_device` offers for disks.
        Construction spends no cycles: a runtime with networking
        attached but idle is bit-identical to one without it.
        """
        channel = None
        if first_class:
            channel = self._ensure_first_class()
        self.net = NetStack(
            self.world, self.unix, self.proc, channel=channel, **kwargs
        )
        return self.net

    def _ensure_first_class(self):
        from repro.unix.firstclass import FirstClassInterface

        if getattr(self, "first_class", None) is None:
            self.first_class = FirstClassInterface(self.world, self.unix)
            self.first_class.register_scheduler(self.io_ops.fc_upcall)
        return self.first_class

    # -- blocking helper (used by every subsystem) ------------------------------------------

    def block_current(
        self,
        kind: str,
        obj: Any = None,
        teardown: Optional[Callable[[], None]] = None,
        interruptible: bool = True,
        **data: Any,
    ) -> WaitRecord:
        """Park the current thread; must run with the kernel flag set.

        The caller's library-call frame receives its result later via
        ``record.deliver(value)``.  Returns the wait record.
        """
        tcb = self.current
        if tcb is None:
            raise PthreadsInternalError("block_current with no current thread")
        world = self.world
        record = WaitRecord(
            kind=kind,
            obj=obj,
            frame=tcb.frames._frames[-1],
            since=world.clock.cycles,
            interruptible=interruptible,
            teardown=teardown,
            data=data,  # already a fresh dict (built from **data)
        )
        tcb.wait = record
        tcb.state = ThreadState.BLOCKED
        self.current = None
        self.kern.dispatcher_flag = True
        if world.trace is not None:
            world.emit("block", thread=tcb.name, wait=kind)
        return record

    # -- the executor ------------------------------------------------------------------

    def run(
        self,
        until_us: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        """Run the world until every thread terminates (or a bound hits).

        Raises :class:`~repro.sim.world.DeadlockError` when live threads
        remain but nothing can ever wake them.
        """
        until_cycles = (
            self.world.cycles_for_us(until_us) if until_us is not None else None
        )
        # Published for the segment cache: replayed batches must stop
        # at exactly the op boundary where the interpreted executor
        # would notice one of these bounds.
        self._until_cycles = until_cycles
        self._max_steps = max_steps
        clock = self.world.clock
        step = self._step_current
        idle_streak = 0
        while self.terminated_by is None:
            if until_cycles is not None and clock.cycles >= until_cycles:
                return
            if max_steps is not None and self.steps >= max_steps:
                return
            if self.current is None:
                if not self._find_work():
                    return
                idle_streak += 1
                if self.current is None and idle_streak > 100_000:
                    # Recurring events (a time slicer, a periodic
                    # timer) keep time moving while every thread stays
                    # blocked forever: a livelocked deadlock.
                    raise DeadlockError(
                        "no thread became runnable across %d idle "
                        "wakeups (all threads blocked; only recurring "
                        "events keep firing)" % idle_streak
                    )
                continue
            idle_streak = 0
            step()

    def _find_work(self) -> bool:
        """Dispatch a ready thread or idle to the next event.

        Returns False when the run is complete (no live threads, or
        only never-activated lazy threads remain).
        """
        if self.sched.ready:
            kern = self.kern
            kern.enter()
            kern.request_dispatch()
            kern.leave()
            return self.current is not None or bool(self.sched.ready)
        blocked_state = ThreadState.BLOCKED
        if any(t.state is blocked_state for t in self._live):
            if self.world.next_event_time() is None:
                blocked = [
                    t for t in self._live if t.state is blocked_state
                ]
                raise DeadlockError(
                    "all threads blocked with no pending events: %s"
                    % ", ".join(
                        "%s(%s)" % (t.name, t.wait.kind if t.wait else "?")
                        for t in blocked
                    )
                )
            self.world.advance_to_next_event()
            return True
        return False  # only terminated / embryonic threads remain

    def _step_current(self) -> None:
        tcb = self.current
        assert tcb is not None
        frame = tcb.frames._frames[-1]
        if frame.remaining_work > 0:
            self.steps += 1
            self._do_work(tcb, frame)
            return
        segments = self._segments
        if segments is not None:
            # Inline blacklist precheck: workloads whose streams never
            # certify (signal/churn shapes) settle into _BLACKLISTED at
            # every location, and this skips the try_step call for
            # them.  Certifiable locations pay two extra dict hits.
            gen = frame.gen
            gi = gen.gi_frame
            if gi is not None:
                table = segments._by_code.get(gen.gi_code)
                if (
                    table is None
                    or table.get(gi.f_lasti) is not _SEG_BLACKLISTED
                ) and segments.try_step(tcb, frame):
                    return  # step(s) performed, bookkeeping included
        self.steps += 1
        clock = self.world.clock
        started = clock.cycles
        # Frame.resume inlined: one generator step per executor step
        # makes the extra call (and tuple) measurable.
        try:
            exc = frame.pending_exc
            if exc is not None:
                frame.pending_exc = None
                op = frame.gen.throw(exc)
            else:
                value = frame.pending_value
                frame.pending_value = None
                op = frame.gen.send(value)
        except StopIteration as stop:
            self._frame_returned(tcb, frame, stop.value)
            tcb.cpu_cycles += clock.cycles - started
            return
        except SimException as sim_exc:
            self._frame_raised(tcb, frame, sim_exc)
            tcb.cpu_cycles += clock.cycles - started
            return
        except ProgramCrash:
            raise
        except BaseException as crash:  # noqa: BLE001 - simulated fault
            raise ProgramCrash(frame.name, crash) from crash
        op_class = op.__class__
        if op_class is Work:
            frame.remaining_work = op.cycles
            self._do_work(tcb, frame)
        elif op_class is LibCall:
            self._libcall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        elif op_class is SysCall:
            self._unix_syscall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        elif op_class is Invoke:
            self._push_invoke(tcb, op)
            tcb.cpu_cycles += clock.cycles - started
        elif isinstance(op, (Work, LibCall, SysCall, Invoke)):
            # Subclassed ops take the generic (slower) dispatch.
            self._step_op_subclass(tcb, frame, op, started)
        else:
            raise ProgramCrash(
                frame.name, TypeError("bad op yielded: %r" % (op,))
            )

    def _dispatch_op(self, tcb: Tcb, frame: Frame, op: Any) -> None:
        """Dispatch an op already obtained from the generator.

        The segment cache lands here when a replayed send yields an op
        no compiled variant covers: the resume already happened, so
        only the dispatch half of :meth:`_step_current` remains.
        """
        self.steps += 1
        clock = self.world.clock
        started = clock.cycles
        op_class = op.__class__
        if op_class is Work:
            frame.remaining_work = op.cycles
            self._do_work(tcb, frame)
        elif op_class is LibCall:
            self._libcall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        elif op_class is SysCall:
            self._unix_syscall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        elif op_class is Invoke:
            self._push_invoke(tcb, op)
            tcb.cpu_cycles += clock.cycles - started
        elif isinstance(op, (Work, LibCall, SysCall, Invoke)):
            self._step_op_subclass(tcb, frame, op, started)
        else:
            raise ProgramCrash(
                frame.name, TypeError("bad op yielded: %r" % (op,))
            )

    def _step_op_subclass(
        self, tcb: Tcb, frame: Frame, op: Any, started: int
    ) -> None:
        clock = self.world.clock
        if isinstance(op, Work):
            frame.remaining_work = op.cycles
            self._do_work(tcb, frame)
        elif isinstance(op, LibCall):
            self._libcall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        elif isinstance(op, SysCall):
            self._unix_syscall(tcb, frame, op)
            tcb.cpu_cycles += clock.cycles - started
        else:
            self._push_invoke(tcb, op)
            tcb.cpu_cycles += clock.cycles - started

    def _do_work(self, tcb: Tcb, frame: Frame) -> None:
        """Burn a compute burst, splitting it at asynchronous events."""
        world = self.world
        events = world.events
        clock = world.clock
        frames = tcb.frames._frames
        while frame.remaining_work > 0:
            if self.current is not tcb or frames[-1] is not frame:
                return  # preempted, or a fake call landed on top
            chunk = frame.remaining_work
            next_event = events.next_time()
            if next_event is not None:
                now = clock.cycles
                if next_event <= now:
                    world.fire_due()
                    continue
                if next_event - now < chunk:
                    chunk = next_event - now
            clock.advance(chunk)
            frame.remaining_work -= chunk
            tcb.cpu_cycles += chunk
            # fire_due's own early-exit gate, checked inline: the
            # common burst ends with no event due.
            horizon = events._horizon
            if horizon is not None and horizon <= clock.cycles:
                world.fire_due()
        if self.current is tcb and frames[-1] is frame:
            frame.pending_value = None

    def _libcall(self, tcb: Tcb, frame: Frame, op: LibCall) -> None:
        entry = self.registry.get(op.name)
        if entry is None:
            raise ProgramCrash(
                frame.name, NameError("unknown library call: %r" % op.name)
            )
        if op.kwargs:
            result = entry(tcb, *op.args, **op.kwargs)
        else:
            result = entry(tcb, *op.args)
        if result is not BLOCKED:
            frame.pending_value = result

    def _unix_syscall(self, tcb: Tcb, frame: Frame, op: SysCall) -> None:
        if op.name == "getpid":
            frame.pending_value = self.unix.getpid(self.proc)
        elif op.name == "sigsetmask":
            frame.pending_value = self.unix.sigsetmask(self.proc, *op.args)
        elif op.name == "sigpending":
            frame.pending_value = self.unix.sigpending(self.proc)
        elif op.name == "raise":
            # A synchronous fault caused by the running thread.
            sig = op.args[0]
            cause = SigCause(kind="synchronous", thread=tcb)
            self.unix.kill(self.proc, sig, cause)
            frame.pending_value = 0
        else:
            raise ProgramCrash(
                frame.name, NameError("unknown syscall: %r" % op.name)
            )

    def _push_invoke(self, tcb: Tcb, op: Invoke) -> None:
        from repro.hw.memory import StackOverflow
        from repro.unix.sigset import SIGSEGV

        # Frames called from a signal wrapper (the user handler and
        # anything it calls) may keep using the redzone/signal stack.
        in_handler = tcb.frames._special > 0
        try:
            self.push_frame(
                tcb,
                op.fn,
                op.args,
                op.kwargs,
                kind="handler-call" if in_handler else "user",
                frame_bytes=op.frame_bytes,
            )
        except StackOverflow:
            # The save/probe faulted: a synchronous SIGSEGV at the call
            # site.  With a user action installed (the Ada runtime maps
            # it to STORAGE_ERROR via the redirect feature) the thread
            # recovers; otherwise the default action kills the process.
            cause = SigCause(kind="synchronous", thread=tcb)
            self.unix.kill(self.proc, SIGSEGV, cause)

    def push_frame(
        self,
        tcb: Tcb,
        fn: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        kind: str = "user",
        frame_bytes: int = 96,
        on_pop: Optional[Callable[[Any], Any]] = None,
        deliver_to_caller: bool = True,
    ) -> Frame:
        """Push a simulated call frame onto a thread's stack.

        Wrapper/redirect frames (fake calls) may borrow the stack's
        redzone -- the stand-in for a signal stack -- so signal
        handling still works at the brink of stack exhaustion.
        """
        if kwargs:
            gen = fn(self._pt, *args, **kwargs)
        else:
            gen = fn(self._pt, *args)
        if type(gen) is not GeneratorType and not hasattr(gen, "send"):
            raise ProgramCrash(
                getattr(fn, "__name__", str(fn)),
                TypeError(
                    "thread code must be a generator function (it must "
                    "yield ops); %r returned %r" % (fn, gen)
                ),
            )
        frame = Frame(
            gen,
            name=getattr(fn, "__name__", "frame"),
            kind=kind,
            frame_bytes=frame_bytes,
            on_pop=on_pop,
            deliver_to_caller=deliver_to_caller,
        )
        if tcb.stack is not None:
            # May raise StackOverflow: do it before any state changes.
            tcb.stack.push(
                frame_bytes,
                redzone_ok=kind in ("wrapper", "redirect", "handler-call"),
            )
        if tcb is self.current:
            self.world.windows.save()
        tcb.frames.push(frame)
        return frame

    def _frame_returned(self, tcb: Tcb, frame: Frame, value: Any) -> None:
        popped = tcb.frames.pop()
        if popped is not frame:
            raise PthreadsInternalError("frame stack corruption")
        if tcb.stack is not None:
            tcb.stack.pop(frame.frame_bytes)
        self.world.windows.restore()
        if frame.on_pop is not None:
            frame.on_pop(value)
        if not tcb.frames:
            # The start routine returned: implicit pthread_exit(value).
            self.thread_ops.finish_thread(tcb, value)
            return
        if frame.deliver_to_caller:
            tcb.frames.top.pending_value = value

    def _frame_raised(self, tcb: Tcb, frame: Frame, exc: BaseException) -> None:
        """A frame let a SimException escape: unwind into the caller."""
        popped = tcb.frames.pop()
        if popped is not frame:
            raise PthreadsInternalError("frame stack corruption")
        if tcb.stack is not None:
            tcb.stack.pop(frame.frame_bytes)
        self.world.windows.restore()
        if self.world.trace is not None:
            self.world.emit(
                "sim-exception",
                thread=tcb.name,
                frame=frame.name,
                exc=repr(exc),
            )
        if not tcb.frames:
            # Unhandled at the bottom: the thread terminates abnormally
            # (Ada: an unhandled exception completes the task).
            tcb.crashed_with = exc
            self.thread_ops.finish_thread(tcb, exc)
            return
        tcb.frames.top.pending_exc = exc

    # -- the universal signal handler -----------------------------------------------------

    def _universal_handler(self, sig: int, cause: SigCause) -> None:
        """Entry point for every UNIX signal delivered to the process."""
        frame = self.proc.interrupt_frames.pop()
        if self.kern.kernel_flag:
            # Caught inside the library kernel: log it, request the
            # dispatcher, and return to the interruption point at once.
            self.kern.log_deferred(sig, cause)
            self.unix.sigreturn_frame(self.proc, frame)
            self.world.emit("signal-deferred", sig=sig)
            return
        interrupted = self.current
        if interrupted is not None:
            # The handler frame stays pending on the interrupted
            # thread's stack until it is redispatched.
            interrupted.pending_interrupt_frames.append(frame)
        else:
            self.unix.sigreturn_frame(self.proc, frame)
        self.kern.enter()
        # First of the two sigsetmask calls per received signal:
        # re-enable all signals now that the kernel flag protects us.
        self.unix.sigsetmask(self.proc, SigSet())
        self.sigdeliver.direct_signal(sig, cause)
        self.kern.request_dispatch()
        self.kern.leave()

    # -- shutdown ------------------------------------------------------------------------

    def process_default_action(self, sig: int) -> None:
        """A default-action signal terminates the whole process."""
        self.terminated_by = sig
        self.world.emit("process-terminated", sig=sig)

    def __repr__(self) -> str:
        return "PthreadsRuntime(model=%s, threads=%d, t=%.1fus)" % (
            self.world.model.name,
            len(self.threads),
            self.world.now_us,
        )
