"""Thread management: create, join, detach, exit, priorities.

Creation uses the TCB/stack pool (Table 2's "thread create, no context
switch" row assumes a pool hit).  Exit runs cleanup handlers and
thread-specific-data destructors on the dying thread's own stack, then
finalises: joiners are woken with the exit value, and a detached (or
joined) thread's memory returns to the pool and may never be referenced
again.

Lazy creation -- the paper's future-work extension -- is included: a
thread created with ``ThreadAttr(lazy=True)`` allocates nothing until
another thread synchronises with it (joins it, signals it, or
explicitly activates it).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.core import config as cfg
from repro.core.attr import ThreadAttr
from repro.core.errors import (
    EDEADLK,
    EINVAL,
    ESRCH,
    OK,
    PthreadsInternalError,
)
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs


class ThreadOps(LibraryOps):
    """Entry points for thread management."""

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        # Watcher-free fast-path charges (see LibKernel.__init__):
        # create/exit/join dominate the churn workloads, where the
        # spend-call overhead is a measurable fraction of a step.
        table = runtime.world._costs
        self._c_create = table[costs.CREATE_MISC]
        self._c_activate = table[costs.TCB_INIT] + table[costs.STACK_SETUP]
        self._c_exit = table[costs.EXIT_WORK]
        self._c_join = table[costs.JOIN_WORK]

    ENTRIES = {
        "create": "lib_create",
        "join": "lib_join",
        "detach": "lib_detach",
        "exit": "lib_exit",
        "self": "lib_self",
        "yield": "lib_yield",
        "setprio": "lib_setprio",
        "getprio": "lib_getprio",
        "setschedparam": "lib_setschedparam",
        "getschedparam": "lib_getschedparam",
        "equal": "lib_equal",
        "activate": "lib_activate",
        "set_errno": "lib_set_errno",
        "get_errno": "lib_get_errno",
        "_finalize_exit": "lib_finalize_exit",
    }

    # -- errno ---------------------------------------------------------------
    #
    # A running thread reads and writes the (simulated) UNIX global
    # errno; the dispatcher saves it into the TCB at context switch and
    # loads the incoming thread's copy -- the paper's "loading UNIX'
    # global error number with the thread's error number".

    def lib_set_errno(self, tcb: Tcb, value: int) -> int:
        self.rt.world.spend(costs.INSN, fire=False)
        self.rt.unix_errno = value
        tcb.errno = value
        return OK

    def lib_get_errno(self, tcb: Tcb) -> int:
        del tcb
        self.rt.world.spend(costs.INSN, fire=False)
        return self.rt.unix_errno

    # -- creation ------------------------------------------------------------

    def lib_create(
        self,
        tcb: Tcb,
        fn: Callable,
        *args: Any,
        attr: Optional[ThreadAttr] = None,
        name: Optional[str] = None,
    ) -> Tcb:
        """``pthread_create``: returns the new thread's handle."""
        if attr is None:
            attr = ThreadAttr()
        if name is not None:
            attr = attr.copy()
            attr.name = name
        return self.create_thread(fn, args, attr, creator=tcb)

    def create_thread(
        self,
        fn: Callable,
        args: tuple,
        attr: Optional[ThreadAttr],
        creator: Optional[Tcb],
    ) -> Tcb:
        rt = self.rt
        attr = (attr or ThreadAttr()).validated()
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.CREATE_MISC, fire=False)
        else:
            world.clock.cycles += self._c_create
        tid = rt.new_tid()
        name = attr.name or "thread-%d" % tid
        new = Tcb(tid, name)
        rt.register_thread(new)
        if attr.inherit_sched and creator is not None:
            new.base_priority = creator.base_priority
            new.policy = creator.policy
        else:
            new.base_priority = attr.priority
            new.policy = attr.policy
        new.effective_priority = new.base_priority
        new.detached = attr.detach_state == cfg.PTHREAD_CREATE_DETACHED
        new.start_fn = fn
        new.start_args = args
        new.lazy = attr.lazy
        if attr.lazy:
            # Deferred activation: no stack, no queue position, until
            # some thread synchronises with this one.
            new.state = ThreadState.EMBRYO
            new.meta_stack_size = attr.stack_size
        else:
            self._activate_locked(new, attr.stack_size)
        if world.trace is not None:
            world.emit("create", thread=name, lazy=attr.lazy)
        rt.kern.leave()
        return new

    def _activate_locked(self, new: Tcb, stack_size: Optional[int]) -> None:
        """Allocate resources and make the thread ready (kernel held)."""
        rt = self.rt
        tcb_addr, stack = rt.pool.acquire(stack_size)
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.TCB_INIT, fire=False)
            world.spend(costs.STACK_SETUP, fire=False)
        else:
            world.clock.cycles += self._c_activate
        new.stack = stack
        new.tcb_addr = tcb_addr
        new.lazy = False
        if new.start_fn is None:
            raise PthreadsInternalError("activating a thread with no body")
        rt.push_frame(new, new.start_fn, new.start_args)
        rt.sched.make_ready(new)
        # A new thread may be eligible for signals pended on the
        # process (delivery-model rule 6: "until a thread becomes
        # eligible to receive it").
        rt.sigdeliver.recheck_process_pending()

    def lib_activate(self, tcb: Tcb, target: Tcb) -> int:
        """Activate a lazily created thread (extension API)."""
        del tcb
        rt = self.rt
        if target.reclaimed:
            return ESRCH
        rt.kern.enter()
        err = self._ensure_active(target)
        rt.kern.leave()
        return err

    def _ensure_active(self, target: Tcb) -> int:
        """Activate ``target`` if it is still embryonic (kernel held)."""
        if target.state is ThreadState.EMBRYO:
            self._activate_locked(
                target, getattr(target, "meta_stack_size", None)
            )
        return OK

    # -- join / detach ----------------------------------------------------------

    def lib_join(self, tcb: Tcb, target: Tcb) -> Any:
        """``pthread_join``: returns ``(err, value)``."""
        rt = self.rt
        if not isinstance(target, Tcb) or target.reclaimed:
            return (ESRCH, None)
        if target is tcb:
            return (EDEADLK, None)
        # join is an interruption point: honour a pending cancellation.
        # (cancel_pending gates the call -- act_if_pending is a no-op
        # without it.)
        if tcb.cancel_pending and rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.JOIN_WORK, fire=False)
        else:
            world.clock.cycles += self._c_join
        if target.detached:
            rt.kern.leave()
            return (EINVAL, None)
        # Joining a lazy thread is synchronisation: activate it.
        self._ensure_active(target)
        if target.state is ThreadState.TERMINATED:
            value = target.exit_value
            self._reclaim(target)
            rt.kern.leave()
            return (OK, value)
        if target.joiner is not None:
            rt.kern.leave()
            return (EINVAL, None)
        target.joiner = tcb
        record = rt.block_current(
            kind="join",
            obj=target,
            teardown=lambda: setattr(target, "joiner", None),
        )
        del record
        rt.kern.leave()
        return BLOCKED

    def lib_detach(self, tcb: Tcb, target: Tcb) -> int:
        """``pthread_detach``."""
        del tcb
        rt = self.rt
        if not isinstance(target, Tcb) or target.reclaimed:
            return ESRCH
        rt.kern.enter()
        rt.world.spend(costs.DETACH_WORK, fire=False)
        if target.detached:
            rt.kern.leave()
            return EINVAL
        target.detached = True
        if target.state is ThreadState.TERMINATED:
            self._reclaim(target)
        rt.kern.leave()
        return OK

    # -- exit -----------------------------------------------------------------------

    def lib_exit(self, tcb: Tcb, value: Any = None) -> Any:
        """``pthread_exit``: unwind, run cleanup + destructors, die."""
        rt = self.rt
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.EXIT_WORK, fire=False)
        else:
            world.clock.cycles += self._c_exit
        tcb.exiting = True
        # Tear down the user frames; cleanup handlers run next, on a
        # fresh frame, in the dying thread's own context and priority.
        tcb.frames.unwind_all()
        if tcb.stack is not None:
            tcb.stack.reset()
        rt.push_frame(
            tcb, _exit_body, (tcb, value), deliver_to_caller=False
        )
        rt.kern.leave()
        return BLOCKED

    def finish_thread(self, tcb: Tcb, value: Any) -> None:
        """The start routine returned: implicit ``pthread_exit(value)``.

        Called by the executor when the last frame pops.
        """
        rt = self.rt
        if self._needs_exit_body(tcb):
            rt.push_frame(
                tcb, _exit_body, (tcb, value), deliver_to_caller=False
            )
            return
        self.lib_finalize_exit(tcb, value)

    def _needs_exit_body(self, tcb: Tcb) -> bool:
        if tcb.cleanup_stack:
            return True
        # No TSD values at all -> no live destructors, skip the scan.
        return bool(tcb.tsd) and self.rt.tsd_ops.has_live_destructors(tcb)

    def lib_finalize_exit(self, tcb: Tcb, value: Any) -> Any:
        """Terminal step of thread exit (internal entry point)."""
        rt = self.rt
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.EXIT_WORK, fire=False)
        else:
            world.clock.cycles += self._c_exit
        tcb.frames.unwind_all()
        tcb.exit_value = value
        tcb.state = ThreadState.TERMINATED
        tcb.exiting = False
        tcb.wait = None
        rt.thread_unlisted(tcb)
        if world.trace is not None:
            world.emit("exit", thread=tcb.name)
        if tcb.joiner is not None:
            joiner = tcb.joiner
            tcb.joiner = None
            if joiner.wait is not None and joiner.wait.kind == "join":
                joiner.wait.deliver((OK, value))
            rt.sched.make_ready(joiner)
            self._reclaim(tcb)
        elif tcb.detached:
            self._reclaim(tcb)
        if rt.current is tcb:
            rt.current = None
            rt.kern.request_dispatch()
        rt.kern.leave()
        return BLOCKED

    def _reclaim(self, tcb: Tcb) -> None:
        """Return the TCB and stack to the pool; the handle goes stale."""
        if tcb.reclaimed:
            return
        rt = self.rt
        if tcb.stack is not None:
            rt.pool.release(getattr(tcb, "tcb_addr", 0), tcb.stack)
            tcb.stack = None
        tcb.reclaimed = True
        # Every path here goes through lib_finalize_exit first, which
        # already unlisted the thread -- no second unlist needed.
        if rt.world.trace is not None:
            rt.world.emit("reclaim", thread=tcb.name)

    # -- identity and scheduling parameters -----------------------------------------------

    def lib_self(self, tcb: Tcb) -> Tcb:
        """``pthread_self``."""
        self.rt.world.spend(costs.INSN, times=2, fire=False)
        return tcb

    def lib_equal(self, tcb: Tcb, a: Tcb, b: Tcb) -> bool:
        del tcb
        self.rt.world.spend(costs.INSN, times=2, fire=False)
        return a is b

    def lib_yield(self, tcb: Tcb) -> int:
        """``pthread_yield``: tail of own priority level, then dispatch."""
        del tcb
        rt = self.rt
        rt.kern.enter()
        rt.sched.yield_current()
        rt.kern.leave()
        return OK

    def lib_setprio(self, tcb: Tcb, target: Tcb, priority: int) -> int:
        return self.lib_setschedparam(tcb, target, None, priority)

    def lib_getprio(self, tcb: Tcb, target: Tcb) -> int:
        del tcb
        if target.reclaimed:
            return -ESRCH
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        return target.base_priority

    def lib_setschedparam(
        self,
        tcb: Tcb,
        target: Tcb,
        policy: Optional[str],
        priority: int,
    ) -> int:
        del tcb
        rt = self.rt
        if not isinstance(target, Tcb) or target.reclaimed:
            return ESRCH
        try:
            cfg.check_priority(priority)
        except ValueError:
            return EINVAL
        if policy is not None and policy not in cfg.ALL_POLICIES:
            return EINVAL
        rt.kern.enter()
        rt.world.spend(costs.ATTR_OP, fire=False)
        target.base_priority = priority
        if policy is not None:
            target.policy = policy
        rt.protocols.recompute_effective(target)
        rt.kern.leave()
        return OK

    def lib_getschedparam(self, tcb: Tcb, target: Tcb) -> Tuple[int, str, int]:
        del tcb
        if target.reclaimed:
            return (ESRCH, "", -1)
        self.rt.world.spend(costs.ATTR_OP, fire=False)
        return (OK, target.policy, target.base_priority)


def _exit_body(pt, tcb: Tcb, value: Any):
    """Runs on the dying thread: cleanup handlers, then destructors.

    This is the body of the paper's "fake call to pthread_exit": it
    executes at the thread's priority on the thread's own stack.
    """
    while tcb.cleanup_stack:
        handler, arg = tcb.cleanup_stack.pop()
        yield pt.call(handler, arg)
    for _ in range(cfg.PTHREAD_DESTRUCTOR_ITERATIONS):
        pairs = pt.runtime.tsd_ops.take_destructor_pass(tcb)
        if not pairs:
            break
        for destructor, item in pairs:
            yield pt.call(destructor, item)
    yield pt.lib_raw("_finalize_exit", value)
