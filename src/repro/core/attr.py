"""Attribute objects: thread, mutex, and condition-variable attributes.

Pthreads configures objects through attribute records passed at
initialisation.  These are plain data: validation happens here, the
consuming module applies them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core import config


@dataclass
class ThreadAttr:
    """Attributes for ``pthread_create``.

    ``lazy`` is the paper's future-work extension ("an attribute passed
    at creation time could indicate that the activation is to be
    deferred"): a lazily created thread allocates no stack and joins no
    queue until some other thread synchronises with it.
    """

    priority: int = config.PTHREAD_DEFAULT_PRIORITY
    policy: str = config.SCHED_FIFO
    stack_size: Optional[int] = None
    detach_state: str = config.PTHREAD_CREATE_JOINABLE
    inherit_sched: bool = False  # inherit priority/policy from creator
    lazy: bool = False
    name: Optional[str] = None

    def validated(self) -> "ThreadAttr":
        config.check_priority(self.priority)
        if self.policy not in config.ALL_POLICIES:
            raise ValueError("unknown scheduling policy: %r" % (self.policy,))
        if self.detach_state not in (
            config.PTHREAD_CREATE_JOINABLE,
            config.PTHREAD_CREATE_DETACHED,
        ):
            raise ValueError("bad detach state: %r" % (self.detach_state,))
        if self.stack_size is not None and self.stack_size < 1024:
            raise ValueError(
                "stack size too small: %r (min 1024)" % (self.stack_size,)
            )
        return self

    def copy(self) -> "ThreadAttr":
        return replace(self)


@dataclass
class MutexAttr:
    """Attributes for ``pthread_mutex_init``.

    ``protocol`` selects no protocol, priority inheritance, or priority
    ceiling (SRP); ``prioceiling`` is required for the ceiling protocol
    and must be at least the highest priority of any locking thread
    (the paper argues the standard should *require* this; we check it
    at lock time when ``RuntimeConfig.check_ceilings`` is on).
    """

    protocol: str = config.PRIO_NONE
    prioceiling: int = config.PTHREAD_MAX_PRIORITY
    name: Optional[str] = None

    def validated(self) -> "MutexAttr":
        if self.protocol not in config.ALL_PROTOCOLS:
            raise ValueError("unknown mutex protocol: %r" % (self.protocol,))
        config.check_priority(self.prioceiling)
        return self

    def copy(self) -> "MutexAttr":
        return replace(self)


@dataclass
class CondAttr:
    """Attributes for ``pthread_cond_init`` (placeholder for shared)."""

    name: Optional[str] = None

    def validated(self) -> "CondAttr":
        return self

    def copy(self) -> "CondAttr":
        return replace(self)
