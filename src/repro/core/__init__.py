"""The Pthreads library (the paper's primary contribution).

Public surface:

- :class:`~repro.core.runtime.PthreadsRuntime` -- one process running
  the library; create it, add a ``main`` thread, and ``run()``.
- :class:`~repro.core.api.PT` -- the op facade thread bodies receive.
- Attribute records (:class:`ThreadAttr`, :class:`MutexAttr`,
  :class:`CondAttr`) and the configuration/priority constants in
  :mod:`repro.core.config`.
"""

from repro.core.api import PT
from repro.core.attr import CondAttr, MutexAttr, ThreadAttr
from repro.core.config import RuntimeConfig
from repro.core.runtime import PthreadsRuntime
from repro.core.tcb import Tcb, ThreadState

__all__ = [
    "CondAttr",
    "MutexAttr",
    "PT",
    "PthreadsRuntime",
    "RuntimeConfig",
    "Tcb",
    "ThreadAttr",
    "ThreadState",
]
