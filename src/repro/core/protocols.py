"""Priority-inversion protocols: inheritance and ceiling (SRP).

Implements the two protocols of the paper's Table 3:

- **Priority inheritance**: when a thread blocks on a mutex, the owner
  (transitively) inherits the blocker's effective priority; unlocking
  recomputes the owner's priority with a linear search over the
  mutexes it still holds.
- **Priority ceiling** via the stack resource policy: acquiring the
  mutex immediately boosts the locker to the mutex's ceiling, saving
  the previous level on a per-thread stack; unlocking pops it.

The paper's Table 4 shows the two diverge when nested: pure
stack-popping loses an inheritance boost acquired while the ceiling
mutex was held.  ``RuntimeConfig.mixed_protocol_unlock`` selects
between the faithful ``"stack"`` behaviour (reproducing the paper's
divergence) and the safe ``"linear-search"`` recomputation the paper
recommends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core import config as cfg
from repro.core.tcb import Tcb, ThreadState
from repro.hw import costs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.mutex import Mutex
    from repro.core.runtime import PthreadsRuntime


class ProtocolManager:
    """Priority bookkeeping for mutex protocols (kernel-held callers)."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self.rt = runtime
        self.boosts = 0  # priority raises performed (Table 3 evidence)
        self.unboosts = 0

    # -- acquisition ------------------------------------------------------------

    def on_acquired(self, tcb: Tcb, mutex: "Mutex") -> None:
        """Called after ``tcb`` becomes the owner of ``mutex``."""
        tcb.held_mutexes.append(mutex)
        if mutex.protocol == cfg.PRIO_PROTECT:
            # SRP: save the current level, jump to the ceiling.
            self.rt.world.spend(costs.PRIO_ADJUST, fire=False)
            tcb.srp_stack.append(tcb.effective_priority)
            if mutex.prioceiling > tcb.effective_priority:
                self.boosts += 1
                self._set_effective(tcb, mutex.prioceiling)

    # -- contention (inheritance) ---------------------------------------------------

    def on_contention(self, waiter: Tcb, mutex: "Mutex") -> None:
        """``waiter`` is about to block on ``mutex``: boost the owner
        chain if the mutex uses priority inheritance."""
        if mutex.protocol != cfg.PRIO_INHERIT:
            return
        self.rt.world.spend(costs.PRIO_ADJUST, fire=False)
        level = waiter.effective_priority
        seen = set()
        current: Optional["Mutex"] = mutex
        while current is not None and current.owner is not None:
            owner = current.owner
            if id(owner) in seen:
                break  # cycle: deadlocked chain, boosting is moot
            seen.add(id(owner))
            if owner.effective_priority >= level:
                break
            self.boosts += 1
            self._set_effective(owner, level)
            # Transitive inheritance: if the owner itself is blocked on
            # another inheritance mutex, its owner inherits too.
            wait = owner.wait
            if (
                wait is not None
                and wait.kind == "mutex"
                and getattr(wait.obj, "protocol", None) == cfg.PRIO_INHERIT
            ):
                current = wait.obj
            else:
                current = None

    # -- release ---------------------------------------------------------------------

    def on_released(self, tcb: Tcb, mutex: "Mutex") -> None:
        """Called after ``tcb`` gives up ``mutex``: undo its boost."""
        tcb.held_mutexes.remove(mutex)
        if mutex.protocol == cfg.PRIO_NONE:
            return
        self.rt.world.spend(costs.PRIO_ADJUST, fire=False)
        if (
            mutex.protocol == cfg.PRIO_PROTECT
            and self.rt.config.mixed_protocol_unlock == "stack"
        ):
            # Pure SRP pop: restore the level saved at acquisition.
            # This is the Table 4 divergence when protocols are mixed.
            if tcb.srp_stack:
                self.unboosts += 1
                self._set_effective(tcb, tcb.srp_stack.pop())
            return
        if mutex.protocol == cfg.PRIO_PROTECT and tcb.srp_stack:
            tcb.srp_stack.pop()
        # Linear search over the mutexes still held (the paper's
        # inheritance unlock, also its recommendation for mixing).
        self.unboosts += 1
        self._set_effective(tcb, self.compute_effective(tcb))

    # -- recomputation -----------------------------------------------------------------

    def compute_effective(self, tcb: Tcb) -> int:
        """max(base, boosts from every mutex still held)."""
        level = tcb.base_priority
        for held in tcb.held_mutexes:
            if held.protocol == cfg.PRIO_INHERIT:
                waiting = held.waiters.highest_priority()
                if waiting is not None and waiting > level:
                    level = waiting
            elif held.protocol == cfg.PRIO_PROTECT:
                if held.prioceiling > level:
                    level = held.prioceiling
        return level

    def recompute_effective(self, tcb: Tcb) -> None:
        """Re-derive the effective priority (after a base change)."""
        self._set_effective(tcb, self.compute_effective(tcb))

    def _set_effective(self, tcb: Tcb, level: int) -> None:
        if level == tcb.effective_priority:
            return
        old = tcb.effective_priority
        tcb.effective_priority = level
        self.rt.world.emit(
            "priority", thread=tcb.name, from_prio=old, to_prio=level
        )
        self.rt.sched.priority_changed(tcb)
        # A blocked thread may need re-sorting in its wait queue.
        wait = tcb.wait
        if (
            tcb.state is ThreadState.BLOCKED
            and wait is not None
            and hasattr(wait.obj, "waiters")
            and tcb in wait.obj.waiters
        ):
            wait.obj.waiters.resort(tcb)
