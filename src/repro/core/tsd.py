"""Thread-specific data.

Keys are process-wide; values live in each TCB.  Destructors (generator
functions ``destructor(pt, value)``) run at thread exit, in repeated
passes up to ``PTHREAD_DESTRUCTOR_ITERATIONS``, because a destructor
may set other keys (POSIX semantics).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import config as cfg
from repro.core.errors import EINVAL, ENOMEM, OK
from repro.core.libbase import LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs


class TsdOps(LibraryOps):
    """Entry points for thread-specific data."""

    ENTRIES = {
        "key_create": "lib_key_create",
        "key_delete": "lib_key_delete",
        "setspecific": "lib_setspecific",
        "getspecific": "lib_getspecific",
    }

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        self._destructors: Dict[int, Optional[Any]] = {}
        self._next_key = 1

    def lib_key_create(
        self, tcb: Tcb, destructor: Optional[Any] = None
    ) -> Tuple[int, int]:
        """Create a key; returns ``(err, key)``."""
        del tcb
        self.rt.world.spend(costs.TSD_OP, fire=False)
        if len(self._destructors) >= cfg.PTHREAD_KEYS_MAX:
            return (ENOMEM, -1)
        key = self._next_key
        self._next_key += 1
        self._destructors[key] = destructor
        return (OK, key)

    def lib_key_delete(self, tcb: Tcb, key: int) -> int:
        del tcb
        self.rt.world.spend(costs.TSD_OP, fire=False)
        if key not in self._destructors:
            return EINVAL
        del self._destructors[key]
        return OK

    def lib_setspecific(self, tcb: Tcb, key: int, value: Any) -> int:
        self.rt.world.spend(costs.TSD_OP, fire=False)
        if key not in self._destructors:
            return EINVAL
        tcb.tsd[key] = value
        return OK

    def lib_getspecific(self, tcb: Tcb, key: int) -> Any:
        self.rt.world.spend(costs.TSD_OP, fire=False)
        return tcb.tsd.get(key)

    # -- exit-time destructor support ------------------------------------------------

    def has_live_destructors(self, tcb: Tcb) -> bool:
        return any(
            tcb.tsd.get(key) is not None and dtor is not None
            for key, dtor in self._destructors.items()
        )

    def take_destructor_pass(self, tcb: Tcb) -> List[Tuple[Any, Any]]:
        """One destructor pass: collect (destructor, value) pairs and
        null the slots (POSIX: value is set to NULL before the call)."""
        pairs: List[Tuple[Any, Any]] = []
        for key, dtor in list(self._destructors.items()):
            value = tcb.tsd.get(key)
            if value is not None and dtor is not None:
                tcb.tsd[key] = None
                pairs.append((dtor, value))
        return pairs
