"""The library timer queue.

BSD gives a process *one* pending slot per signal, so a library with
many sleeping threads cannot arm one UNIX timer per sleeper -- closely
spaced expirations would be lost.  Instead the library keeps its own
deadline queue and multiplexes a single ``setitimer`` over it: the UNIX
timer is always armed for the earliest library deadline, and each
SIGALRM delivery wakes *every* due sleeper (delivery-model rule 3:
the alarm is directed at the threads that armed it).

The same queue provides internal timeouts (condition-variable timed
waits), which therefore flow through the ordinary signal machinery and
respect the monolithic monitor.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.core.errors import EINVAL, OK
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb
from repro.hw import costs


class TimeoutHandle:
    """Cancellable handle for one queued deadline."""

    __slots__ = ("deadline", "seq", "action", "cancelled")

    def __init__(self, deadline: int, seq: int, action: Callable[[], None]):
        self.deadline = deadline
        self.seq = seq
        self.action = action
        self.cancelled = False


class TimerOps(LibraryOps):
    """Entry points and internals for library timing."""

    ENTRIES = {
        "delay_us": "lib_delay_us",
    }

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        self._heap: List[Tuple[int, int, TimeoutHandle]] = []
        self._seq = itertools.count()
        self._armed_for: Optional[int] = None
        self._draining = False
        self.alarms_taken = 0
        # Watcher-free fast-path charge (see LibKernel.__init__).
        self._c_tick = runtime.world._costs[costs.TIMER_TICK]

    # -- public: thread sleep ----------------------------------------------------

    def lib_delay_us(self, tcb: Tcb, us: float) -> object:
        """Suspend the calling thread for ``us`` microseconds."""
        rt = self.rt
        if us <= 0:
            return EINVAL
        if tcb.cancel_pending and rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        world = rt.world
        if world.clock._watchers:
            world.spend(costs.TIMER_TICK, fire=False)
        else:
            world.clock.cycles += self._c_tick
        record = rt.block_current(kind="delay", obj=None, interruptible=True)
        # One wake-me closure per thread, built on first delay.
        wake = tcb._wake_cb
        if wake is None:
            wake = tcb._wake_cb = lambda: self._wake_sleeper(tcb)
        handle = self._push(rt.world.now + rt.world.cycles_for_us(us), wake)
        record.data["timeout_handle"] = handle
        rt.kern.leave()
        return BLOCKED

    def _wake_sleeper(self, tcb: Tcb) -> None:
        if tcb.wait is None or tcb.wait.kind != "delay":
            return  # woken early (handler or cancellation)
        tcb.wait.deliver(OK)
        self.rt.sched.make_ready(tcb)

    # -- internal timeouts (condvars etc.) ----------------------------------------

    def add_timeout(
        self, us_from_now: float, action: Callable[[], None]
    ) -> TimeoutHandle:
        """Queue ``action`` to run (kernel held) after ``us_from_now``."""
        deadline = self.rt.world.now + self.rt.world.cycles_for_us(us_from_now)
        return self._push(deadline, action)

    def cancel_timeout(self, handle: TimeoutHandle) -> None:
        """Drop a queued deadline.

        When the cancelled entry is at the head of the heap the UNIX
        timer is armed for a deadline nobody wants any more: sweep the
        cancelled heads and, if later deadlines remain, retarget the
        timer at the real earliest -- otherwise it fires early and the
        process takes a spurious SIGALRM with nothing due.

        When the sweep empties the queue the stale one-shot stays
        armed and only ``_armed_for`` is cleared: cancellations arrive
        on signal-delivery paths (condvar wakeups, EINTR'd sleeps)
        where an immediate disarm would cost a ``setitimer`` dearer
        than the single self-cleaning alarm it avoids, and any
        deadline pushed before then retargets the timer anyway.
        """
        handle.cancelled = True
        if self._heap and self._heap[0][2] is handle:
            while self._heap and self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
            if self._heap:
                self._rearm()
            else:
                self._armed_for = None

    # -- queue mechanics ---------------------------------------------------------------

    def _push(self, deadline: int, action: Callable[[], None]) -> TimeoutHandle:
        handle = TimeoutHandle(deadline, next(self._seq), action)
        heapq.heappush(self._heap, (deadline, handle.seq, handle))
        self._rearm()
        return handle

    def _rearm(self) -> None:
        """Keep the single UNIX timer armed for the earliest deadline."""
        if self._draining:
            # ``on_alarm`` is popping due entries; an action that
            # queues or cancels a deadline mid-drain must not touch the
            # UNIX timer for entries the loop is about to pop.  One
            # rearm happens when the drain completes.
            return
        rt = self.rt
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            if self._armed_for is not None:
                rt.timer.disarm()
                self._armed_for = None
            return
        earliest = self._heap[0][0]
        if self._armed_for == earliest:
            return
        delay = max(earliest - rt.world.now, 1)
        rt.timer.arm(delay, armer=None, tag="libtimer")
        self._armed_for = earliest

    def on_alarm(self) -> None:
        """SIGALRM arrived (kernel flag held): wake every due entry."""
        rt = self.rt
        self.alarms_taken += 1
        self._armed_for = None
        self._draining = True
        try:
            now = rt.world.now
            while self._heap and self._heap[0][0] <= now:
                __, __, handle = heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                rt.world.spend(costs.TIMER_TICK, fire=False)
                handle.action()
        finally:
            self._draining = False
        self._rearm()

    @property
    def pending_count(self) -> int:
        return sum(1 for __, __, h in self._heap if not h.cancelled)
