"""Thread-blocking socket calls over the simulated network stack.

The same shape as :mod:`repro.core.iolib`: UNIX ``accept``/``recv``/
``send``/``connect``/``select`` would block the whole process, so each
entry point issues the *non-blocking* kernel service
(:mod:`repro.unix.net`) and, when it would block, suspends only the
calling thread.  The completion arrives either as ``SIGIO`` with a
cause naming the requester (delivery-model rule 4) or through the
first-class channel, and wakes exactly that thread -- the existing
``_wake_io``/``fc_wake`` machinery, unchanged, because a
:class:`~repro.unix.net.NetRequest` quacks like an ``IoRequest``.

Every blocking call is an interruption point: a pending cancellation
acts before the request is issued, and a cancellation landing while
the thread waits runs the request's teardown
(:meth:`~repro.unix.net.NetStack.cancel_request`), deregistering it so
the kernel never wakes a thread that stopped waiting.

Descriptors come from the runtime's :class:`~repro.core.fdtable.FdTable`;
sockets and disk devices share one descriptor space, so ``pt.read`` /
``pt.write`` on a socket fd route here (see ``IoOps._io``).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.errors import (
    EBADF,
    ECONNREFUSED,
    EINVAL,
    EISCONN,
    EADDRINUSE,
    ENOTCONN,
    EPIPE,
    OK,
)
from repro.core.libbase import BLOCKED, LibraryOps
from repro.core.tcb import Tcb
from repro.unix.net import EpollInstance, NetRequest, Socket


class NetOps(LibraryOps):
    """Entry points for thread-level socket operations.

    Return conventions (POSIX-flavoured, tuple-valued like ``read``):

    - ``socket()`` -> fd (or -1 when no network stack is attached)
    - ``bind/listen/net_close`` -> err
    - ``connect`` -> ``(err, fd)``
    - ``accept`` -> ``(err, conn_fd)``
    - ``send`` -> ``(err, nbytes)``
    - ``recv`` -> ``(err, message_or_None)`` (None = orderly EOF)
    - ``select`` -> ``(err, ready_fds)`` (empty list = timeout)
    """

    ENTRIES = {
        "socket": "lib_socket",
        "bind": "lib_bind",
        "listen": "lib_listen",
        "accept": "lib_accept",
        "connect": "lib_connect",
        "send": "lib_send",
        "recv": "lib_recv",
        "select": "lib_select",
        "net_close": "lib_close",
        "epoll_create": "lib_epoll_create",
        "epoll_ctl": "lib_epoll_ctl",
        "epoll_wait": "lib_epoll_wait",
    }

    # -- non-blocking setup calls -------------------------------------------

    def lib_socket(self, tcb: Tcb) -> int:
        del tcb
        rt = self.rt
        if rt.net is None:
            return -1
        rt.kern.enter()
        sock = rt.net.sys_socket()
        fd = rt.fds.alloc(sock)
        rt.kern.leave()
        return fd

    def lib_bind(self, tcb: Tcb, fd: int, port: int) -> int:
        del tcb
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return EBADF
        if sock.state != "new":
            return EINVAL
        rt.kern.enter()
        ok = rt.net.sys_bind(sock, port)
        rt.kern.leave()
        return OK if ok else EADDRINUSE

    def lib_listen(self, tcb: Tcb, fd: int, backlog: int = 8) -> int:
        del tcb
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return EBADF
        if sock.state != "bound":
            return EINVAL
        rt.kern.enter()
        rt.net.sys_listen(sock, backlog)
        rt.kern.leave()
        return OK

    def lib_close(self, tcb: Tcb, fd: int) -> int:
        del tcb
        rt = self.rt
        obj = rt.fds.close(fd)
        if obj is None:
            return EBADF
        if isinstance(obj, Socket):
            rt.kern.enter()
            rt.net.sys_close(obj)
            rt.kern.leave()
        elif isinstance(obj, EpollInstance):
            rt.kern.enter()
            rt.net.sys_epoll_close(obj)
            rt.kern.leave()
        return OK

    # -- epoll (interest lists; see repro.unix.net.EpollInstance) -----------

    def lib_epoll_create(self, tcb: Tcb) -> int:
        del tcb
        rt = self.rt
        if rt.net is None:
            return -1
        rt.kern.enter()
        ep = rt.net.sys_epoll_create()
        fd = rt.fds.alloc(ep)
        rt.kern.leave()
        return fd

    def lib_epoll_ctl(self, tcb: Tcb, epfd: int, op: str, fd: int) -> int:
        del tcb
        rt = self.rt
        ep = self._epoll(epfd)
        if ep is None:
            return EBADF
        sock = self._sock(fd)
        if op == "add" and sock is None:
            return EBADF
        rt.kern.enter()
        ok = rt.net.sys_epoll_ctl(ep, op, fd, sock)
        rt.kern.leave()
        return OK if ok else EINVAL

    def lib_epoll_wait(
        self,
        tcb: Tcb,
        epfd: int,
        maxevents: Optional[int] = None,
        timeout_us: Optional[float] = None,
    ) -> Any:
        rt = self.rt
        ep = self._epoll(epfd)
        if ep is None:
            return (EBADF, [])
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        ready = rt.net.sys_epoll_wait(ep, maxevents)
        if ready != "block":
            rt.kern.leave()
            return (OK, ready)
        if timeout_us is not None and timeout_us <= 0:
            rt.kern.leave()
            return (OK, [])
        request = rt.net.wait_epoll(ep, tcb)
        record = self._park(tcb, rt.net, request, "epoll_wait", epfd)
        if timeout_us is not None:
            handle = rt.timer_ops.add_timeout(
                timeout_us, lambda: self._select_timeout(tcb, request)
            )
            record.data["timeout_handle"] = handle
        rt.kern.leave()
        return BLOCKED

    # -- blocking calls ------------------------------------------------------

    def lib_accept(self, tcb: Tcb, fd: int) -> Any:
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return (EBADF, -1)
        if sock.state != "listening":
            return (EINVAL, -1)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        conn = rt.net.sys_accept(sock)
        if conn is not None:
            conn_fd = rt.fds.alloc(conn)
            rt.kern.leave()
            return (OK, conn_fd)
        request = rt.net.wait_accept(
            sock, tcb, finisher=lambda c: rt.fds.alloc(c)
        )
        self._park(tcb, sock, request, "accept", fd)
        rt.kern.leave()
        return BLOCKED

    def lib_connect(self, tcb: Tcb, fd: int, port: int) -> Any:
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return (EBADF, -1)
        if sock.state == "connected":
            return (EISCONN, fd)
        if sock.state != "new":
            return (EINVAL, -1)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        issued = rt.net.sys_connect(sock, port)
        if not issued:
            rt.kern.leave()
            return (ECONNREFUSED, -1)
        request = rt.net.wait_connect(sock, tcb, finisher=lambda c: fd)
        self._park(tcb, sock, request, "connect", fd)
        rt.kern.leave()
        return BLOCKED

    def lib_send(
        self, tcb: Tcb, fd: int, nbytes: int, meta: Optional[dict] = None
    ) -> Any:
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return (EBADF, 0)
        if nbytes <= 0:
            return (EINVAL, 0)
        if sock.state != "connected":
            return (ENOTCONN, 0)
        peer = sock.peer
        if peer is None or peer.state == "closed":
            return (EPIPE, 0)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        sent = rt.net.sys_send(sock, nbytes, meta)
        if sent is not None:
            rt.kern.leave()
            return (OK, sent)
        # The peer's receive buffer is full: backpressure blocks the
        # *thread* (never the process) until space frees.
        request = rt.net.wait_send(
            sock, tcb, nbytes, meta, finisher=lambda n: n
        )
        self._park(tcb, sock, request, "send", fd)
        rt.kern.leave()
        return BLOCKED

    def lib_recv(self, tcb: Tcb, fd: int) -> Any:
        rt = self.rt
        sock = self._sock(fd)
        if sock is None:
            return (EBADF, None)
        if sock.state != "connected":
            return (ENOTCONN, None)
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        got = rt.net.sys_recv(sock)
        if got != "block":
            rt.kern.leave()
            return (OK, got)  # a Message, or None for orderly EOF
        request = rt.net.wait_recv(sock, tcb)
        self._park(tcb, sock, request, "recv", fd)
        rt.kern.leave()
        return BLOCKED

    def lib_select(
        self, tcb: Tcb, fds: List[int], timeout_us: Optional[float] = None
    ) -> Any:
        rt = self.rt
        entries = []
        for fd in fds:
            sock = self._sock(fd)
            if sock is None:
                return (EBADF, [])
            entries.append((fd, sock))
        if rt.cancel_ops.act_if_pending(tcb):
            return BLOCKED
        rt.kern.enter()
        ready = rt.net.sys_select(entries)
        if ready:
            rt.kern.leave()
            return (OK, ready)
        if timeout_us is not None and timeout_us <= 0:
            rt.kern.leave()
            return (OK, [])
        request = rt.net.wait_select(entries, tcb)
        record = self._park(tcb, rt.net, request, "select", -1)
        if timeout_us is not None:
            handle = rt.timer_ops.add_timeout(
                timeout_us, lambda: self._select_timeout(tcb, request)
            )
            record.data["timeout_handle"] = handle
        rt.kern.leave()
        return BLOCKED

    # -- plumbing ------------------------------------------------------------

    def _sock(self, fd: int) -> Optional[Socket]:
        obj = self.rt.fds.get(fd)
        return obj if isinstance(obj, Socket) else None

    def _epoll(self, fd: int) -> Optional[EpollInstance]:
        obj = self.rt.fds.get(fd)
        return obj if isinstance(obj, EpollInstance) else None

    def _park(
        self, tcb: Tcb, obj: Any, request: NetRequest, op: str, fd: int
    ):
        """Park the caller on its request (kernel flag held).

        ``kind="io"`` keeps the whole existing wake/cancel machinery in
        play: ``_wake_io`` and ``fc_wake`` match on
        ``wait.data["request"]``, and ``"io"`` is an interruption wait,
        so cancellation runs the teardown that deregisters the request.
        """
        rt = self.rt
        record = rt.block_current(
            kind="io",
            obj=obj,
            interruptible=True,
            teardown=lambda: rt.net.cancel_request(request),
            request=request,
        )
        if rt.world.trace is not None:
            rt.world.emit("net-issue", thread=tcb.name, op=op, fd=fd)
        return record

    def _select_timeout(self, tcb: Tcb, request: NetRequest) -> None:
        """Timer-queue callback (kernel flag held): wake with no fds."""
        wait = tcb.wait
        if (
            wait is None
            or wait.kind != "io"
            or wait.data.get("request") is not request
        ):
            return  # completed in the meantime; stale timeout
        self.rt.net.cancel_request(request)
        wait.deliver((OK, []))
        self.rt.sched.make_ready(tcb)
