"""The TCB/stack memory pool.

The paper measures thread creation with "the thread control block and
stack pre-cached in a memory pool to avoid dynamic memory allocation"
and notes that allocation otherwise accounts for ~70 % of creation
time.  :class:`ThreadPool` implements that cache; the ablation
benchmark (``benchmarks/test_ablation_pool.py``) reproduces the claim
by creating threads with and without it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw import costs
from repro.hw.memory import Heap, Stack
from repro.sim.world import World

#: Simulated TCB footprint in bytes (bookkeeping only).
TCB_BYTES = 512


class ThreadPool:
    """Pre-cached (TCB address, stack) pairs.

    Parameters
    ----------
    world, heap:
        Cost accounting and backing storage.
    size:
        Number of pre-cached entries (0 disables pooling).
    stack_size:
        Stack size of pooled entries; requests for other sizes bypass
        the pool.
    """

    def __init__(
        self, world: World, heap: Heap, size: int, stack_size: int
    ) -> None:
        if size < 0:
            raise ValueError("pool size must be >= 0: %r" % size)
        self._world = world
        # Watcher-free fast-path charges (see LibKernel.__init__).
        self._c_pop = world._costs[costs.POOL_POP]
        self._c_push = world._costs[costs.POOL_PUSH]
        self._heap = heap
        self.stack_size = stack_size
        self.capacity = size
        self._entries: List[Tuple[int, Stack]] = []
        self.hits = 0
        self.misses = 0
        self.returns = 0
        for _ in range(size):
            self._entries.append(self._allocate(stack_size))

    def __len__(self) -> int:
        return len(self._entries)

    def acquire(self, stack_size: Optional[int] = None) -> Tuple[int, Stack]:
        """Take a TCB/stack pair, from the pool when possible.

        A pool hit costs a couple of pointer moves; a miss pays full
        dynamic allocation (and possibly ``sbrk``).
        """
        want = stack_size if stack_size is not None else self.stack_size
        if self._entries and want <= self.stack_size:
            self.hits += 1
            world = self._world
            if world.clock._watchers:
                world.spend(costs.POOL_POP, fire=False)
            else:
                world.clock.cycles += self._c_pop
            tcb_addr, stack = self._entries.pop()
            stack.reset()
            return tcb_addr, stack
        self.misses += 1
        # A freshly allocated stack is cold: its first use takes
        # zero-fill page faults.  Cached stacks stay resident, which is
        # the cache's whole justification -- hits skip this entirely.
        self._world.spend(costs.STACK_FAULT_IN, fire=False)
        return self._allocate(want)

    def release(self, tcb_addr: int, stack: Stack) -> None:
        """Return a pair to the pool (or free it if it doesn't fit)."""
        fits = (
            stack.size == self.stack_size
            and len(self._entries) < self.capacity
        )
        if fits:
            self.returns += 1
            world = self._world
            if world.clock._watchers:
                world.spend(costs.POOL_PUSH, fire=False)
            else:
                world.clock.cycles += self._c_push
            self._entries.append((tcb_addr, stack))
        else:
            self._heap.free(tcb_addr)
            self._heap.free(stack.base - stack.size)

    def _allocate(self, stack_size: int) -> Tuple[int, Stack]:
        tcb_addr = self._heap.malloc(TCB_BYTES)
        stack_lo = self._heap.malloc(stack_size)
        # A generous redzone doubles as the signal stack: fake-call
        # wrappers and handlers still run after user code exhausts the
        # regular area.
        stack = Stack(
            base=stack_lo + stack_size, size=stack_size, redzone=2048
        )
        return tcb_addr, stack
