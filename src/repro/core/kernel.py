"""The library kernel: a monolithic monitor.

The paper protects all library data structures with one coarse lock,
the *kernel flag*: while it is set, signal handling is deferred (the
universal handler only logs the signal and sets the *dispatcher flag*).
Leaving the kernel either simply clears the flag, or -- if the
dispatcher flag was set while inside -- invokes the dispatcher, which
may context-switch.

``enter``/``leave`` are the operations Table 2's first row times
("enter and exit Pthreads kernel"), the library's analogue of a UNIX
kernel call at a fraction of the cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.core.errors import PthreadsInternalError
from repro.hw import costs
from repro.unix.signals import SigCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime


class LibKernel:
    """Kernel flag, dispatcher flag, and the deferred-signal log."""

    def __init__(self, runtime: "PthreadsRuntime") -> None:
        self._runtime = runtime
        # Pre-resolved cycle charges: enter/leave run several times per
        # executor step, so the ``spend`` call (method + table lookup)
        # is bypassed whenever no clock watcher needs to see the charge
        # key (obs attribution re-enables the slow path).
        table = runtime.world._costs
        self._c_enter = table[costs.ENTER_KERNEL]
        self._c_leave = table[costs.LEAVE_KERNEL]
        self.kernel_flag = False
        self.dispatcher_flag = False
        #: Signals caught by the universal handler while the kernel flag
        #: was set; drained by the dispatcher (Figure 2's restart loop).
        self.deferred_signals: List[Tuple[int, SigCause]] = []
        #: First-class I/O upcalls that arrived while in the kernel
        #: (drained alongside the deferred signals).
        self.deferred_upcalls: List[object] = []
        self.enters = 0
        self.deferred_total = 0

    def enter(self) -> None:
        """Set the kernel flag (begin a library critical section)."""
        if self.kernel_flag:
            raise PthreadsInternalError(
                "nested Pthreads kernel entry (monitor is not re-entrant)"
            )
        world = self._runtime.world
        clock = world.clock
        if clock._watchers:
            world.spend(costs.ENTER_KERNEL, fire=False)
        else:
            clock.cycles += self._c_enter
        self.kernel_flag = True
        self.enters += 1
        # Events due *now* fire inside the critical section, which is
        # exactly what exercises the defer-to-dispatcher machinery.
        # (fire_due's horizon gate, checked inline.)
        horizon = world.events._horizon
        if horizon is not None and horizon <= clock.cycles:
            world.fire_due()

    def leave(self) -> None:
        """Leave the kernel; run the dispatcher if it was requested."""
        if not self.kernel_flag:
            raise PthreadsInternalError("leaving Pthreads kernel while outside")
        runtime = self._runtime
        world = runtime.world
        clock = world.clock
        if clock._watchers:
            world.spend(costs.LEAVE_KERNEL, fire=False)
        else:
            clock.cycles += self._c_leave
        # Drain events that became due during the critical section while
        # the flag is still set: their signals take the log-and-defer
        # path and are handled by the dispatcher below (Figure 2).
        events = world.events
        horizon = events._horizon
        if horizon is not None and horizon <= clock.cycles:
            world.fire_due()
        policy = runtime.policy
        if policy is not None:
            policy.on_kernel_exit(runtime)
        check = runtime.check
        if check is not None:
            # Every kernel-flag release is a point where the library's
            # shared state must be consistent: run the invariants here
            # (raises InvariantViolation on the first broken rule).
            check.on_kernel_release(runtime)
        if self.dispatcher_flag:
            # The dispatcher clears both flags itself (Figure 2).
            runtime.dispatcher.run()
        else:
            self.kernel_flag = False
        horizon = events._horizon
        if horizon is not None and horizon <= clock.cycles:
            world.fire_due()

    def request_dispatch(self) -> None:
        """Ask for the dispatcher on kernel exit (new thread ready,
        preemption needed, signal logged, ...)."""
        self.dispatcher_flag = True

    def log_deferred(self, sig: int, cause: SigCause) -> None:
        """Record a signal caught while the kernel flag was set."""
        self._runtime.world.spend(costs.SIG_LOG_IN_KERNEL, fire=False)
        self.deferred_signals.append((sig, cause))
        self.deferred_total += 1
        self.dispatcher_flag = True

    def __repr__(self) -> str:
        return "LibKernel(kernel=%s, dispatcher=%s, deferred=%d)" % (
            self.kernel_flag,
            self.dispatcher_flag,
            len(self.deferred_signals),
        )
