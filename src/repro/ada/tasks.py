"""Ada tasks mapped onto Pthreads threads.

Each :class:`AdaTask` wraps one thread plus its rendezvous state (a
mutex, an "accept" condition variable, and the entry queues).  The
*task shell* -- the thread body the runtime actually creates -- sets
Ada semantics up around the user's task body:

- a cleanup handler marks the task completed and releases any queued
  entry callers with TASKING_ERROR (it runs on normal completion,
  abort, and unhandled exceptions alike, because return-from-body is an
  implicit ``pthread_exit``);
- interruptibility is set to asynchronous, so ``abort`` (mapped onto
  ``pthread_cancel``) takes effect immediately, as Ada requires;
- on normal completion the task awaits its dependents (Ada's
  master/dependent rule); an aborting task aborts them.

Task bodies are generators ``body(ada, *args)`` receiving an
:class:`Ada` facade that extends the thread-level ``pt`` API with
tasking operations.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from repro.ada import rendezvous as rv
from repro.ada.exceptions import AdaException
from repro.core import config as cfg
from repro.core.tcb import Tcb
from repro.sim.ops import Invoke

_task_ids = itertools.count(1)


class TaskAborted(AdaException):
    """Raised in contexts that observe their own abort."""

    ada_name = "TASK_ABORTED"


class AdaTask:
    """One Ada task: a thread plus rendezvous state."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.task_id = next(_task_ids)
        self.name = name or "task-%d" % self.task_id
        self.tcb: Optional[Tcb] = None
        self.mutex = None  # created inside the spawner (simulated calls)
        self.accept_cond = None
        self.entries = rv.EntrySet()
        #: While the task blocks in accept/select, the entry names it
        #: offers (conditional entry calls test this).
        self.acceptor_waiting_on = None
        self.completed = False
        self.children: List["AdaTask"] = []
        self.parent: Optional["AdaTask"] = None
        self.result: Any = None

    @property
    def terminated(self) -> bool:
        tcb = self.tcb
        return self.completed and (tcb is None or not tcb.alive)

    def __repr__(self) -> str:
        return "AdaTask(%s, completed=%s)" % (self.name, self.completed)


class Ada:
    """The tasking facade handed to every task body."""

    def __init__(self, pt, task: AdaTask) -> None:
        self.pt = pt
        self.task = task

    # -- structure ---------------------------------------------------------

    def spawn(
        self,
        body: Callable,
        *args: Any,
        name: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> Invoke:
        """Declare-and-activate a dependent task; returns the AdaTask."""
        return Invoke(_spawn_body, (self.task, body, args, name, priority))

    def await_dependents(self) -> Invoke:
        """Block until every dependent task completes (master rule)."""
        return Invoke(_await_dependents_body, (self.task,))

    # -- rendezvous -----------------------------------------------------------

    def entry_call(self, callee: AdaTask, entry: str, *args: Any) -> Invoke:
        return Invoke(rv.entry_call_body, (callee, entry, args))

    def timed_entry_call(
        self, callee: AdaTask, entry: str, seconds: float, *args: Any
    ) -> Invoke:
        return Invoke(rv.timed_entry_call_body, (callee, entry, args, seconds))

    def conditional_entry_call(
        self, callee: AdaTask, entry: str, *args: Any
    ) -> Invoke:
        """``select call else``: rendezvous only if immediately ready."""
        return Invoke(rv.conditional_entry_call_body, (callee, entry, args))

    def accept(self, entry: str, handler: Optional[Callable] = None) -> Invoke:
        return Invoke(rv.accept_body, (self.task, entry, handler))

    def select(
        self,
        accepts: dict,
        delay_seconds: Optional[float] = None,
        else_part: bool = False,
    ) -> Invoke:
        return Invoke(
            rv.select_body, (self.task, accepts, delay_seconds, else_part)
        )

    # -- time and control --------------------------------------------------------

    def delay(self, seconds: float):
        """The Ada ``delay`` statement."""
        return self.pt.delay_us(seconds * 1e6)

    def abort(self, victim: AdaTask):
        """``abort victim``: cancellation, asynchronous."""
        return self.pt.cancel(victim.tcb)

    def __repr__(self) -> str:
        return "Ada(%s)" % self.task.name


# ---------------------------------------------------------------------------
# Shell and helpers (simulated-code generators)
# ---------------------------------------------------------------------------


def task_shell(pt, task: AdaTask, body: Callable, args: tuple):
    """The thread body wrapping every Ada task."""
    yield pt.cleanup_push(_completion_handler, task)
    yield pt.setintrtype(cfg.PTHREAD_INTR_ASYNCHRONOUS)
    ada = Ada(pt, task)
    result = yield from body(ada, *args)
    yield from _await_dependents_body(pt, task)
    task.result = result
    return result


def _completion_handler(pt, task: AdaTask):
    """Cleanup handler: completion processing (runs on every exit path)."""
    # Abort still-running dependents (Ada: abort is transitive).
    for child in task.children:
        if child.tcb is not None and child.tcb.alive:
            yield pt.cancel(child.tcb)
    err = yield pt.mutex_lock(task.mutex)
    task.completed = True
    yield pt.cond_broadcast(task.accept_cond)
    for call in task.entries.all_queued():
        yield pt.cond_signal(call.cond)
    task.entries.clear()
    if err == 0:
        yield pt.mutex_unlock(task.mutex)


def _spawn_body(pt, parent: AdaTask, body, args, name, priority):
    task = AdaTask(name)
    task.parent = parent
    if parent is not None:
        parent.children.append(task)
    task.mutex = yield pt.mutex_init()
    task.accept_cond = yield pt.cond_init()
    prio = priority if priority is not None else cfg.PTHREAD_DEFAULT_PRIORITY
    from repro.core.attr import ThreadAttr

    task.tcb = yield pt.create(
        task_shell,
        task,
        body,
        args,
        attr=ThreadAttr(priority=prio, name=task.name),
    )
    return task


def _await_dependents_body(pt, task: AdaTask):
    for child in list(task.children):
        if child.tcb is not None and not child.tcb.reclaimed:
            yield pt.join(child.tcb)
    return None
