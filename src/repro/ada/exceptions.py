"""Ada exceptions over simulated frames.

Ada exceptions are :class:`~repro.sim.frames.SimException` subclasses,
so they propagate across simulated call frames and are caught with
ordinary ``try``/``except`` inside task bodies.

Synchronous UNIX signals map onto the predefined exceptions
(``SIGFPE`` -> Constraint_Error, ``SIGSEGV``/``SIGBUS`` ->
Storage_Error, ``SIGILL`` -> Program_Error) through the mechanism the
paper describes: the signal's user handler issues a *redirect* so that,
after the handler returns, a raise routine runs at the interruption
point and the exception propagates from the faulting statement.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.sim.frames import SimException
from repro.unix.sigset import SIGBUS, SIGFPE, SIGILL, SIGSEGV


class AdaException(SimException):
    """Base of all Ada exceptions."""

    ada_name = "ADA_EXCEPTION"

    def __str__(self) -> str:
        detail = super().__str__()
        return self.ada_name if not detail else "%s: %s" % (
            self.ada_name, detail,
        )


class ConstraintError(AdaException):
    ada_name = "CONSTRAINT_ERROR"


class ProgramError(AdaException):
    ada_name = "PROGRAM_ERROR"


class StorageError(AdaException):
    ada_name = "STORAGE_ERROR"


class TaskingError(AdaException):
    ada_name = "TASKING_ERROR"


# The RM's predefined exceptions under their Ada names.
CONSTRAINT_ERROR = ConstraintError
PROGRAM_ERROR = ProgramError
STORAGE_ERROR = StorageError
TASKING_ERROR = TaskingError

#: Synchronous signal -> predefined exception (paper: "When a
#: synchronous signal is received, one needs to return from the user
#: handler and restore the previous frame before propagating the
#: exception corresponding to the signal").
SIGNAL_EXCEPTIONS: Dict[int, Type[AdaException]] = {
    SIGFPE: ConstraintError,
    SIGSEGV: StorageError,
    SIGBUS: StorageError,
    SIGILL: ProgramError,
}


def raise_routine(exc_class: Type[AdaException], detail: str = ""):
    """A redirect target that raises ``exc_class`` at the interruption
    point (runs as a simulated frame)."""

    def _raiser(pt):
        raise exc_class(detail)
        yield  # pragma: no cover - makes it a generator

    _raiser.__name__ = "raise_%s" % exc_class.ada_name.lower()
    return _raiser


def signal_exception_handler(pt, sig: int):
    """The user handler installed for synchronous signals: redirect to
    the raise routine for the mapped exception."""
    exc_class = SIGNAL_EXCEPTIONS.get(sig, ProgramError)
    yield pt.sig_redirect(raise_routine(exc_class, "signal %d" % sig))
