"""Rendezvous: entry calls and accept statements.

Ada tasks synchronise by *rendezvous*: a caller issues an entry call
and blocks; the callee accepts the entry, optionally executes a body
while the caller stays blocked (extended rendezvous), and both proceed.
Built entirely from Pthreads mutexes and condition variables, as the
paper's Ada runtime was.

Also implements Ada's *selective wait* (accept alternatives with an
optional delay or else part) and *timed entry calls*.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.ada.exceptions import AdaException, TaskingError
from repro.core.errors import ETIMEDOUT


class EntryCall:
    """One caller blocked in a rendezvous."""

    __slots__ = ("args", "cond", "done", "result", "exc", "cancelled")

    def __init__(self, args: tuple, cond: Any) -> None:
        self.args = args
        self.cond = cond  # signalled when the rendezvous completes
        self.done = False
        self.result: Any = None
        self.exc: Optional[AdaException] = None
        self.cancelled = False  # timed call withdrew


class EntrySet:
    """A task's entries, created lazily by name."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[EntryCall]] = {}

    def queue(self, name: str) -> Deque[EntryCall]:
        return self._queues.setdefault(name, deque())

    def pending(self, name: str) -> int:
        return len(self._queues.get(name, ()))

    def all_queued(self):
        for queue in self._queues.values():
            for call in queue:
                yield call

    def clear(self) -> None:
        self._queues.clear()


# ---------------------------------------------------------------------------
# Caller side
# ---------------------------------------------------------------------------


def entry_call_body(pt, callee, name: str, args: tuple):
    """``callee.name(args)``: block until the rendezvous completes."""
    yield pt.mutex_lock(callee.mutex)
    if callee.completed:
        yield pt.mutex_unlock(callee.mutex)
        raise TaskingError("entry call on completed task %s" % callee.name)
    call = EntryCall(args, cond=(yield pt.cond_init()))
    callee.entries.queue(name).append(call)
    yield pt.cond_signal(callee.accept_cond)
    while not call.done and not callee.completed:
        yield pt.cond_wait(call.cond, callee.mutex)
    yield pt.mutex_unlock(callee.mutex)
    if not call.done:
        raise TaskingError("task %s completed during rendezvous" % callee.name)
    if call.exc is not None:
        raise call.exc
    return call.result


def timed_entry_call_body(pt, callee, name: str, args: tuple, seconds: float):
    """Ada timed entry call: withdraw if not accepted in time.

    Returns ``(True, result)`` on rendezvous, ``(False, None)`` on
    timeout.
    """
    deadline_us = seconds * 1e6
    yield pt.mutex_lock(callee.mutex)
    if callee.completed:
        yield pt.mutex_unlock(callee.mutex)
        raise TaskingError("entry call on completed task %s" % callee.name)
    call = EntryCall(args, cond=(yield pt.cond_init()))
    queue = callee.entries.queue(name)
    queue.append(call)
    yield pt.cond_signal(callee.accept_cond)
    while not call.done and not callee.completed:
        err = yield pt.cond_timedwait(call.cond, callee.mutex, deadline_us)
        if err == ETIMEDOUT and not call.done:
            # Withdraw the call -- unless the acceptor already took it
            # off the queue (then the rendezvous must finish).
            if call in queue:
                queue.remove(call)
                call.cancelled = True
                yield pt.mutex_unlock(callee.mutex)
                return (False, None)
    yield pt.mutex_unlock(callee.mutex)
    if not call.done:
        raise TaskingError("task %s completed during rendezvous" % callee.name)
    if call.exc is not None:
        raise call.exc
    return (True, call.result)


def conditional_entry_call_body(pt, callee, name: str, args: tuple):
    """Ada conditional entry call (``select call else ...``).

    The call proceeds only if the callee is *immediately* ready to
    accept -- i.e. it is blocked in an accept/selective wait offering
    this entry.  Returns ``(True, result)`` or ``(False, None)``.
    """
    yield pt.mutex_lock(callee.mutex)
    ready = (
        not callee.completed
        and callee.acceptor_waiting_on is not None
        and name in callee.acceptor_waiting_on
    )
    if not ready:
        yield pt.mutex_unlock(callee.mutex)
        return (False, None)
    call = EntryCall(args, cond=(yield pt.cond_init()))
    callee.entries.queue(name).append(call)
    yield pt.cond_signal(callee.accept_cond)
    while not call.done and not callee.completed:
        yield pt.cond_wait(call.cond, callee.mutex)
    yield pt.mutex_unlock(callee.mutex)
    if not call.done:
        raise TaskingError("task %s completed during rendezvous" % callee.name)
    if call.exc is not None:
        raise call.exc
    return (True, call.result)


# ---------------------------------------------------------------------------
# Acceptor side
# ---------------------------------------------------------------------------


def accept_body(pt, task, name: str, handler):
    """``accept name`` [``do`` handler]: complete one rendezvous.

    With no handler this is a simple rendezvous (returns the caller's
    args); with a handler, an extended rendezvous: ``handler(pt,
    *args)`` runs while the caller stays blocked, and its return value
    becomes the caller's result.  An :class:`AdaException` in the
    handler propagates in *both* tasks, per the RM.
    """
    yield pt.mutex_lock(task.mutex)
    queue = task.entries.queue(name)
    task.acceptor_waiting_on = {name}
    while not queue:
        yield pt.cond_wait(task.accept_cond, task.mutex)
    task.acceptor_waiting_on = None
    call = queue.popleft()
    yield pt.mutex_unlock(task.mutex)
    result, exc = None, None
    if handler is not None:
        try:
            result = yield pt.call(handler, *call.args)
        except AdaException as caught:
            exc = caught
    yield pt.mutex_lock(task.mutex)
    call.result = result
    call.exc = exc
    call.done = True
    yield pt.cond_signal(call.cond)
    yield pt.mutex_unlock(task.mutex)
    if exc is not None:
        raise exc
    return call.args if handler is None else result


def select_body(pt, task, accepts, delay_seconds, else_part):
    """Ada selective wait.

    ``accepts`` maps entry names to handlers (or None).  Returns a
    triple ``(kind, name, value)`` where kind is ``"accept"``,
    ``"delay"`` (the delay alternative expired) or ``"else"``.
    """
    deadline_us = None if delay_seconds is None else delay_seconds * 1e6
    yield pt.mutex_lock(task.mutex)
    while True:
        for name, handler in accepts.items():
            if task.entries.pending(name):
                task.acceptor_waiting_on = None
                call = task.entries.queue(name).popleft()
                yield pt.mutex_unlock(task.mutex)
                result, exc = None, None
                if handler is not None:
                    try:
                        result = yield pt.call(handler, *call.args)
                    except AdaException as caught:
                        exc = caught
                yield pt.mutex_lock(task.mutex)
                call.result = result
                call.exc = exc
                call.done = True
                yield pt.cond_signal(call.cond)
                yield pt.mutex_unlock(task.mutex)
                if exc is not None:
                    raise exc
                value = call.args if handler is None else result
                return ("accept", name, value)
        if else_part:
            yield pt.mutex_unlock(task.mutex)
            return ("else", None, None)
        task.acceptor_waiting_on = set(accepts)
        if deadline_us is not None:
            err = yield pt.cond_timedwait(
                task.accept_cond, task.mutex, deadline_us
            )
            if err == ETIMEDOUT:
                task.acceptor_waiting_on = None
                yield pt.mutex_unlock(task.mutex)
                return ("delay", None, None)
        else:
            yield pt.cond_wait(task.accept_cond, task.mutex)
