"""The Ada runtime system object.

Owns a Pthreads runtime, installs the synchronous-signal-to-exception
mapping, and starts the *environment task* (the Ada main program).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.ada import tasks as _tasks
from repro.ada.exceptions import SIGNAL_EXCEPTIONS, signal_exception_handler
from repro.core import config as cfg
from repro.core.fakecall import UserAction
from repro.core.runtime import PthreadsRuntime


class AdaRuntime:
    """An Ada tasking runtime layered on one Pthreads runtime."""

    def __init__(self, model: str = "sparc-ipx", **runtime_kwargs: Any) -> None:
        self.rt = PthreadsRuntime(model=model, **runtime_kwargs)
        # Synchronous signals become predefined exceptions via the
        # fake-call redirect feature.
        for sig in SIGNAL_EXCEPTIONS:
            self.rt.user_actions[sig] = UserAction(signal_exception_handler)
        self.environment_task: Optional[_tasks.AdaTask] = None

    def main_task(
        self,
        body: Callable,
        *args: Any,
        name: str = "environment",
        priority: int = cfg.PTHREAD_DEFAULT_PRIORITY,
    ) -> _tasks.AdaTask:
        """Create the environment task running ``body(ada, *args)``."""
        if self.environment_task is not None:
            raise RuntimeError("environment task already created")
        task = _tasks.AdaTask(name)
        task.tcb = self.rt.main(
            _environment_shell,
            task,
            body,
            args,
            name=name,
            priority=priority,
        )
        self.environment_task = task
        return task

    def run(self, **kwargs: Any) -> None:
        """Run until the whole program (all tasks) completes."""
        self.rt.run(**kwargs)

    @property
    def world(self):
        return self.rt.world

    def __repr__(self) -> str:
        return "AdaRuntime(%r)" % (self.rt,)


def _environment_shell(pt, task: _tasks.AdaTask, body, args):
    """Bootstrap frame: the environment task must create its own
    rendezvous objects before the generic shell can run."""
    task.mutex = yield pt.mutex_init()
    task.accept_cond = yield pt.cond_init()
    result = yield from _tasks.task_shell(pt, task, body, args)
    return result
