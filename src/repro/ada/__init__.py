"""An Ada-83-style tasking runtime layered on Pthreads.

The paper's library exists to host an Ada runtime system: "It has been
used successfully in an effort to implement an Ada runtime system on
top of Pthreads ... and to show that the overhead of layering a runtime
system on top of Pthreads is not prohibitive."  This package is that
layer, scaled to the features the paper names:

- tasks mapped one-to-one onto threads (:mod:`repro.ada.tasks`);
- rendezvous -- entry calls (plain, timed, and conditional), accept
  statements with extended-rendezvous semantics, and selective wait
  (:mod:`repro.ada.rendezvous`);
- delay statements over the library timer queue (``Ada.delay``);
- abort via thread cancellation (:mod:`repro.ada.tasks`);
- exception propagation out of signal handlers using the
  implementation-defined *redirect* feature of fake calls plus
  setjmp-style unwinding (:mod:`repro.ada.exceptions`) -- the exact
  mechanism the paper says the redirect feature is "essential" for.
"""

from repro.ada.exceptions import (
    AdaException,
    CONSTRAINT_ERROR,
    PROGRAM_ERROR,
    STORAGE_ERROR,
    TASKING_ERROR,
)
from repro.ada.runtime import AdaRuntime
from repro.ada.tasks import AdaTask, TaskAborted

__all__ = [
    "AdaException",
    "AdaRuntime",
    "AdaTask",
    "CONSTRAINT_ERROR",
    "PROGRAM_ERROR",
    "STORAGE_ERROR",
    "TASKING_ERROR",
    "TaskAborted",
]
