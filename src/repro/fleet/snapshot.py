"""Prefix-snapshot execution engine for the explorer's decision tree.

The DFS in :meth:`repro.check.explore.Explorer.explore_dfs` replays a
shared decision prefix from an empty world for every child schedule:
O(depth^2) total work.  A simulated world cannot be deep-copied -- the
thread bodies are *live generators* -- so the only faithful checkpoint
of a run in progress is the process itself.  This engine leans on
``fork(2)`` exactly the way stateless model checkers in the Sthread
tradition do:

- A **runner** process executes one decision vector via the unmodified
  ``Explorer.run_once``.  At stride-spaced choice points it forks; the
  child becomes a **checkpoint**: a process paused inside ``choose()``
  holding the complete simulation state for that decision prefix,
  copy-on-write cheap.
- Checkpoints register with the controller (key = the chosen-decision
  prefix, plus a :meth:`~repro.core.runtime.PthreadsRuntime.state_digest`
  for integrity tests) and then wait.  To run a vector that shares the
  prefix, the controller picks the deepest *consistent* checkpoint and
  sends it the new vector; the checkpoint forks a fresh runner that
  rewrites its scripted decisions and simply keeps simulating from the
  choice point -- the shared prefix is never re-executed.
- Results come back over a transient socket, tagged with how many
  simulator steps the resumed run actually executed, so the saving is
  measurable (``fleet.steps_executed`` vs ``fleet.steps_full``).

Determinism contract: a resumed run and a replay-from-scratch of the
same vector are *the same computation* -- the checkpoint's past is an
actual execution of the shared prefix, and ``fork`` preserves every
byte of it (including the interpreter's hash seed).  The controller
additionally re-runs any vector whose worker fails in-process, so the
caller always gets exactly the result sequential execution would have
produced.

Consistency rule: checkpoint key ``k`` can serve vector ``D`` iff for
every ``i < len(k)``, ``k[i] == (D[i] if i < len(D) else 0)`` -- past
the end of a DFS vector every decision defaults to 0.  DFS vectors are
built from recorded (already clamped) choices, so raw equality is
exact; for arbitrary vectors it is conservative (may miss reuse, never
resumes a wrong state).

Process hygiene: the controller forks once per :meth:`start` (a
double-fork, immediately reaped); everything else descends from the
orphaned *genesis* process, ignores ``SIGCHLD`` so its own children
self-reap, exits only through ``os._exit``, and treats socket EOF from
the controller as an order to die.  Nothing here touches
``multiprocessing`` state in the controller process.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import tempfile
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.ipc import recv_msg, send_msg

Key = Tuple[int, ...]


class EngineError(Exception):
    """The engine cannot serve runs; the caller should run in-process."""


def _consistent(key: Key, decisions: Sequence[int]) -> bool:
    """May a checkpoint with ``key`` serve ``decisions``? (see module doc)"""
    for i, chosen in enumerate(key):
        scripted = decisions[i] if i < len(decisions) else 0
        if chosen != scripted:
            return False
    return True


class _Checkpoint:
    """Controller-side handle on one paused checkpoint process."""

    __slots__ = ("conn", "key", "depth", "digest", "pid")

    def __init__(self, conn, key: Key, depth: int, digest: str, pid: int):
        self.conn = conn
        self.key = key
        self.depth = depth
        self.digest = digest
        self.pid = pid


class EngineChild:
    """Worker-side state threaded through ``Explorer.run_once``.

    Installed as the :class:`~repro.check.schedule.ScriptedChoices`
    ``before_choice`` hook; decides where to fork checkpoints and, in a
    resumed process, carries the new request's identity back to the
    runner frame that sends the result.
    """

    def __init__(
        self,
        path: str,
        req: int,
        have_depths: Sequence[int],
        stride: int,
        cap: int,
        max_depth: int,
        digest: bool = False,
    ) -> None:
        self.path = path
        self.req = req
        #: Depths at which the controller already holds a checkpoint
        #: consistent with this run's vector.  A consistent cached key
        #: at depth ``d`` *is* this run's own prefix at ``d`` (that is
        #: what consistency means), so a depth is a complete identifier
        #: -- no need to ship whole prefix tuples to every worker.
        self.have_depths = set(have_depths)
        self.stride = stride
        self.cap = cap
        self.max_depth = max_depth
        self.digest = digest
        self.created = 0
        self.resumed_depth: Optional[int] = None
        self.steps_at_resume = 0
        self._next_rel = stride
        self._choices = None
        self._runtime = None

    def attach(self, choices, runtime) -> None:
        self._choices = choices
        self._runtime = runtime
        choices.before_choice = self._at_choice_point

    def _at_choice_point(self, index: int) -> None:
        # Checkpoint placement: geometrically growing offsets from the
        # resume point (stride, 2*stride, 4*stride, ... choice points
        # past it).  The DFS visits deepest flips first, so the depths
        # just past where *this* run resumed are exactly where its
        # siblings will want to resume -- dense coverage there, log-
        # sparse further out, O(log depth) forks per run total.
        if self.stride <= 0 or self.created >= self.cap:
            return
        rel = index - (self.resumed_depth or 0)
        if rel != self._next_rel or index >= self.max_depth:
            return
        self._next_rel *= 2
        if index in self.have_depths:
            return  # the controller already holds this prefix
        self.have_depths.add(index)
        self.created += 1
        key = tuple(self._choices.vector)  # trail so far == prefix key
        if os.fork() != 0:
            return  # the runner carries on simulating immediately
        # Child: becomes the checkpoint for ``key``.  Only a *resumed*
        # grandchild ever returns from this call (back into choose()).
        self._become_checkpoint(index, key)

    def _become_checkpoint(self, index: int, key: Key) -> None:
        try:
            digest = self._runtime.state_digest() if self.digest else None
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.connect(self.path)
            send_msg(
                conn,
                {
                    "type": "register",
                    "key": key,
                    "depth": index,
                    "digest": digest,
                    "pid": os.getpid(),
                },
            )
            while True:
                msg = recv_msg(conn)
                if msg is None or msg["type"] == "die":
                    os._exit(0)
                if msg["type"] != "resume":
                    continue
                if os.fork() != 0:
                    continue  # checkpoint stays paused, serves more resumes
                # Resumed runner: adopt the new request and vector, then
                # return into choose() at ``index`` -- the simulation
                # continues as if it had been scripted this way all along.
                conn.close()
                self.req = msg["req"]
                self.have_depths = set(msg["have"])
                self.created = 0
                self.resumed_depth = index
                self.steps_at_resume = self._runtime.steps
                self._next_rel = self.stride
                self._choices.decisions = list(msg["decisions"])
                return
        except BaseException:
            os._exit(1)


class SnapshotEngine:
    """Controller for a fleet of checkpoint/runner processes.

    Parameters
    ----------
    explorer:
        The :class:`~repro.check.explore.Explorer` whose ``run_once``
        defines the computation.  Workers inherit it (and the workload
        factory closures pickle would refuse) through ``fork``.
    jobs:
        Maximum outstanding runs; ``prefetch`` speculates up to this
        many frontier entries ahead of the sequential consumer.
    snapshot:
        When False, workers never fork checkpoints -- the engine is a
        pure parallel fan-out from the empty world.
    stride / cap / lru:
        Checkpoint placement: fork every ``stride``-th choice depth, at
        most ``cap`` per run, keeping at most ``lru`` checkpoints alive
        (least-recently-used eviction).
    """

    def __init__(
        self,
        explorer,
        jobs: int = 1,
        snapshot: bool = True,
        stride: int = 4,
        cap: int = 24,
        lru: int = 48,
        stats: Optional[Any] = None,
        timeout: float = 60.0,
        digest: bool = False,
    ) -> None:
        self._explorer = explorer
        self.jobs = max(1, jobs)
        #: Speculating past the core count cannot overlap anything --
        #: on a 1-core host every mispredicted speculative run is pure
        #: added wall-clock -- so the effective speculation depth is
        #: bounded by the hardware, whatever ``jobs`` asks for.
        self.speculation = min(self.jobs, os.cpu_count() or 1)
        self.stride = stride if snapshot else 0
        self.cap = cap
        self.lru_size = lru
        self.stats = stats
        self.timeout = timeout
        self.digest = digest
        self._dir: Optional[str] = None
        self._path: Optional[str] = None
        self._listener: Optional[socket.socket] = None
        self._genesis: Optional[socket.socket] = None
        self._lru: "OrderedDict[Key, _Checkpoint]" = OrderedDict()
        self._unclassified: List[socket.socket] = []
        self._results: Dict[Key, Tuple[Any, int, Optional[int]]] = {}
        self._errors: Dict[Key, str] = {}
        self._pending: Dict[int, Key] = {}
        self._pending_keys: Dict[Key, int] = {}
        self._req = 0
        self._broken = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> bool:
        """Launch the genesis worker; False means run in-process instead."""
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
            return False
        self._dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self._path = os.path.join(self._dir, "engine.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self._path)
        listener.listen(128)
        self._listener = listener
        # Double fork: the intermediate exits at once (and is reaped at
        # once), so genesis and every process below it belong to init,
        # never to the controller -- no zombies, no SIGCHLD surprises
        # for multiprocessing users in this process.
        pid = os.fork()
        if pid == 0:
            try:
                if os.fork() == 0:
                    self._genesis_main()  # never returns
            except BaseException:
                pass
            os._exit(0)
        os.waitpid(pid, 0)
        conn = self._await_genesis()
        if conn is None:
            self.close()
            return False
        self._genesis = conn
        if self.stats is not None:
            self.stats.backend = "engine"
            self.stats.jobs = self.jobs
        return True

    def _await_genesis(self) -> Optional[socket.socket]:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            ready, __, __ = select.select([self._listener], [], [], 0.5)
            if not ready:
                continue
            conn, __ = self._listener.accept()
            conn.settimeout(30.0)
            try:
                msg = recv_msg(conn)
            except (OSError, ValueError):
                conn.close()
                continue
            if msg is not None and msg.get("type") == "hello-genesis":
                return conn
            self._unclassified.append(conn)  # an early checkpoint, keep it
        return None

    def _genesis_main(self) -> None:
        """Root worker: serves empty-prefix runs (never returns)."""
        try:
            signal.signal(signal.SIGCHLD, signal.SIG_IGN)  # self-reap runners
            self._listener.close()  # inherited copy; controller owns it
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.connect(self._path)
            send_msg(conn, {"type": "hello-genesis"})
            while True:
                msg = recv_msg(conn)
                if msg is None or msg["type"] == "die":
                    os._exit(0)
                if msg["type"] == "resume" and os.fork() == 0:
                    self._runner_main(conn, msg)  # never returns
        except BaseException:
            os._exit(1)

    def _runner_main(self, inherited_conn, msg) -> None:
        """Execute one vector and report; runs in a fresh fork."""
        child = EngineChild(
            self._path,
            msg["req"],
            msg["have"],
            stride=self.stride,
            cap=self.cap,
            max_depth=self._explorer.max_depth,
            digest=self.digest,
        )
        try:
            inherited_conn.close()
            result = self._explorer.run_once(
                list(msg["decisions"]), _engine_child=child
            )
            out = {
                "type": "result",
                "req": child.req,
                "result": result,
                "executed": result.steps - child.steps_at_resume,
                "resumed": child.resumed_depth,
            }
        except BaseException:
            out = {
                "type": "error",
                "req": child.req,
                "detail": traceback.format_exc(),
            }
        try:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.connect(self._path)
            send_msg(conn, out)
            conn.close()
        except BaseException:
            pass
        os._exit(0)

    def close(self) -> None:
        """Tear the fleet down (checkpoints die on DIE or on our EOF)."""
        if self.stats is not None:
            self.stats.speculative_waste += len(self._results) + len(
                self._pending
            )
        for handle in self._lru.values():
            self._send_quietly(handle.conn, {"type": "die"})
        self._lru.clear()
        if self._genesis is not None:
            self._send_quietly(self._genesis, {"type": "die"})
            self._genesis = None
        for conn in self._unclassified:
            conn.close()
        self._unclassified = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._path is not None and os.path.exists(self._path):
            os.unlink(self._path)
        if self._dir is not None and os.path.isdir(self._dir):
            os.rmdir(self._dir)
        self._dir = self._path = None

    @staticmethod
    def _send_quietly(conn, msg) -> None:
        try:
            send_msg(conn, msg)
        except OSError:
            pass
        conn.close()

    # -- running vectors -----------------------------------------------------

    def run(self, decisions: Sequence[int]):
        """The result for ``decisions`` -- exactly what ``run_once`` gives.

        Serves from the speculative cache, dispatches and waits
        otherwise, and silently re-runs in-process on any engine
        trouble: the caller cannot observe which path was taken except
        through the stats.
        """
        key = tuple(decisions)
        stats = self.stats
        if key not in self._results and key not in self._errors:
            if not self._broken and key not in self._pending_keys:
                try:
                    self._dispatch(key)
                except EngineError:
                    self._broken = True
            deadline = time.monotonic() + self.timeout
            while (
                not self._broken
                and key not in self._results
                and key not in self._errors
            ):
                if not self._pump(deadline):
                    self._broken = True
        if key in self._results:
            result, executed, resumed = self._results.pop(key)
            if stats is not None:
                stats.tasks += 1
                stats.steps_executed += executed
                stats.steps_full += result.steps
                if resumed is not None:
                    stats.snapshot_hits += 1
            return result
        # Worker error, engine breakdown, or timeout: run it here.  The
        # computation is identical, so the report stays byte-identical.
        self._errors.pop(key, None)
        self._forget_pending(key)
        result = self._explorer.run_once(list(decisions))
        if stats is not None:
            stats.tasks += 1
            stats.fallbacks += 1
            stats.steps_executed += result.steps
            stats.steps_full += result.steps
        return result

    def prefetch(self, upcoming: Sequence[Sequence[int]]) -> None:
        """Speculatively dispatch future frontier entries (LIFO order).

        Safe for byte-identity: results land in a cache the sequential
        consumer drains in its own order; unconsumed ones are counted
        as :attr:`~repro.fleet.FleetStats.speculative_waste`.
        """
        if self._broken:
            return
        budget = self.speculation - len(self._pending)
        for decisions in reversed(list(upcoming)):
            if budget <= 0:
                return
            key = tuple(decisions)
            if (
                key in self._results
                or key in self._errors
                or key in self._pending_keys
            ):
                continue
            try:
                self._dispatch(key)
            except EngineError:
                self._broken = True
                return
            budget -= 1

    def checkpoint_digests(self) -> Dict[Key, str]:
        """Key -> state digest of every live checkpoint (for tests)."""
        return {key: cp.digest for key, cp in self._lru.items()}

    # -- internals -----------------------------------------------------------

    def _dispatch(self, key: Key) -> None:
        self._req += 1
        req = self._req
        msg = {
            "type": "resume",
            "req": req,
            "decisions": list(key),
            # Only consistent cached prefixes matter to this run (they
            # are the ones it could duplicate), and each is identified
            # by its depth alone -- see EngineChild.have_depths.
            "have": {
                len(k) for k in self._lru if _consistent(k, key)
            },
        }
        while True:
            base = self._best_checkpoint(key)
            if base is None:
                if self._genesis is None:
                    raise EngineError("no genesis worker")
                try:
                    send_msg(self._genesis, msg)
                except OSError as exc:
                    raise EngineError("genesis is gone: %s" % exc)
                break
            try:
                send_msg(base.conn, msg)
                break
            except OSError:
                self._drop_checkpoint(base.key)  # stale; try the next one
        self._pending[req] = key
        self._pending_keys[key] = req

    def _best_checkpoint(self, key: Key) -> Optional[_Checkpoint]:
        best = None
        for cand_key, handle in self._lru.items():
            if _consistent(cand_key, key):
                if best is None or handle.depth > best.depth:
                    best = handle
        if best is not None:
            self._lru.move_to_end(best.key)
        return best

    def _drop_checkpoint(self, key: Key) -> None:
        handle = self._lru.pop(key, None)
        if handle is not None:
            handle.conn.close()

    def _forget_pending(self, key: Key) -> None:
        req = self._pending_keys.pop(key, None)
        if req is not None:
            self._pending.pop(req, None)

    def _pump(self, deadline: float) -> bool:
        """Wait for and handle at least one message; False on deadline."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            sockets = [self._listener]
            if self._genesis is not None:
                sockets.append(self._genesis)
            sockets.extend(cp.conn for cp in self._lru.values())
            sockets.extend(self._unclassified)
            try:
                ready, __, __ = select.select(
                    sockets, [], [], min(0.5, remaining)
                )
            except OSError:
                return False
            if not ready:
                continue
            handled = False
            for sock in ready:
                handled |= self._service(sock)
            if handled:
                return True

    def _service(self, sock) -> bool:
        if sock is self._listener:
            conn, __ = self._listener.accept()
            conn.settimeout(30.0)
            self._unclassified.append(conn)
            return False  # not a message yet; keep pumping
        if sock is self._genesis:
            # Genesis never speaks after hello: readable means it died.
            self._genesis.close()
            self._genesis = None
            self._broken = True
            return True
        try:
            msg = recv_msg(sock)
        except (OSError, ValueError):
            msg = None
        if sock in self._unclassified:
            self._unclassified.remove(sock)
            if msg is None:
                sock.close()
                return False
            return self._classify(sock, msg)
        # A checkpoint connection: only EOF/garbage is possible.
        for key, handle in list(self._lru.items()):
            if handle.conn is sock:
                self._drop_checkpoint(key)
                return True
        sock.close()
        return False

    def _classify(self, conn, msg) -> bool:
        kind = msg.get("type")
        if kind == "register":
            key = tuple(msg["key"])
            if key in self._lru:
                self._send_quietly(conn, {"type": "die"})  # duplicate
                return True
            self._lru[key] = _Checkpoint(
                conn, key, msg["depth"], msg["digest"], msg["pid"]
            )
            if self.stats is not None:
                self.stats.snapshots_created += 1
            while len(self._lru) > self.lru_size:
                __, evicted = self._lru.popitem(last=False)
                self._send_quietly(evicted.conn, {"type": "die"})
                if self.stats is not None:
                    self.stats.snapshot_evictions += 1
            return True
        if kind in ("result", "error"):
            conn.close()
            key = self._pending.pop(msg["req"], None)
            if key is None:
                # A run we already gave up on (fallback raced it).
                if self.stats is not None:
                    self.stats.speculative_waste += 1
                return True
            self._pending_keys.pop(key, None)
            if kind == "result":
                self._results[key] = (
                    msg["result"],
                    msg["executed"],
                    msg["resumed"],
                )
            else:
                self._errors[key] = msg["detail"]
            return True
        conn.close()
        return False

    def __enter__(self) -> "SnapshotEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
