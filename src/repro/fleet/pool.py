"""Ordered process-pool fan-out for independent simulation tasks.

:class:`FleetPool` runs ``fn(payload)`` for a sequence of payloads and
yields the results **in payload order**, regardless of which worker
finished first.  That ordering is the whole determinism contract: a
consumer that reads the iterator sees exactly the sequence a plain
``for`` loop would have produced, so a parallel sweep's report is
byte-identical to the sequential one.

The pool uses the ``fork`` start method and passes ``fn`` to workers by
*inheritance* (a module global captured at fork time), not by pickling
-- the sweeps' task functions are closures over workload factories that
pickle refuses.  Only payloads and results cross process boundaries,
and both are plain data.

Anything that prevents real processes -- ``jobs <= 1``, a platform
without ``fork``, a failing ``Pool`` construction -- degrades to an
in-process sequential loop with identical output.  A task that dies in
a worker is rerun in-process (and counted in
:attr:`~repro.fleet.FleetStats.fallbacks`), so one bad fork never loses
a sweep.
"""

from __future__ import annotations

import gc
import multiprocessing
import traceback
from typing import Any, Callable, Iterable, Iterator, Optional

#: The task function workers inherit at fork time.  A module global
#: (rather than a Pool argument) because closures are not picklable;
#: set by the parent immediately before the fork that creates the
#: workers, so every worker sees the right function.
_WORKER_FN: Optional[Callable[[Any], Any]] = None
_WORKER_GC_OFF = False


def _worker_init() -> None:
    if _WORKER_GC_OFF:
        # Short-lived workers never reach a collection that matters;
        # skipping cycle detection is a free constant-factor win.
        gc.disable()


def _invoke(payload: Any) -> Any:
    try:
        return ("ok", _WORKER_FN(payload))
    except BaseException:
        return ("err", traceback.format_exc())


class FleetPool:
    """Run ``fn`` over payloads on up to ``jobs`` worker processes.

    Parameters
    ----------
    fn:
        The task function.  Must be pure with respect to the parent's
        mutable state: workers run forked copies, so writes they make
        are invisible to the parent (and to each other).
    jobs:
        Requested worker-process count; ``<= 1`` means run in-process.
        The effective count is capped at the host's core count: extra
        workers on a saturated host cannot run concurrently, so they
        only add fork and IPC overhead (on a single-core host a
        ``jobs=4`` sweep was *slower* than sequential).  When the cap
        leaves one worker, the pool degrades to the in-process loop --
        same results, no fork tax.
    fresh_workers:
        Give every task a brand-new process (``maxtasksperchild=1``)
        with the garbage collector off.  Costs a fork per task; buys
        total isolation and no GC pauses.
    stats:
        Optional :class:`~repro.fleet.FleetStats` to fill in.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        jobs: int = 1,
        fresh_workers: bool = False,
        stats: Optional[Any] = None,
        oversubscribe: bool = False,
    ) -> None:
        self.fn = fn
        self.jobs = max(1, jobs)
        if not oversubscribe:
            # ``oversubscribe=True`` is for tests that must exercise
            # the worker machinery regardless of the host's shape.
            self.jobs = min(self.jobs, multiprocessing.cpu_count())
        self.fresh_workers = fresh_workers
        self.stats = stats
        self._pool = None
        if self.jobs > 1:
            self._pool = self._make_pool()
        if stats is not None:
            stats.backend = "pool" if self._pool is not None else "inproc"
            stats.jobs = self.jobs if self._pool is not None else 1

    def _make_pool(self):
        global _WORKER_FN, _WORKER_GC_OFF
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            return None
        _WORKER_FN = self.fn
        _WORKER_GC_OFF = self.fresh_workers
        try:
            return ctx.Pool(
                processes=self.jobs,
                initializer=_worker_init,
                maxtasksperchild=1 if self.fresh_workers else None,
            )
        except OSError:  # pragma: no cover - fork refused at runtime
            return None

    def imap(self, payloads: Iterable[Any]) -> Iterator[Any]:
        """Yield ``fn(payload)`` results in payload order (lazily)."""
        stats = self.stats
        if self._pool is None:
            for payload in payloads:
                if stats is not None:
                    stats.tasks += 1
                yield self.fn(payload)
            return
        payloads = list(payloads)
        # Batch the IPC: one pickle round-trip per chunk instead of per
        # cell.  Four chunks per worker keeps load balancing while
        # cutting the per-task transport that dominated short cells.
        # ``fresh_workers`` promises a new process per *payload*, so it
        # keeps chunks of one.
        if self.fresh_workers:
            chunksize = 1
        else:
            chunksize = max(1, len(payloads) // (self.jobs * 4))
        for payload, outcome in zip(
            payloads, self._pool.imap(_invoke, payloads, chunksize)
        ):
            if stats is not None:
                stats.tasks += 1
            if outcome[0] == "ok":
                yield outcome[1]
            else:
                # The worker died on this payload; the task function is
                # pure, so running it here gives the identical result.
                if stats is not None:
                    stats.fallbacks += 1
                yield self.fn(payload)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "FleetPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
