"""Deterministic parallel execution for sweeps (the *fleet* layer).

The explorer (:mod:`repro.check`) and the scenario comparator
(:mod:`repro.net`) both run many independent simulated worlds and then
read the results in a fixed order.  This package makes those sweeps
scale with host cores without giving up a byte of determinism:

- :class:`FleetPool` (:mod:`repro.fleet.pool`) fans *independent* tasks
  across a ``multiprocessing`` fork pool and yields results **in task
  order**, falling back to plain in-process execution when processes
  are unavailable.  Output is byte-identical to sequential by
  construction: the consumer sees exactly the sequence it would have
  computed itself.
- :class:`SnapshotEngine` (:mod:`repro.fleet.snapshot`) accelerates
  *dependent* sweeps -- the explorer's DFS, where every child schedule
  shares a decision prefix with its parent.  Worker processes pause
  forked copies of themselves at choice points (``fork(2)`` is the only
  way to checkpoint a live generator-based simulation); the engine
  resumes the deepest consistent checkpoint instead of replaying the
  shared prefix from an empty world, turning O(depth^2) total replay
  into ~O(depth).

Both backends report what they did through :class:`FleetStats`, which
:func:`repro.obs.core.Observability.harvest_fleet` turns into
``fleet.*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FleetStats:
    """What a fleet-backed sweep actually did (observability payload).

    ``steps_full`` is what every consumed run would have cost executed
    from an empty world; ``steps_executed`` is what was actually
    simulated after snapshot reuse.  The gap is the prefix-replay work
    the snapshot engine saved.
    """

    backend: str = "inproc"  # "inproc" | "pool" | "engine"
    jobs: int = 1
    tasks: int = 0  # results consumed by the caller
    speculative_waste: int = 0  # completed results the caller never used
    fallbacks: int = 0  # tasks rerun in-process after a worker problem
    snapshots_created: int = 0
    snapshot_hits: int = 0  # runs resumed from a checkpoint
    snapshot_evictions: int = 0  # checkpoints discarded by the LRU bound
    steps_executed: int = 0  # simulator steps actually run
    steps_full: int = 0  # steps a replay-from-scratch would have run

    @property
    def steps_saved(self) -> int:
        return self.steps_full - self.steps_executed


from repro.fleet.pool import FleetPool  # noqa: E402  (re-export)
from repro.fleet.snapshot import EngineError, SnapshotEngine  # noqa: E402

__all__ = ["FleetStats", "FleetPool", "SnapshotEngine", "EngineError"]
