"""Tiny framed-pickle protocol for the snapshot engine's sockets.

Every message on an engine socket is a 4-byte big-endian length header
followed by that many bytes of pickle.  Messages are dicts with a
``"type"`` key; the payload types are plain data (decision vectors,
:class:`~repro.check.explore.RunResult` instances, strings), so the
default pickle protocol handles them.

:func:`recv_msg` returns ``None`` on a clean EOF -- a peer that went
away is an ordinary condition here (checkpoints die on eviction, the
controller dies when its sweep ends), not an error.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional

_HEADER = struct.Struct(">I")

#: Refuse absurd frames (a desynced stream would otherwise ask us to
#: allocate gigabytes).  Engine messages are at most a few kilobytes.
MAX_FRAME = 64 * 1024 * 1024


def send_msg(conn: socket.socket, msg: Any) -> None:
    """Send one framed message (raises OSError if the peer is gone)."""
    payload = pickle.dumps(msg)
    conn.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(conn: socket.socket) -> Optional[Any]:
    """Receive one framed message; None on EOF before a full frame."""
    header = _recv_exact(conn, _HEADER.size)
    if header is None:
        return None
    (size,) = _HEADER.unpack(header)
    if size > MAX_FRAME:
        raise ValueError("oversized engine frame: %d bytes" % size)
    payload = _recv_exact(conn, size)
    if payload is None:
        return None
    return pickle.loads(payload)
