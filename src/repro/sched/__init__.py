"""Scheduling policies, including the paper's perverted debugging set."""

from repro.sched.perverted import (
    MutexSwitchPolicy,
    RandomSwitchPolicy,
    RoundRobinOrderedSwitchPolicy,
    make_policy,
)
from repro.sched.policies import SchedulingPolicy

__all__ = [
    "MutexSwitchPolicy",
    "RandomSwitchPolicy",
    "RoundRobinOrderedSwitchPolicy",
    "SchedulingPolicy",
    "make_policy",
]
