"""Scheduling policy hooks.

The library's default behaviour (priority-driven, FIFO within a level,
optional round-robin slicing) needs no policy object at all.  A policy
plugs extra behaviour into three points:

- :meth:`on_kernel_exit` -- every time the library kernel is left;
- :meth:`on_mutex_acquired` -- every successful mutex lock;
- :meth:`select` -- may override which ready thread runs next.

The perverted debugging policies (:mod:`repro.sched.perverted`) use
these hooks to force context switches at the paper's chosen points.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime
    from repro.core.tcb import Tcb


class SchedulingPolicy:
    """Base policy: plain priority scheduling (all hooks no-ops)."""

    name = "default"

    def on_kernel_exit(self, runtime: "PthreadsRuntime") -> None:
        """Called from ``LibKernel.leave`` before the dispatcher check."""

    def on_mutex_acquired(self, runtime: "PthreadsRuntime") -> None:
        """Called after every successful mutex lock."""

    def select(self, runtime: "PthreadsRuntime") -> Optional["Tcb"]:
        """Override the dispatcher's pick.  Return a thread from the
        ready queue (do not remove it), or None for the default."""
        return None
