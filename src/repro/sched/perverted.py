"""Perverted scheduling: simulating parallelism to flush out races.

The paper extends the library with three deliberately hostile policies
that "simulate parallel execution on multiprocessors" by forcing
context switches at the points where a multiprocessor would allow true
overlap:

- **Mutex switch**: every successful mutex lock forces a switch (the
  locker goes to the tail of its own priority queue).
- **Round-robin ordered switch**: every library-kernel exit forces a
  switch (the leaver goes to the tail of the *lowest* priority queue).
- **Random switch**: every kernel exit flips a seeded coin; on heads
  the leaver goes to the lowest tail and the next thread is chosen *at
  random* from the ready queue.

The latter two may violate priority scheduling -- deliberately: on a
multiprocessor, high- and low-priority threads run in parallel anyway.
Varying the random seed varies the interleaving, which the paper found
"a simple but powerful way" to expose latent synchronisation bugs that
FIFO scheduling hides (see ``examples/perverted_debugging.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core import config as cfg
from repro.sched.policies import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PthreadsRuntime
    from repro.core.tcb import Tcb


class MutexSwitchPolicy(SchedulingPolicy):
    """Force a switch on each successful mutex lock."""

    name = cfg.SCHED_MUTEX_SWITCH

    def __init__(self) -> None:
        self.forced_switches = 0

    def on_mutex_acquired(self, runtime: "PthreadsRuntime") -> None:
        if runtime.current is None or not runtime.sched.ready:
            return
        self.forced_switches += 1
        runtime.kern.enter()
        # Tail of its own priority queue; head of the ready queue next.
        runtime.sched.yield_current()
        runtime.kern.leave()


class RoundRobinOrderedSwitchPolicy(SchedulingPolicy):
    """Force a switch on every library-kernel exit."""

    name = cfg.SCHED_RR_ORDERED

    def __init__(self) -> None:
        self.forced_switches = 0

    def on_kernel_exit(self, runtime: "PthreadsRuntime") -> None:
        if runtime.current is None or not runtime.sched.ready:
            return
        self.forced_switches += 1
        # Tail of the lowest priority queue: everyone ready runs first.
        runtime.sched.pervert_current_to_lowest()


class RandomSwitchPolicy(SchedulingPolicy):
    """Flip a coin on every kernel exit; pick the successor at random."""

    name = cfg.SCHED_RANDOM

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._rng = None
        self.forced_switches = 0
        self._pick_random = False

    def _coin(self, runtime: "PthreadsRuntime") -> bool:
        if self._rng is None:
            if self.seed is None:
                self._rng = runtime.world.rng.fork(salt=0xC01)
            else:
                from repro.sim.rng import DeterministicRng

                self._rng = DeterministicRng(self.seed)
        return self._rng.coin()

    def on_kernel_exit(self, runtime: "PthreadsRuntime") -> None:
        if runtime.current is None or not runtime.sched.ready:
            return
        if not self._coin(runtime):
            return
        self.forced_switches += 1
        self._pick_random = True
        runtime.sched.pervert_current_to_lowest()

    def select(self, runtime: "PthreadsRuntime") -> Optional["Tcb"]:
        # Random successor selection applies to the forced switches
        # only; ordinary dispatches keep priority order.
        if not self._pick_random or self._rng is None:
            return None
        self._pick_random = False
        ready = runtime.sched.ready.threads()
        if not ready:
            return None
        return self._rng.choice(ready)


class EnumerableSwitchPolicy(SchedulingPolicy):
    """Enumerate switch decisions instead of merely picking one.

    The three policies above *pick* a hostile switch (always, or by
    coin flip).  This one exposes the full decision: at every library
    kernel exit with a non-empty ready queue there are
    ``1 + len(ready)`` legal continuations -- keep running (what the
    priority scheduler would do), or force a switch to any particular
    ready thread.  The decision is delegated to the world's choice
    source (:meth:`repro.sim.world.World.choose`), so the
    ``repro.check`` explorer can walk the alternatives systematically
    (DFS) or sample them (seeded random walk).  Without a choice
    source attached every decision is 0 and the policy is inert.
    """

    name = "enumerable-switch"

    def __init__(self) -> None:
        self.forced_switches = 0
        self.choice_points = 0
        self._pick: Optional["Tcb"] = None

    def on_kernel_exit(self, runtime: "PthreadsRuntime") -> None:
        if runtime.current is None:
            return
        world = runtime.world
        if world.choices is None:
            return
        ready = runtime.sched.ready.threads()
        if not ready:
            return
        self.choice_points += 1
        chosen = world.choose(1 + len(ready), tag="kernel-exit")
        if chosen == 0:
            return
        self.forced_switches += 1
        # Like the RR-ordered policy: the leaver goes to the lowest
        # tail, and select() steers the dispatch at the chosen thread.
        self._pick = ready[chosen - 1]
        runtime.sched.pervert_current_to_lowest()

    def select(self, runtime: "PthreadsRuntime") -> Optional["Tcb"]:
        pick = self._pick
        if pick is None:
            return None
        self._pick = None
        if pick in runtime.sched.ready.threads():
            return pick
        return None


def make_policy(name: str, seed: Optional[int] = None) -> SchedulingPolicy:
    """Policy factory keyed by the ``SCHED_*`` constant."""
    if name == cfg.SCHED_MUTEX_SWITCH:
        return MutexSwitchPolicy()
    if name == cfg.SCHED_RR_ORDERED:
        return RoundRobinOrderedSwitchPolicy()
    if name == cfg.SCHED_RANDOM:
        return RandomSwitchPolicy(seed)
    if name == EnumerableSwitchPolicy.name:
        return EnumerableSwitchPolicy()
    if name in (cfg.SCHED_FIFO, cfg.SCHED_RR, cfg.SCHED_OTHER):
        return SchedulingPolicy()
    raise ValueError("unknown policy: %r" % (name,))
