"""repro -- a library implementation of POSIX threads under (simulated) UNIX.

A faithful reproduction of Frank Mueller's USENIX 1993 paper
"A Library Implementation of POSIX Threads under UNIX" (FSU Pthreads):
a user-level Pthreads library -- monolithic-monitor kernel, dispatcher,
signal delivery model with fake calls, cancellation, priority
inheritance/ceiling mutexes, perverted debugging scheduling -- running
on a simulated SPARC/SunOS substrate with a calibrated cycle-cost
model, so the paper's entire evaluation (Table 2 and friends)
regenerates in simulated microseconds.

Quickstart::

    from repro import PthreadsRuntime

    def child(pt, n):
        yield pt.work(n)
        return n * 2

    def main(pt):
        t = yield pt.create(child, 100, name="child")
        err, value = yield pt.join(t)
        print("child returned", value)

    rt = PthreadsRuntime(model="sparc-ipx")
    rt.main(main)
    rt.run()

See README.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.core import (
    PT,
    CondAttr,
    MutexAttr,
    PthreadsRuntime,
    RuntimeConfig,
    Tcb,
    ThreadAttr,
    ThreadState,
)
from repro.core import config
from repro.core import errors
from repro.debug import Inspector, Timeline, Tracer
from repro.hw.costs import SPARC_1PLUS, SPARC_IPX, cost_model
from repro.sched import (
    MutexSwitchPolicy,
    RandomSwitchPolicy,
    RoundRobinOrderedSwitchPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.unix.sigset import SigSet

__version__ = "1.0.0"

__all__ = [
    "CondAttr",
    "Inspector",
    "MutexAttr",
    "MutexSwitchPolicy",
    "PT",
    "PthreadsRuntime",
    "RandomSwitchPolicy",
    "RoundRobinOrderedSwitchPolicy",
    "RuntimeConfig",
    "SPARC_1PLUS",
    "SPARC_IPX",
    "SchedulingPolicy",
    "SigSet",
    "Tcb",
    "ThreadAttr",
    "ThreadState",
    "Timeline",
    "Tracer",
    "config",
    "cost_model",
    "errors",
    "make_policy",
]
