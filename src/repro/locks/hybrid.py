"""Spin-then-queue hybrid: TTAS fast path, MCS-style queue fallback.

The shape Linux's qspinlock and the "basic lock algorithms" hybrids
share: an arriving CPU makes a few cheap TTAS attempts (winning the
uncontended and lightly-contended cases at TAS-like cost), and once
those are exhausted it joins a per-CPU-node queue.  Only the *queue
head* probes the lock byte, so the byte never sees more than two
contenders regardless of how many CPUs pile up -- TTAS behaviour at
low contention, MCS scaling at high.
"""

from __future__ import annotations

from repro.locks.base import SpinLock
from repro.locks.mcs import McsNode

#: TTAS attempts before an acquirer gives up and queues.
SPIN_ATTEMPTS = 3
BACKOFF_STEP = 80


class HybridLock(SpinLock):
    algo = "hybrid"

    def __init__(self, smp, name: str, slots: int = 1) -> None:
        super().__init__(smp, name, max(slots, 1))
        self.byte = smp.cell("%s.byte" % name)
        self.tail = smp.cell("%s.tail" % name)
        self.nodes = [
            McsNode(smp, "%s.node%d" % (name, i)) for i in range(self.slots)
        ]
        self.fast_acquires = 0
        self.queued_acquires = 0

    def _probe(self):
        value = yield ("load", self.byte)
        if value != 0:
            return False
        old = yield ("ldstub", self.byte)
        return old == 0

    def acquire(self, slot: int):
        for attempt in range(SPIN_ATTEMPTS):
            won = yield from self._probe()
            if won:
                self.acquisitions += 1
                self.fast_acquires += 1
                return
            yield ("pause", BACKOFF_STEP * (attempt + 1))
        # Queue path: become a waiter node; only the head spins on the
        # byte, everyone else spins locally on their own line.
        self.contended += 1
        node = self.nodes[slot]
        yield ("store", node.next, 0)
        yield ("store", node.locked, 1)
        prev = yield ("swap", self.tail, slot + 1)
        if prev != 0:
            yield ("store", self.nodes[prev - 1].next, slot + 1)
            yield ("spin_read", node.locked, lambda v: v == 0)
        # Head of the queue: TTAS on the byte with the field thinned
        # to (holder, head) -- bounded traffic.
        while True:
            won = yield from self._probe()
            if won:
                break
            yield ("spin_read", self.byte, lambda v: v == 0)
        # Pass headship to our successor before entering the critical
        # section (MCS release on the queue structure).
        successor = yield ("load", node.next)
        if successor == 0:
            detached = yield ("cas", self.tail, slot + 1, 0)
            if not detached:
                successor = yield ("spin_read", node.next, lambda v: v != 0)
        if successor != 0:
            yield ("store", self.nodes[successor - 1].locked, 0)
        self.acquisitions += 1
        self.queued_acquires += 1

    def release(self, slot: int):
        del slot
        self.releases += 1
        yield ("store", self.byte, 0)

    def extra_stats(self):
        return {
            "fast_acquires": self.fast_acquires,
            "queued_acquires": self.queued_acquires,
        }
