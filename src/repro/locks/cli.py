"""``python -m repro.locks``: run the lock zoo from the command line.

Subcommands:

- ``run``: one (algo, ncpus) lock_storm; prints the report.
- ``sweep``: the full crossover table (every algo at every CPU count).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.locks import LOCK_ALGOS
from repro.locks.workload import ZOO_CPUS, lock_storm_smp, run_zoo


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="niagara-t3")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--acquisitions", type=int, default=10,
                        help="acquisitions per CPU")
    parser.add_argument("--section", type=int, default=400,
                        help="critical-section cycles")
    parser.add_argument("--think", type=int, default=300,
                        help="mean think-time cycles between acquisitions")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.locks", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one algorithm at one CPU count")
    run_p.add_argument("--algo", choices=sorted(LOCK_ALGOS), default="mcs")
    run_p.add_argument("--cpus", type=int, default=4)
    _add_common(run_p)

    sweep_p = sub.add_parser("sweep", help="the full crossover table")
    sweep_p.add_argument(
        "--cpus", type=int, nargs="*", default=list(ZOO_CPUS)
    )
    _add_common(sweep_p)

    args = parser.parse_args(argv)
    kwargs = dict(
        acquisitions=args.acquisitions,
        section_cycles=args.section,
        think_cycles=args.think,
        model=args.model,
        seed=args.seed,
    )

    if args.command == "run":
        report = lock_storm_smp(args.algo, args.cpus, **kwargs)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_report(report)
        return 0

    results = run_zoo(cpu_counts=args.cpus, **kwargs)
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
        return 0
    _print_table(results, args.cpus)
    return 0


def _print_report(report: dict) -> None:
    print(
        "%s @ %d cpus: makespan=%d cycles (%.2f us), %d acquisitions "
        "(%d cycles each)"
        % (
            report["algo"], report["ncpus"], report["makespan_cycles"],
            report["makespan_us"], report["acquisitions"],
            report["cycles_per_acquisition"],
        )
    )
    for name, value in sorted(report["counters"].items()):
        print("  %-28s %d" % (name, value))
    for name, value in sorted(report["lock"].items()):
        if name != "algo":
            print("  lock.%-23s %s" % (name, value))


def _print_table(results: list, cpu_counts: list) -> None:
    by_algo: dict = {}
    for report in results:
        by_algo.setdefault(report["algo"], {})[report["ncpus"]] = report
    header = "%-8s" % "algo" + "".join("%14s" % ("c%d" % c) for c in cpu_counts)
    print("cycles per acquisition (lower is better)")
    print(header)
    for algo, row in by_algo.items():
        cells = "".join(
            "%14d" % row[c]["cycles_per_acquisition"] if c in row else
            "%14s" % "-"
            for c in cpu_counts
        )
        print("%-8s%s" % (algo, cells))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
