"""MCS queue lock: each waiter spins on its *own* cache line.

The arriving CPU swaps itself onto the tail pointer, links behind its
predecessor, and spins on a flag in its own queue node -- a line no
other CPU touches until the predecessor's single release store.  No
invalidation storms, no probe traffic on the lock word: a handoff is
one store to the successor's line regardless of how many CPUs wait.
The price is the queue bookkeeping on the uncontended path (a swap,
and a CAS at release to detach the tail), which is why TAS still wins
at 1-2 CPUs.

Nodes are per-slot and preallocated; slot indices are encoded +1 in
the tail cell (0 = unlocked).
"""

from __future__ import annotations

from repro.locks.base import SpinLock


class McsNode:
    __slots__ = ("locked", "next")

    def __init__(self, smp, name: str) -> None:
        self.locked = smp.cell("%s.locked" % name)
        self.next = smp.cell("%s.next" % name)


class McsLock(SpinLock):
    algo = "mcs"

    def __init__(self, smp, name: str, slots: int = 1) -> None:
        super().__init__(smp, name, max(slots, 1))
        self.tail = smp.cell("%s.tail" % name)
        self.nodes = [
            McsNode(smp, "%s.node%d" % (name, i)) for i in range(self.slots)
        ]
        self.handoffs = 0

    def acquire(self, slot: int):
        node = self.nodes[slot]
        # Publish a clean node *before* becoming visible via the tail:
        # the predecessor may store our wakeup the instant it sees us.
        yield ("store", node.next, 0)
        yield ("store", node.locked, 1)
        prev = yield ("swap", self.tail, slot + 1)
        if prev == 0:
            self.acquisitions += 1
            return
        self.contended += 1
        yield ("store", self.nodes[prev - 1].next, slot + 1)
        yield ("spin_read", node.locked, lambda v: v == 0)
        self.acquisitions += 1

    def release(self, slot: int):
        node = self.nodes[slot]
        self.releases += 1
        successor = yield ("load", node.next)
        if successor == 0:
            detached = yield ("cas", self.tail, slot + 1, 0)
            if detached:
                return
            # A successor swapped in but has not linked yet: wait for
            # the link (bounded -- the store is its very next op).
            successor = yield ("spin_read", node.next, lambda v: v != 0)
        self.handoffs += 1
        yield ("store", self.nodes[successor - 1].locked, 0)

    def extra_stats(self):
        return {"handoffs": self.handoffs}
