"""Test-and-test-and-set: spin on a cached read, probe only when free.

While the lock is held, waiters spin on their *shared* copy of the
line -- no coherence traffic at all (the simulator parks them until
the release store bumps the line version).  The weakness appears at
release: every waiter's copy is invalidated at once, they all re-read,
see the lock free, and race into ``ldstub`` -- an invalidation storm
whose exclusive transfers serialize, so the handoff still costs O(N)
at high contention.  Better than TAS everywhere, but beaten by the
queue locks at scale.
"""

from __future__ import annotations

from repro.locks.base import SpinLock

BACKOFF_STEP = 60
BACKOFF_CAP = 600


class TtasLock(SpinLock):
    algo = "ttas"

    def __init__(self, smp, name: str, slots: int = 0) -> None:
        super().__init__(smp, name, slots)
        self.cell = smp.cell("%s.byte" % name)
        self.probes = 0
        self.storm_losses = 0  # saw the lock free but lost the ldstub race

    def acquire(self, slot: int):
        del slot
        backoff = 0
        first = True
        while True:
            value = yield ("load", self.cell)
            if value == 0:
                self.probes += 1
                old = yield ("ldstub", self.cell)
                if old == 0:
                    self.acquisitions += 1
                    return
                self.storm_losses += 1
                backoff = min(backoff + BACKOFF_STEP, BACKOFF_CAP)
                yield ("pause", backoff)
                continue
            if first:
                self.contended += 1
                first = False
            yield ("spin_read", self.cell, lambda v: v == 0)

    def release(self, slot: int):
        del slot
        self.releases += 1
        yield ("store", self.cell, 0)

    def extra_stats(self):
        return {"probes": self.probes, "storm_losses": self.storm_losses}
