"""The lock_storm workload on the SMP machine, and the zoo sweep.

One task per CPU hammers a single lock: acquire, hold for a fixed
critical section, release, think for a seeded-random gap, repeat.
Makespan (the max across per-CPU clocks when every task finishes) is
the comparison metric; mutual exclusion is asserted on every entry.

Determinism: a single ``seed`` drives the world, and each CPU's think
times come from its forked RNG stream, so a (model, seed, algo, ncpus)
tuple fully determines every number reported -- repeat runs are
byte-identical, which is what lets the bench gate compare makespans
exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.locks import make_lock
from repro.sim.smp import SmpExecutor, SmpExtension
from repro.sim.world import World


class MutualExclusionViolation(AssertionError):
    """Two tasks were inside the same lock's critical section at once."""


def lock_storm_smp(
    algo: str,
    ncpus: int,
    acquisitions: int = 10,
    section_cycles: int = 400,
    think_cycles: int = 300,
    model: str = "niagara-t3",
    seed: int = 42,
    cpus_per_chip: int = 16,
    migration: bool = False,
    check: Optional[Any] = None,
) -> Dict[str, Any]:
    """Race ``ncpus`` tasks over one ``algo`` lock; return the report."""
    world = World(model, seed=seed, ncpus=ncpus, cpus_per_chip=cpus_per_chip)
    smp = world.smp
    if smp is None:  # ncpus == 1: an explicit one-CPU SMP machine
        smp = SmpExtension(world, 1, cpus_per_chip=cpus_per_chip)
    lock = make_lock(algo, smp, name=algo, slots=ncpus)
    executor = SmpExecutor(world, smp=smp, migration=migration, check=check)
    owner: List[Optional[int]] = [None]

    def body(slot: int):
        rng = smp.cpus[slot].rng
        for _ in range(acquisitions):
            yield from lock.acquire(slot)
            if owner[0] is not None:
                raise MutualExclusionViolation(
                    "%s: slot %d entered while slot %d holds"
                    % (algo, slot, owner[0])
                )
            owner[0] = slot
            yield ("spend_cycles", section_cycles)
            if owner[0] != slot:
                raise MutualExclusionViolation(
                    "%s: slot %d lost the lock inside its section"
                    % (algo, slot)
                )
            owner[0] = None
            yield from lock.release(slot)
            yield ("spend_cycles", think_cycles + rng.randint(0, think_cycles))

    for index in range(ncpus):
        executor.spawn(body(index), cpu=index, name="%s-%d" % (algo, index))
    executor.run()

    total = acquisitions * ncpus
    makespan = executor.makespan
    counters = smp.counters()
    return {
        "algo": algo,
        "ncpus": ncpus,
        "model": world.model.name,
        "seed": seed,
        "acquisitions": total,
        "makespan_cycles": makespan,
        "makespan_us": world.model.us(makespan),
        "cycles_per_acquisition": makespan // total,
        "executor_steps": executor.steps,
        "counters": counters,
        "lock": lock.stats(),
    }


#: The bench sweep axes (see repro.bench.suites.run_smp).
ZOO_ALGOS = ("tas", "ttas", "ticket", "mcs", "hybrid")
ZOO_CPUS = (1, 2, 4, 16, 64)


def run_zoo(
    algos: Iterable[str] = ZOO_ALGOS,
    cpu_counts: Iterable[int] = ZOO_CPUS,
    acquisitions: int = 10,
    section_cycles: int = 400,
    think_cycles: int = 300,
    model: str = "niagara-t3",
    seed: int = 42,
) -> List[Dict[str, Any]]:
    """The full crossover sweep: every algorithm at every CPU count."""
    results = []
    for algo in algos:
        for ncpus in cpu_counts:
            results.append(
                lock_storm_smp(
                    algo,
                    ncpus,
                    acquisitions=acquisitions,
                    section_cycles=section_cycles,
                    think_cycles=think_cycles,
                    model=model,
                    seed=seed,
                )
            )
    return results
