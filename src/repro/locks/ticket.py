"""Ticket lock: fetch-and-add arrival order, FIFO handoff.

Arrival is one atomic ``fetch_add`` on the ticket counter; waiting is
a read-spin on ``now_serving``.  The release store invalidates every
waiter's copy, but the re-reads are *shared* joins (cheap, and they
do not serialize the line), so the critical path of a handoff is one
transfer plus one join -- effectively O(1) in contenders, at the cost
of two cache lines and strict FIFO order (no bypass for a lucky
late-arriving CPU).  Scales like MCS here; real hardware adds a
penalty MCS avoids (all N waiters re-read), which the shared-join
charge models on the waiters' own clocks.
"""

from __future__ import annotations

from repro.locks.base import SpinLock


class TicketLock(SpinLock):
    algo = "ticket"

    def __init__(self, smp, name: str, slots: int = 0) -> None:
        super().__init__(smp, name, slots)
        self.next_ticket = smp.cell("%s.next" % name)
        self.now_serving = smp.cell("%s.serving" % name)

    def acquire(self, slot: int):
        del slot
        ticket = yield ("fetch_add", self.next_ticket, 1)
        serving = yield ("load", self.now_serving)
        if serving == ticket:
            self.acquisitions += 1
            return
        self.contended += 1
        yield ("spin_read", self.now_serving, lambda v, t=ticket: v == t)
        self.acquisitions += 1

    def release(self, slot: int):
        del slot
        self.releases += 1
        serving = yield ("load", self.now_serving)
        yield ("store", self.now_serving, serving + 1)
