"""The SMP lock-algorithm zoo.

Five classic spin-lock algorithms -- test-and-set, test-and-test-and-
set, ticket, MCS, and a spin-then-queue hybrid -- implemented against
the simulator's coherence-priced atomic primitives and raced against
each other on the N-CPU world (``python -m repro.locks``, or the
``smp`` benchmark suite).  See docs/SMP.md for the model and the
expected crossover: TAS competitive at 1-2 CPUs, the queue locks
winning at 16-64.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.locks.base import SpinLock
from repro.locks.hybrid import HybridLock
from repro.locks.mcs import McsLock
from repro.locks.tas import TasLock
from repro.locks.ticket import TicketLock
from repro.locks.ttas import TtasLock

#: Registry, in zoo order (benchmarks iterate this).
LOCK_ALGOS: Dict[str, Type[SpinLock]] = {
    TasLock.algo: TasLock,
    TtasLock.algo: TtasLock,
    TicketLock.algo: TicketLock,
    McsLock.algo: McsLock,
    HybridLock.algo: HybridLock,
}


def make_lock(algo: str, smp, name: str = "lock", slots: int = 1) -> SpinLock:
    """Construct a zoo lock by algorithm name."""
    try:
        cls = LOCK_ALGOS[algo]
    except KeyError:
        raise KeyError(
            "unknown lock algorithm %r (have: %s)"
            % (algo, ", ".join(LOCK_ALGOS))
        ) from None
    return cls(smp, name, slots=slots)


__all__ = [
    "SpinLock",
    "TasLock",
    "TtasLock",
    "TicketLock",
    "McsLock",
    "HybridLock",
    "LOCK_ALGOS",
    "make_lock",
]
