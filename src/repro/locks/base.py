"""Common machinery for the SMP lock zoo.

Every lock in :mod:`repro.locks` is written against the simulator's
atomic primitives the same way the paper's mutex fast path is written
against ``ldstub``: as a short sequence of priced operations.  Lock
methods are *generators of operation tuples* (see
:class:`repro.sim.smp.SmpExecutor` for the op vocabulary); a task body
runs them with ``yield from lock.acquire(slot)``.

``slot`` is the caller's acquirer index (one per concurrent contender,
assigned by the workload).  Queue locks use it to select their
per-acquirer node; simple locks ignore it.

Each lock keeps per-algorithm counters -- acquisitions, contended
acquisitions, releases, and algorithm-specific extras via
:meth:`SpinLock.extra_stats` -- which the obs layer harvests into
``smp.lock.*`` metrics.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.smp import SmpExtension


class SpinLock:
    """Base class: counters + the shared constructor shape."""

    #: Registry key; subclasses override.
    algo = "abstract"

    def __init__(self, smp: "SmpExtension", name: str, slots: int = 0) -> None:
        self.smp = smp
        self.name = name
        self.slots = slots
        self.acquisitions = 0
        self.contended = 0
        self.releases = 0

    def acquire(self, slot: int):
        raise NotImplementedError

    def release(self, slot: int):
        raise NotImplementedError

    def extra_stats(self) -> Dict[str, int]:
        return {}

    def stats(self) -> Dict[str, Any]:
        out = {
            "algo": self.algo,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "releases": self.releases,
        }
        out.update(self.extra_stats())
        return out

    def __repr__(self) -> str:
        return "%s(%s, acq=%d, contended=%d)" % (
            type(self).__name__, self.name, self.acquisitions, self.contended,
        )
