"""Test-and-set: the paper's ``ldstub`` spin lock, taken literally.

Every probe is an ``ldstub`` -- a *write* for coherence purposes --
so each spinning CPU yanks the lock's cache line exclusive on every
attempt.  Held locks keep bouncing the line, and the holder's release
store has to queue behind the probe traffic, which is exactly the
linear-with-contenders collapse the lock-algorithm literature
documents.  Competitive at 1-2 CPUs (the uncontended path is a single
cheap atomic); the zoo's worst case at 16-64.

A small linear backoff keeps the probe storm bounded without changing
the algorithm's character.
"""

from __future__ import annotations

from repro.locks.base import SpinLock

#: Cycles of backoff added per consecutive failed probe, and its cap.
BACKOFF_STEP = 40
BACKOFF_CAP = 400


class TasLock(SpinLock):
    algo = "tas"

    def __init__(self, smp, name: str, slots: int = 0) -> None:
        super().__init__(smp, name, slots)
        self.cell = smp.cell("%s.byte" % name)
        self.probes = 0

    def acquire(self, slot: int):
        del slot
        backoff = 0
        while True:
            self.probes += 1
            old = yield ("ldstub", self.cell)
            if old == 0:
                self.acquisitions += 1
                return
            if backoff == 0:
                self.contended += 1
            backoff = min(backoff + BACKOFF_STEP, BACKOFF_CAP)
            yield ("pause", backoff)

    def release(self, slot: int):
        del slot
        self.releases += 1
        yield ("store", self.cell, 0)

    def extra_stats(self):
        return {"probes": self.probes}
