"""Invariant rules over the library's shared state.

A :class:`CheckContext` attaches to a runtime (``PthreadsRuntime(...,
check=ctx)``), registers every synchronisation object as it is created,
and runs its rule set at every kernel-flag release
(:meth:`repro.core.kernel.LibKernel.leave`) -- the points where the
monolithic monitor promises the shared state is consistent.  A broken
rule raises :class:`InvariantViolation` immediately, so the schedule
that exposed it is still on the choice trail.

The rules encode exactly the properties the satellite bug fixes of this
subsystem restore: mutex owner/cell/queue consistency, per-mutex
counters summing to the run-wide :class:`~repro.core.mutex.MutexOps`
totals, condvar waiters actually parked on their queue (a thread
"waiting" but unqueued misses every wakeup), reader/writer bookkeeping
sanity, priority-boost bounds, and cleanup-stack balance at
termination.  :meth:`CheckContext.check_quiescent` adds end-of-run
rules -- everything unlocked, no waiters, no leaked ``waiting_writers``
claims -- which is where the pre-fix ``wrlock`` cancellation leak
shows up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.tcb import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cond import Cond
    from repro.core.mutex import Mutex
    from repro.core.runtime import PthreadsRuntime
    from repro.core.rwlock import RwLock
    from repro.core.semaphore import Semaphore
    from repro.check.schedule import ScriptedChoices


class InvariantViolation(Exception):
    """A consistency rule over the library state broke.

    ``rule`` names the rule (stable identifiers, used by the reducer to
    confirm a shrunk schedule still fails the *same* way).
    """

    def __init__(self, rule: str, detail: str) -> None:
        super().__init__("%s: %s" % (rule, detail))
        self.rule = rule
        self.detail = detail


class CheckContext:
    """Registries, counters, and the invariant rule set for one run."""

    def __init__(self, choices: Optional["ScriptedChoices"] = None) -> None:
        self.choices = choices
        self.runtime: Optional["PthreadsRuntime"] = None
        self.mutexes: List["Mutex"] = []
        self.conds: List["Cond"] = []
        self.rwlocks: List["RwLock"] = []
        self.sems: List["Semaphore"] = []
        self.workqueues: List[object] = []
        self.checks_run = 0
        self.violations_found = 0

    # -- wiring (called by the runtime) ------------------------------------

    def attach(self, runtime: "PthreadsRuntime") -> None:
        self.runtime = runtime
        runtime.world.choices = self.choices

    def register_mutex(self, mutex: "Mutex") -> None:
        self.mutexes.append(mutex)

    def register_cond(self, cond: "Cond") -> None:
        self.conds.append(cond)

    def register_rwlock(self, rw: "RwLock") -> None:
        self.rwlocks.append(rw)

    def register_sem(self, sem: "Semaphore") -> None:
        self.sems.append(sem)

    def register_workqueue(self, wq: object) -> None:
        """An application-level work queue (see repro.net.servers).

        Duck-typed: anything with ``items``/``enqueued``/``dequeued``/
        ``closed`` counters can register.  The rules audit the counter
        arithmetic at every kernel release -- a dequeue that lost an
        item (or an item taken twice) breaks the books immediately,
        under whichever schedule the explorer found it.
        """
        self.workqueues.append(wq)

    # -- rule plumbing ------------------------------------------------------

    def _fail(self, rule: str, detail: str) -> None:
        self.violations_found += 1
        raise InvariantViolation(rule, detail)

    def on_kernel_release(self, runtime: "PthreadsRuntime") -> None:
        """Run every state rule; called with the kernel flag released."""
        self.checks_run += 1
        self._check_mutexes()
        self._check_counters(runtime)
        self._check_conds(runtime)
        self._check_rwlocks()
        self._check_sems()
        self._check_workqueues()
        self._check_threads(runtime)
        if runtime.world.smp is not None:
            self._check_smp(runtime.world.smp)

    def on_smp_step(self, world) -> None:
        """Periodic sweep for SMP-executor runs (no library kernel)."""
        self.checks_run += 1
        if world.smp is not None:
            self._check_smp(world.smp)

    # -- state rules --------------------------------------------------------

    def _check_mutexes(self) -> None:
        for m in self.mutexes:
            if m.destroyed:
                if m.locked or m.owner is not None or m.waiters:
                    self._fail(
                        "mutex-destroyed-clean",
                        "%r destroyed but still in use" % m,
                    )
                continue
            if m.locked != (m.owner is not None):
                self._fail(
                    "mutex-owner-cell",
                    "%r: cell=%d but owner=%s"
                    % (m, m.cell.value, m.owner and m.owner.name),
                )
            if m.owner is not None and not m.owner.alive:
                self._fail(
                    "mutex-owner-dead",
                    "%r held by %s, which terminated without unlocking"
                    % (m, m.owner.name),
                )
            if m.owner is not None and m.owner in m.waiters:
                self._fail(
                    "mutex-owner-queued",
                    "%r: owner %s is also queued on it" % (m, m.owner.name),
                )
            if not m.locked and m.waiters:
                self._fail(
                    "mutex-free-with-waiters",
                    "%r: unlocked but %d waiters queued" % (m, len(m.waiters)),
                )
            for tcb in m.waiters:
                wait = tcb.wait
                if (
                    tcb.state is not ThreadState.BLOCKED
                    or wait is None
                    or wait.kind != "mutex"
                    or wait.obj is not m
                ):
                    self._fail(
                        "mutex-waiter-state",
                        "%s queued on %r but its wait is %r (state %s)"
                        % (tcb.name, m, wait, tcb.state.value),
                    )

    def _check_counters(self, runtime: "PthreadsRuntime") -> None:
        ops = runtime.mutex_ops
        contentions = sum(m.contentions for m in self.mutexes)
        if contentions != ops.contentions:
            self._fail(
                "mutex-counter-agreement",
                "per-mutex contentions sum to %d, run-wide total is %d"
                % (contentions, ops.contentions),
            )
        handoffs = sum(m.handoffs for m in self.mutexes)
        if handoffs != ops.handoffs:
            self._fail(
                "mutex-counter-agreement",
                "per-mutex handoffs sum to %d, run-wide total is %d"
                % (handoffs, ops.handoffs),
            )

    def _check_conds(self, runtime: "PthreadsRuntime") -> None:
        for c in self.conds:
            if c.destroyed and c.waiters:
                self._fail(
                    "cond-destroyed-clean",
                    "%r destroyed with %d waiters" % (c, len(c.waiters)),
                )
            for tcb in c.waiters:
                wait = tcb.wait
                if (
                    tcb.state is not ThreadState.BLOCKED
                    or wait is None
                    or wait.kind != "cond"
                    or wait.obj is not c
                ):
                    self._fail(
                        "cond-waiter-state",
                        "%s queued on %r but its wait is %r (state %s)"
                        % (tcb.name, c, wait, tcb.state.value),
                    )
        # The converse is the lost-wakeup rule: a thread blocked "on a
        # condvar" but missing from that condvar's queue can never be
        # signalled.
        for tcb in runtime.all_threads():
            wait = tcb.wait
            if (
                wait is not None
                and wait.kind == "cond"
                and tcb.state is ThreadState.BLOCKED
                and tcb not in wait.obj.waiters
            ):
                self._fail(
                    "cond-lost-wakeup",
                    "%s waits on %r but is not in its queue"
                    % (tcb.name, wait.obj),
                )

    def _check_rwlocks(self) -> None:
        for rw in self.rwlocks:
            if rw.active_readers < 0 or rw.waiting_writers < 0:
                self._fail(
                    "rwlock-counts",
                    "%r: negative bookkeeping" % rw,
                )
            if rw.active_writer is not None and rw.active_readers > 0:
                self._fail(
                    "rwlock-exclusion",
                    "%r: writer %s active alongside %d readers"
                    % (rw, rw.active_writer.name, rw.active_readers),
                )
            if rw.waiting_writers < len(rw.writers_cond.waiters):
                self._fail(
                    "rwlock-writer-claims",
                    "%r: %d queued writers but only %d claims"
                    % (rw, len(rw.writers_cond.waiters), rw.waiting_writers),
                )

    def _check_sems(self) -> None:
        for s in self.sems:
            if s.count < 0:
                self._fail(
                    "sem-count", "%r: negative count" % s
                )
            if s.mutex.destroyed != s.cond.destroyed:
                self._fail(
                    "sem-half-destroyed",
                    "%r: mutex destroyed=%s but cond destroyed=%s"
                    % (s, s.mutex.destroyed, s.cond.destroyed),
                )

    def _check_workqueues(self) -> None:
        for wq in self.workqueues:
            enq = wq.enqueued
            deq = wq.dequeued
            depth = len(wq.items)
            if deq > enq:
                self._fail(
                    "workqueue-counts",
                    "%r: dequeued %d exceeds enqueued %d" % (wq, deq, enq),
                )
            if enq - deq != depth:
                self._fail(
                    "workqueue-depth",
                    "%r: enqueued %d - dequeued %d != depth %d"
                    % (wq, enq, deq, depth),
                )

    def _check_smp(self, smp) -> None:
        """Per-CPU run-queue disjointness on the SMP machine.

        A task may appear on at most one CPU's run queue, never on two
        (a stolen task must leave its victim's queue), never while it
        is some CPU's current task, and a queue may not hold the same
        task twice.  The same rule the dispatcher's single ready queue
        gets for free becomes an invariant worth checking the moment
        there are N queues and a migration path between them.
        """
        seen = {}
        for cpu in smp.cpus:
            current = cpu.current
            if current is not None:
                if id(current) in seen:
                    self._fail(
                        "smp-runq-disjoint",
                        "task %s is current on cpu%d but also %s"
                        % (current.name, cpu.index, seen[id(current)]),
                    )
                seen[id(current)] = "current on cpu%d" % cpu.index
            for task in cpu.sched.runq:
                where = "queued on cpu%d" % cpu.index
                if id(task) in seen:
                    self._fail(
                        "smp-runq-disjoint",
                        "task %s is %s and %s"
                        % (task.name, seen[id(task)], where),
                    )
                seen[id(task)] = where
                if task.cpu != cpu.index:
                    self._fail(
                        "smp-runq-disjoint",
                        "task %s sits on cpu%d's queue but claims cpu%d"
                        % (task.name, cpu.index, task.cpu),
                    )

    def _check_threads(self, runtime: "PthreadsRuntime") -> None:
        for tcb in runtime.all_threads():
            if tcb.effective_priority < tcb.base_priority:
                self._fail(
                    "priority-boost-bounds",
                    "%s: effective %d below base %d"
                    % (tcb.name, tcb.effective_priority, tcb.base_priority),
                )
            if (
                not tcb.held_mutexes
                and not tcb.srp_stack
                and tcb.effective_priority != tcb.base_priority
            ):
                self._fail(
                    "priority-boost-bounds",
                    "%s: boosted to %d holding nothing (base %d)"
                    % (tcb.name, tcb.effective_priority, tcb.base_priority),
                )
        for tcb in runtime.threads.values():
            if tcb.state is ThreadState.TERMINATED and tcb.cleanup_stack:
                self._fail(
                    "cleanup-balance",
                    "%s terminated with %d cleanup handlers pushed"
                    % (tcb.name, len(tcb.cleanup_stack)),
                )

    # -- end-of-run rules ---------------------------------------------------

    def check_quiescent(self, runtime: "PthreadsRuntime") -> None:
        """Rules for a run that completed cleanly: everything idle.

        Leaked claims show up here -- a cancelled writer that never
        withdrew its ``waiting_writers`` increment leaves the count
        nonzero forever, with no live thread to account for it.
        """
        self.checks_run += 1
        self._check_counters(runtime)
        for m in self.mutexes:
            if m.destroyed:
                continue
            if m.locked or m.owner is not None or m.waiters:
                self._fail(
                    "quiescent-mutex",
                    "%r still held at end of run" % m,
                )
        for c in self.conds:
            if c.waiters:
                self._fail(
                    "quiescent-cond",
                    "%r still has waiters at end of run" % c,
                )
        for wq in self.workqueues:
            if wq.items or not wq.closed:
                self._fail(
                    "quiescent-workqueue",
                    "%r not drained and closed at end of run" % wq,
                )
            if wq.dequeued != wq.enqueued:
                self._fail(
                    "quiescent-workqueue",
                    "%r: %d enqueued but only %d ever dequeued"
                    % (wq, wq.enqueued, wq.dequeued),
                )
        for rw in self.rwlocks:
            if (
                rw.active_readers
                or rw.active_writer is not None
                or rw.waiting_writers
            ):
                self._fail(
                    "quiescent-rwlock",
                    "%r not idle at end of run (readers=%d, writer=%s, "
                    "waiting_writers=%d)"
                    % (
                        rw,
                        rw.active_readers,
                        rw.active_writer and rw.active_writer.name,
                        rw.waiting_writers,
                    ),
                )
