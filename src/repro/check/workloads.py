"""Targeted workloads for the checker.

The generic :mod:`repro.bench.workloads` exercise throughput shapes;
these two exercise the specific protocol windows the checker's
invariants watch.  Both complete cleanly on the fixed library under
every explored schedule; under :mod:`repro.check.preseed` they are the
smallest programs that reach the reseeded bugs.
"""

from __future__ import annotations


def _relay_waiter(pt, mutex, cond, box):
    yield pt.mutex_lock(mutex)
    while not box["go"]:
        yield pt.cond_wait(cond, mutex)
    box["woken"] += 1
    yield pt.mutex_unlock(mutex)


def cond_relay(waiters: int = 2):
    """Signal condvar waiters *while holding the mutex*.

    Waking a waiter that cannot take the mutex yet goes through the
    ``grant_to_waker`` path: the woken thread parks on the mutex queue
    as a contention.  The counter-agreement invariant audits exactly
    that bookkeeping.
    """

    def main(pt):
        mutex = yield pt.mutex_init()
        cond = yield pt.cond_init()
        box = {"go": False, "woken": 0}
        threads = []
        for __ in range(waiters):
            threads.append(
                (yield pt.create(_relay_waiter, mutex, cond, box))
            )
        yield pt.delay_us(200)  # everyone parks on the condvar
        yield pt.mutex_lock(mutex)
        box["go"] = True
        for __ in range(waiters):
            yield pt.cond_signal(cond)  # mutex held: waiters re-queue
        yield pt.mutex_unlock(mutex)
        for thread in threads:
            yield pt.join(thread)
        assert box["woken"] == waiters

    return main


def pooled_server(clients: int = 3, workers: int = 2):
    """A small pooled network server under deterministic load.

    The full architecture from :mod:`repro.net.servers`: one acceptor
    feeding ``workers`` worker threads through the condvar-protected
    :class:`~repro.net.servers.WorkQueue`, serving ``clients``
    kernel-resident clients.  The queue registers with the checker, so
    every explored schedule audits the enqueue/dequeue bookkeeping and
    the end-of-run drain -- the lost-wakeup and shutdown races a
    hand-rolled work queue invites live exactly in those windows.
    """
    from repro.net.scenario import build_main
    from repro.net.servers import Collector

    def main(pt):
        collector = Collector()
        inner = build_main(
            "pool",
            collector,
            clients=clients,
            requests_per_client=1,
            workers=workers,
            arrival="uniform",
            mean_gap_us=120.0,
            think_us=40.0,
            service_cycles=200,
            latency_us=30.0,
        )
        result = yield from inner(pt)
        assert collector.requests_served == clients
        return result

    return main


def _timer_worker(pt, mutex, box, iterations):
    for __ in range(iterations):
        yield pt.mutex_lock(mutex)
        box["count"] += 1
        yield pt.work(180)  # hold long enough for slices to land
        yield pt.mutex_unlock(mutex)
        yield pt.delay_us(25)


def smp_timer_mutex(workers: int = 2, iterations: int = 4):
    """Mutex contention under timer traffic, for 2-CPU exploration.

    Every timeslice expiry is a ``kind="timer"`` signal; on a world
    with ``ncpus > 1`` those cross from the interrupt CPU to CPU 0 as
    IPI events, shifting delivery relative to the single-CPU world.
    The workers hold the mutex long enough that expiries land inside
    critical sections, so the mutex/cond invariant rules and the
    per-CPU run-queue-disjointness rule all get exercised under the
    IPI-shifted timing.  Completes cleanly under every schedule.
    """

    def main(pt):
        mutex = yield pt.mutex_init()
        box = {"count": 0}
        threads = []
        for __ in range(workers):
            threads.append(
                (yield pt.create(_timer_worker, mutex, box, iterations))
            )
        for thread in threads:
            yield pt.join(thread)
        assert box["count"] == workers * iterations

    return main


def _holding_reader(pt, rw, hold_us):
    yield pt.rwlock_rdlock(rw)
    yield pt.delay_us(hold_us)
    yield pt.rwlock_unlock(rw)


def _brief_writer(pt, rw):
    yield pt.rwlock_wrlock(rw)
    yield pt.rwlock_unlock(rw)


def _canceller(pt, victim):
    yield pt.cancel(victim)


def writer_cancel(hold_us: float = 500.0):
    """Cancel a writer racing a reader through a read-write lock.

    Whether the cancellation lands before the writer registers its
    queue claim, while it waits out the reader, or after it acquired,
    is purely a matter of interleaving -- which is what the explorer
    enumerates.  The fixed library keeps the lock consistent in every
    case; the pre-fix one leaks the claim in the first window.
    """

    def main(pt):
        rw = yield pt.rwlock_init("wc")
        reader = yield pt.create(_holding_reader, rw, hold_us)
        writer = yield pt.create(_brief_writer, rw)
        canceller = yield pt.create(_canceller, writer)
        yield pt.join(canceller)
        yield pt.join(writer)
        yield pt.join(reader)

    return main
