"""The explorer: drive a workload under controlled preemption choices.

Each run wires a fresh runtime with three attachments: a
:class:`~repro.check.schedule.ScriptedChoices` source feeding the
:class:`~repro.sched.perverted.EnumerableSwitchPolicy` (which asks it
at every kernel exit whether to preempt and whom to run), a
:class:`~repro.check.invariants.CheckContext` running the invariant
rules at every kernel release, and a dispatch-only tracer so the run's
schedule can be extracted and compared.

Two search modes over the decision tree:

- :meth:`Explorer.explore_dfs` -- bounded depth-first search in the
  style of stateless model checking: run, then for every choice point
  that took the default, queue a variant that flips it to each untried
  alternative.  Systematic up to the depth/branch bounds.
- :meth:`Explorer.explore_random` -- seeded random walks: every
  decision past the scripted prefix is drawn from a forked
  deterministic RNG, the paper's "vary the seed" debugging advice
  turned into a loop.  The failing *trail* is itself the replayable
  decision vector, so a random find is still deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.check.invariants import CheckContext, InvariantViolation
from repro.check.schedule import ChoicePoint, ScriptedChoices
from repro.core.config import RuntimeConfig
from repro.core.runtime import PthreadsRuntime
from repro.debug.replay import ScheduleStep, extract_schedule
from repro.debug.trace import Tracer
from repro.sched.perverted import EnumerableSwitchPolicy
from repro.sim.frames import ProgramCrash
from repro.sim.rng import DeterministicRng
from repro.sim.world import DeadlockError


@dataclass(frozen=True)
class Failure:
    """Why a run failed: an invariant, a deadlock, or a crash."""

    kind: str  # "invariant" | "deadlock" | "crash"
    rule: str  # invariant rule name; mirrors ``kind`` otherwise
    detail: str

    def same_as(self, other: Optional["Failure"]) -> bool:
        """Same failure mode (the reducer's shrink criterion)."""
        return (
            other is not None
            and self.kind == other.kind
            and self.rule == other.rule
        )

    def __str__(self) -> str:
        return "%s[%s]: %s" % (self.kind, self.rule, self.detail)


@dataclass
class RunResult:
    """One explored run."""

    decisions: List[int]  # the scripted prefix this run was given
    vector: List[int]  # every decision actually taken (replays the run)
    trail: List[ChoicePoint]
    failure: Optional[Failure]
    schedule: List[ScheduleStep]
    elapsed_us: float
    checks_run: int

    @property
    def failed(self) -> bool:
        return self.failure is not None


@dataclass
class ExploreReport:
    """Outcome of a DFS or random-walk exploration."""

    mode: str
    schedules_explored: int = 0
    checks_run: int = 0
    failures: List[RunResult] = field(default_factory=list)

    @property
    def first_failure(self) -> Optional[RunResult]:
        return self.failures[0] if self.failures else None


class Explorer:
    """Run one workload under many schedules, checking invariants.

    Parameters
    ----------
    workload_factory:
        Zero-argument callable returning a fresh workload main (thread
        body) per run.  Must be stateless across calls: replaying a
        decision vector replays the schedule only if every run starts
        from the same program.
    priority:
        Main-thread priority (workloads tuned for a specific value).
    max_depth / max_branch:
        Bounds on the decision tree: choice points past ``max_depth``
        take the default, and at most ``max_branch`` alternatives are
        considered per point.
    """

    def __init__(
        self,
        workload_factory: Callable[[], Callable],
        priority: int = 100,
        model: str = "sparc-ipx",
        seed: int = 0,
        max_depth: int = 64,
        max_branch: int = 4,
        max_steps: int = 2_000_000,
        pool_size: int = 64,
    ) -> None:
        self.workload_factory = workload_factory
        self.priority = priority
        self.model = model
        self.seed = seed
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.max_steps = max_steps
        self.pool_size = pool_size

    # -- one run ------------------------------------------------------------

    def run_once(
        self,
        decisions: Any = (),
        rng: Optional[DeterministicRng] = None,
    ) -> RunResult:
        """Run the workload once under the given decision prefix.

        Past the prefix, decisions default to 0 (deterministic replay)
        or are drawn from ``rng`` (random walk).
        """
        choices = ScriptedChoices(
            decisions,
            rng=rng,
            max_depth=self.max_depth,
            max_branch=self.max_branch,
        )
        check = CheckContext(choices)
        tracer = Tracer(kinds=("dispatch",))
        runtime = PthreadsRuntime(
            model=self.model,
            seed=self.seed,
            config=RuntimeConfig(pool_size=self.pool_size),
            policy=EnumerableSwitchPolicy(),
            trace=tracer,
            check=check,
        )
        failure: Optional[Failure] = None
        try:
            runtime.main(self.workload_factory(), priority=self.priority)
            runtime.run(max_steps=self.max_steps)
        except InvariantViolation as exc:
            failure = Failure("invariant", exc.rule, exc.detail)
        except DeadlockError as exc:
            failure = Failure("deadlock", "deadlock", str(exc))
        except ProgramCrash as exc:
            failure = Failure("crash", "crash", str(exc))
        else:
            try:
                check.check_quiescent(runtime)
            except InvariantViolation as exc:
                failure = Failure("invariant", exc.rule, exc.detail)
        return RunResult(
            decisions=list(decisions),
            vector=choices.vector,
            trail=list(choices.trail),
            failure=failure,
            schedule=extract_schedule(tracer),
            elapsed_us=runtime.world.now_us,
            checks_run=check.checks_run,
        )

    # -- systematic search --------------------------------------------------

    def explore_dfs(
        self, max_runs: int = 200, stop_on_failure: bool = True
    ) -> ExploreReport:
        """Bounded DFS over the decision tree, default schedule first."""
        report = ExploreReport(mode="dfs")
        frontier: List[List[int]] = [[]]
        seen = set()
        while frontier and report.schedules_explored < max_runs:
            decisions = frontier.pop()
            key = tuple(decisions)
            if key in seen:
                continue
            seen.add(key)
            result = self.run_once(decisions)
            report.schedules_explored += 1
            report.checks_run += result.checks_run
            if result.failed:
                report.failures.append(result)
                if stop_on_failure:
                    return report
                continue  # don't expand below a failing schedule
            # Every choice point past the scripted prefix took a
            # recorded default: queue each untried alternative (LIFO,
            # so deeper variations of the latest run go first).
            for index in range(len(decisions), len(result.trail)):
                if index >= self.max_depth:
                    break
                point = result.trail[index]
                prefix = result.vector[:index]
                for alternative in range(1, point.options):
                    if alternative != point.chosen:
                        frontier.append(prefix + [alternative])
        return report

    # -- random walks -------------------------------------------------------

    def explore_random(
        self, runs: int = 50, seed: int = 1234, stop_on_failure: bool = True
    ) -> ExploreReport:
        """Seeded random walks; each run's trail replays it exactly."""
        report = ExploreReport(mode="random")
        base = DeterministicRng(seed)
        for index in range(runs):
            result = self.run_once((), rng=base.fork(index))
            report.schedules_explored += 1
            report.checks_run += result.checks_run
            if result.failed:
                report.failures.append(result)
                if stop_on_failure:
                    break
        return report
