"""The explorer: drive a workload under controlled preemption choices.

Each run wires a fresh runtime with three attachments: a
:class:`~repro.check.schedule.ScriptedChoices` source feeding the
:class:`~repro.sched.perverted.EnumerableSwitchPolicy` (which asks it
at every kernel exit whether to preempt and whom to run), a
:class:`~repro.check.invariants.CheckContext` running the invariant
rules at every kernel release, and a dispatch-only tracer so the run's
schedule can be extracted and compared.

Two search modes over the decision tree:

- :meth:`Explorer.explore_dfs` -- bounded depth-first search in the
  style of stateless model checking: run, then for every choice point
  that took the default, queue a variant that flips it to each untried
  alternative.  Systematic up to the depth/branch bounds.
- :meth:`Explorer.explore_random` -- seeded random walks: every
  decision past the scripted prefix is drawn from a forked
  deterministic RNG, the paper's "vary the seed" debugging advice
  turned into a loop.  The failing *trail* is itself the replayable
  decision vector, so a random find is still deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.invariants import CheckContext, InvariantViolation
from repro.check.schedule import ChoicePoint, ScriptedChoices
from repro.core.config import RuntimeConfig
from repro.core.runtime import PthreadsRuntime
from repro.debug.replay import ScheduleStep, extract_schedule
from repro.debug.trace import Tracer
from repro.fleet import FleetPool, FleetStats, SnapshotEngine
from repro.sched.perverted import EnumerableSwitchPolicy
from repro.sim.frames import ProgramCrash
from repro.sim.rng import DeterministicRng
from repro.sim.world import DeadlockError


@dataclass(frozen=True)
class Failure:
    """Why a run failed: an invariant, a deadlock, or a crash."""

    kind: str  # "invariant" | "deadlock" | "crash"
    rule: str  # invariant rule name; mirrors ``kind`` otherwise
    detail: str

    def same_as(self, other: Optional["Failure"]) -> bool:
        """Same failure mode (the reducer's shrink criterion)."""
        return (
            other is not None
            and self.kind == other.kind
            and self.rule == other.rule
        )

    def __str__(self) -> str:
        return "%s[%s]: %s" % (self.kind, self.rule, self.detail)


@dataclass
class RunResult:
    """One explored run."""

    decisions: List[int]  # the scripted prefix this run was given
    vector: List[int]  # every decision actually taken (replays the run)
    trail: List[ChoicePoint]
    failure: Optional[Failure]
    schedule: List[ScheduleStep]
    elapsed_us: float
    checks_run: int
    steps: int = 0  # executor steps the run took
    #: choice index -> runtime state digest, for requested probe depths
    #: (snapshot-integrity testing; empty in ordinary runs).
    probe_digests: Dict[int, str] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.failure is not None


@dataclass
class ExploreReport:
    """Outcome of a DFS or random-walk exploration."""

    mode: str
    schedules_explored: int = 0
    checks_run: int = 0
    failures: List[RunResult] = field(default_factory=list)
    #: Unexplored decision prefixes abandoned because ``max_runs`` ran
    #: out -- 0 means the search was exhaustive (or stopped on purpose).
    frontier_remaining: int = 0
    #: How the sweep executed (parallelism, snapshots, fallbacks).
    #: Excluded from equality: two explorations are "the same" when
    #: they found the same things, however they were scheduled.
    fleet: Optional[FleetStats] = field(default=None, compare=False)

    @property
    def first_failure(self) -> Optional[RunResult]:
        return self.failures[0] if self.failures else None

    def render(self) -> str:
        """The CLI summary (identical wording to the pre-fleet output)."""
        lines = [
            "%s: %d schedules explored, %d invariant checks, %d failures"
            % (
                self.mode,
                self.schedules_explored,
                self.checks_run,
                len(self.failures),
            )
        ]
        if self.frontier_remaining:
            lines.append(
                "frontier truncated: %d unexplored decision prefixes "
                "remain (raise --runs)" % self.frontier_remaining
            )
        return "\n".join(lines)


class Explorer:
    """Run one workload under many schedules, checking invariants.

    Parameters
    ----------
    workload_factory:
        Zero-argument callable returning a fresh workload main (thread
        body) per run.  Must be stateless across calls: replaying a
        decision vector replays the schedule only if every run starts
        from the same program.
    priority:
        Main-thread priority (workloads tuned for a specific value).
    max_depth / max_branch:
        Bounds on the decision tree: choice points past ``max_depth``
        take the default, and at most ``max_branch`` alternatives are
        considered per point.
    """

    def __init__(
        self,
        workload_factory: Callable[[], Callable],
        priority: int = 100,
        model: str = "sparc-ipx",
        seed: int = 0,
        max_depth: int = 64,
        max_branch: int = 4,
        max_steps: int = 2_000_000,
        pool_size: int = 64,
        ncpus: int = 1,
    ) -> None:
        self.workload_factory = workload_factory
        self.priority = priority
        self.model = model
        self.seed = seed
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.max_steps = max_steps
        self.pool_size = pool_size
        #: Simulated CPU count: > 1 explores under IPI-delayed
        #: asynchronous signals (timers/kills cross CPUs as events).
        self.ncpus = ncpus

    # -- one run ------------------------------------------------------------

    def run_once(
        self,
        decisions: Any = (),
        rng: Optional[DeterministicRng] = None,
        extract: Optional[bool] = None,
        probe_depths: Sequence[int] = (),
        _engine_child: Any = None,
    ) -> RunResult:
        """Run the workload once under the given decision prefix.

        Past the prefix, decisions default to 0 (deterministic replay)
        or are drawn from ``rng`` (random walk).

        ``extract`` controls schedule extraction: the default (None)
        extracts only for failing runs -- both search modes throw
        passing-run schedules away, and extraction is a measurable
        slice of per-run cost.  Pass True to always get the schedule
        (replay/diff tooling), False to never.

        ``probe_depths`` requests a :meth:`PthreadsRuntime.state_digest`
        immediately before the given choice indices (recorded in
        :attr:`RunResult.probe_digests`); the snapshot tests use it to
        prove a resumed checkpoint sits in exactly the replayed state.

        ``_engine_child`` is the :mod:`repro.fleet` worker-side hook;
        ordinary callers leave it None.
        """
        choices = ScriptedChoices(
            decisions,
            rng=rng,
            max_depth=self.max_depth,
            max_branch=self.max_branch,
        )
        check = CheckContext(choices)
        tracer = Tracer(kinds=("dispatch",))
        runtime = PthreadsRuntime(
            model=self.model,
            seed=self.seed,
            config=RuntimeConfig(pool_size=self.pool_size),
            policy=EnumerableSwitchPolicy(),
            trace=tracer,
            check=check,
            ncpus=self.ncpus,
        )
        probes: Dict[int, str] = {}
        if _engine_child is not None:
            _engine_child.attach(choices, runtime)
        elif probe_depths:
            wanted = frozenset(probe_depths)

            def probe(index: int) -> None:
                if index in wanted:
                    probes[index] = runtime.state_digest()

            choices.before_choice = probe
        failure: Optional[Failure] = None
        try:
            runtime.main(self.workload_factory(), priority=self.priority)
            runtime.run(max_steps=self.max_steps)
        except InvariantViolation as exc:
            failure = Failure("invariant", exc.rule, exc.detail)
        except DeadlockError as exc:
            failure = Failure("deadlock", "deadlock", str(exc))
        except ProgramCrash as exc:
            failure = Failure("crash", "crash", str(exc))
        else:
            try:
                check.check_quiescent(runtime)
            except InvariantViolation as exc:
                failure = Failure("invariant", exc.rule, exc.detail)
        if extract is None:
            extract = failure is not None
        return RunResult(
            # A fleet resume rewrites the scripted vector mid-run, so
            # the source of truth is the choice source, not our arg.
            decisions=list(choices.decisions),
            vector=choices.vector,
            trail=list(choices.trail),
            failure=failure,
            schedule=extract_schedule(tracer) if extract else [],
            elapsed_us=runtime.world.now_us,
            checks_run=check.checks_run,
            steps=runtime.steps,
            probe_digests=probes,
        )

    # -- systematic search --------------------------------------------------

    def explore_dfs(
        self,
        max_runs: int = 200,
        stop_on_failure: bool = True,
        jobs: int = 1,
        snapshot: Optional[bool] = None,
    ) -> ExploreReport:
        """Bounded DFS over the decision tree, default schedule first.

        ``jobs > 1`` speculatively runs upcoming frontier entries on a
        fleet of forked workers; ``snapshot`` (default: on whenever the
        fleet is) additionally checkpoints decision prefixes so child
        schedules resume mid-run instead of replaying from an empty
        world.  Neither changes a byte of the report: the DFS below is
        the sequential algorithm, consuming results in its own order.
        """
        if snapshot is None:
            snapshot = jobs > 1
        stats = FleetStats()
        engine = None
        if (jobs > 1 or snapshot) and hasattr(os, "fork"):
            engine = SnapshotEngine(
                self, jobs=jobs, snapshot=snapshot, stats=stats
            )
            if not engine.start():
                engine = None
        report = ExploreReport(mode="dfs", fleet=stats)
        frontier: List[List[int]] = [[]]
        seen = set()
        try:
            while frontier and report.schedules_explored < max_runs:
                decisions = frontier.pop()
                key = tuple(decisions)
                if key in seen:
                    continue
                seen.add(key)
                if engine is not None:
                    result = engine.run(decisions)
                else:
                    result = self.run_once(decisions)
                    stats.tasks += 1
                    stats.steps_executed += result.steps
                    stats.steps_full += result.steps
                report.schedules_explored += 1
                report.checks_run += result.checks_run
                if result.failed:
                    report.failures.append(result)
                    if stop_on_failure:
                        return report  # a deliberate stop, not a cap
                    continue  # don't expand below a failing schedule
                # Every choice point past the scripted prefix took a
                # recorded default: queue each untried alternative (LIFO,
                # so deeper variations of the latest run go first).
                for index in range(len(decisions), len(result.trail)):
                    if index >= self.max_depth:
                        break
                    point = result.trail[index]
                    prefix = result.vector[:index]
                    for alternative in range(1, point.options):
                        if alternative != point.chosen:
                            frontier.append(prefix + [alternative])
                if engine is not None:
                    engine.prefetch(
                        [d for d in frontier if tuple(d) not in seen]
                    )
            # ``max_runs`` may have truncated real work: say so (the
            # CLI surfaces it; a silent cap reads as an exhaustive
            # search when it was not).
            report.frontier_remaining = len(
                {tuple(d) for d in frontier} - seen
            )
        finally:
            if engine is not None:
                engine.close()
        return report

    # -- random walks -------------------------------------------------------

    def explore_random(
        self,
        runs: int = 50,
        seed: int = 1234,
        stop_on_failure: bool = True,
        jobs: int = 1,
        oversubscribe: bool = False,
    ) -> ExploreReport:
        """Seeded random walks; each run's trail replays it exactly.

        Walks are independent (walk ``i`` draws from ``fork(i)`` of the
        base seed, not from a shared stream), so ``jobs > 1`` fans them
        across a :class:`~repro.fleet.FleetPool` and reads the results
        back in walk order -- the report is byte-identical to ``jobs=1``.
        """
        report = ExploreReport(mode="random")
        base = DeterministicRng(seed)
        stats = FleetStats()
        report.fleet = stats

        def walk(index: int) -> RunResult:
            return self.run_once((), rng=base.fork(index))

        with FleetPool(
            walk, jobs=jobs, stats=stats, oversubscribe=oversubscribe
        ) as pool:
            for result in pool.imap(range(runs)):
                stats.steps_executed += result.steps
                stats.steps_full += result.steps
                report.schedules_explored += 1
                report.checks_run += result.checks_run
                if result.failed:
                    report.failures.append(result)
                    if stop_on_failure:
                        break
        return report
