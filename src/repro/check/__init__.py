"""Schedule exploration and invariant checking.

The paper's perverted scheduling policies flush out races by *picking*
hostile interleavings; this package turns that idea into a checker.
An :class:`~repro.check.explore.Explorer` drives a workload repeatedly
under controlled preemption-point choices -- a bounded DFS over the
decision tree, or a seeded random walk -- while a
:class:`~repro.check.invariants.CheckContext` runs consistency rules
over the library's shared state at every kernel-flag release.  When a
rule breaks, a :class:`~repro.check.reduce.Reducer` shrinks the
failing decision vector to a minimal schedule that still reproduces
the violation, replayable deterministically via
``python -m repro.check replay``.
"""

from repro.check.explore import Explorer, Failure, RunResult
from repro.check.invariants import CheckContext, InvariantViolation
from repro.check.reduce import Reducer
from repro.check.schedule import ChoicePoint, ScriptedChoices

__all__ = [
    "CheckContext",
    "ChoicePoint",
    "Explorer",
    "Failure",
    "InvariantViolation",
    "Reducer",
    "RunResult",
    "ScriptedChoices",
]
