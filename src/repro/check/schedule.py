"""Choice sources: scripting and enumerating preemption decisions.

A run under the :class:`repro.sched.perverted.EnumerableSwitchPolicy`
hits a *choice point* at every library kernel exit with runnable
competitors: continue the current thread, or force a switch to any
particular ready thread.  The world delegates each decision to its
attached choice source (:meth:`repro.sim.world.World.choose`), and the
source records what was decided and how many alternatives existed --
the *trail*.  Replaying the same decision vector replays the same
schedule, cycle for cycle, because everything else in the simulator is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class ChoicePoint:
    """One recorded decision: ``chosen`` out of ``options`` behaviours."""

    options: int
    chosen: int
    tag: str

    def __str__(self) -> str:
        return "%s:%d/%d" % (self.tag or "choice", self.chosen, self.options)


class ScriptedChoices:
    """A choice source that follows a decision vector, then defaults.

    Parameters
    ----------
    decisions:
        The prefix to replay.  Decision ``i`` scripts the ``i``-th
        choice point of the run; past the end of the vector the source
        falls back to the default (0 = the scheduler's own behaviour)
        or, when ``rng`` is given, to a uniformly random alternative
        (the seeded random-walk mode).
    rng:
        Optional :class:`DeterministicRng` for the random tail.
    max_depth:
        Choice points past this index always take the default --
        bounds the DFS tree depth (and keeps random walks finite-ish).
    max_branch:
        Alternatives per choice point are clamped to this many --
        bounds the DFS tree width.

    Attributes
    ----------
    trail:
        The :class:`ChoicePoint` actually taken at every choice point,
        scripted or not.  ``[p.chosen for p in trail]`` is the exact
        decision vector that reproduces this run.
    """

    def __init__(
        self,
        decisions: Sequence[int] = (),
        rng: Optional[DeterministicRng] = None,
        max_depth: int = 64,
        max_branch: int = 8,
    ) -> None:
        self.decisions = list(decisions)
        self.rng = rng
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.trail: List[ChoicePoint] = []
        #: Optional hook called with the choice index before each
        #: decision is made.  The fleet layer (:mod:`repro.fleet`)
        #: installs one to take prefix snapshots / state probes at
        #: choice points; ordinary runs leave it None and pay nothing.
        self.before_choice = None

    def choose(self, options: int, tag: str = "") -> int:
        options = min(options, self.max_branch)
        index = len(self.trail)
        if self.before_choice is not None:
            self.before_choice(index)
        if index < len(self.decisions):
            chosen = min(self.decisions[index], options - 1)
        elif index >= self.max_depth or self.rng is None:
            chosen = 0
        else:
            chosen = self.rng.randrange(options)
        self.trail.append(ChoicePoint(options, chosen, tag))
        return chosen

    @property
    def vector(self) -> List[int]:
        """The decision vector that replays this run exactly."""
        return [point.chosen for point in self.trail]

    def __repr__(self) -> str:
        return "ScriptedChoices(%d scripted, %d taken)" % (
            len(self.decisions),
            len(self.trail),
        )
