"""The checker CLI: ``python -m repro.check <command>``.

Explore a workload's schedules and check invariants::

    python -m repro.check list
    python -m repro.check explore --workload lock_storm --mode random
    python -m repro.check explore --workload writer_cancel \\
        --preseed wrlock-cancel --mode random --runs 80
    python -m repro.check replay --workload writer_cancel \\
        --preseed wrlock-cancel --decisions 0,0,3

``explore`` searches (DFS or seeded random walks), shrinks the first
failure to a minimal decision vector, and prints the replay command.
``replay`` runs a decision vector twice and verifies the two schedules
are identical (the reproducibility property the paper prizes) before
reporting the failure it triggers.  Exit status: 0 when no violation
was found (or the replay reproduced nothing), 1 when a violation was
found and reproduced.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from repro.check import workloads as check_workloads
from repro.check.explore import Explorer, ExploreReport, RunResult
from repro.check.preseed import BUGS, preseeded
from repro.check.reduce import Reducer
from repro.debug.replay import compare_schedules
from repro.obs.cli import WORKLOADS as BENCH_WORKLOADS

#: name -> (factory(scale) -> workload main, main-thread priority).
#: The bench workloads are shared with ``python -m repro.obs``; the
#: two targeted ones exercise the checker's protocol windows.
WORKLOADS: Dict[str, Tuple[Callable[[int], Callable], int]] = dict(
    BENCH_WORKLOADS
)
WORKLOADS.update(
    {
        "cond_relay": (
            lambda scale: check_workloads.cond_relay(waiters=2 * scale),
            100,
        ),
        "writer_cancel": (
            lambda scale: check_workloads.writer_cancel(hold_us=500.0 * scale),
            100,
        ),
        "pooled_server": (
            lambda scale: check_workloads.pooled_server(
                clients=3 * scale, workers=2
            ),
            100,
        ),
        "smp_timer_mutex": (
            lambda scale: check_workloads.smp_timer_mutex(
                workers=2 * scale, iterations=4 * scale
            ),
            100,
        ),
    }
)


def make_explorer(args: argparse.Namespace) -> Explorer:
    try:
        factory, priority = WORKLOADS[args.workload]
    except KeyError:
        raise SystemExit(
            "unknown workload %r (have: %s)"
            % (args.workload, ", ".join(sorted(WORKLOADS)))
        )
    return Explorer(
        lambda: factory(args.scale),
        priority=priority,
        model=args.model,
        seed=args.world_seed,
        max_depth=args.max_depth,
        max_branch=args.max_branch,
        ncpus=args.ncpus,
    )


def _parse_decisions(text: str):
    text = text.strip()
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def _print_failure(result: RunResult, args: argparse.Namespace) -> None:
    print("FAILURE: %s" % result.failure)
    print("  decision vector : %s" % (result.decisions or "[] (default)"))
    print(
        "  trail           : %s"
        % " ".join(str(point) for point in result.trail[:16])
    )
    print("  schedule steps  : %d" % len(result.schedule))
    print("  elapsed         : %.1f us" % result.elapsed_us)
    replay = "python -m repro.check replay --workload %s --decisions %s" % (
        args.workload,
        ",".join(str(d) for d in result.decisions) or "''",
    )
    if args.preseed:
        replay += " --preseed %s" % args.preseed
    print("  replay with     : %s" % replay)


def cmd_list(args: argparse.Namespace) -> int:
    del args
    print("workloads:")
    for name in sorted(WORKLOADS):
        origin = "bench" if name in BENCH_WORKLOADS else "check"
        print("  %-20s (%s)" % (name, origin))
    print("preseedable bugs:")
    for name in sorted(BUGS):
        print("  %s" % name)
    return 0


def _fleet_note(report, requested_jobs: int = 1) -> None:
    """Fleet diagnostics go to stderr: stdout is the determinism
    contract (byte-identical for any --jobs), execution detail is not.

    Printed whenever parallelism was *requested*: on a small host the
    core-count cap may have degraded the request to in-process, and
    saying so beats silence."""
    fleet = report.fleet
    if fleet is None or (requested_jobs <= 1 and fleet.backend == "inproc"):
        return
    note = "fleet: backend=%s jobs=%d tasks=%d" % (
        fleet.backend,
        fleet.jobs,
        fleet.tasks,
    )
    if fleet.snapshots_created:
        note += " snapshots=%d hits=%d steps_saved=%d" % (
            fleet.snapshots_created,
            fleet.snapshot_hits,
            fleet.steps_saved,
        )
    if fleet.fallbacks:
        note += " fallbacks=%d" % fleet.fallbacks
    print(note, file=sys.stderr)


def cmd_explore(args: argparse.Namespace) -> int:
    explorer = make_explorer(args)
    with preseeded(args.preseed):
        if args.mode == "dfs":
            report = explorer.explore_dfs(
                max_runs=args.runs,
                jobs=args.jobs,
                snapshot=args.snapshots,
            )
        else:
            report = explorer.explore_random(
                runs=args.runs, seed=args.seed, jobs=args.jobs
            )
        print(report.render())
        _fleet_note(report, requested_jobs=args.jobs)
        failure = report.first_failure
        if failure is None:
            print("no violations found")
            return 0
        reducer = Reducer(explorer)
        minimized = reducer.shrink(failure)
        print(
            "minimized in %d attempts (%d -> %d decisions)"
            % (
                reducer.attempts,
                len(failure.vector),
                len(minimized.decisions),
            )
        )
        _print_failure(minimized, args)
    return 1


def cmd_replay(args: argparse.Namespace) -> int:
    explorer = make_explorer(args)
    decisions = _parse_decisions(args.decisions)
    with preseeded(args.preseed):
        first = explorer.run_once(decisions, extract=True)
        second = explorer.run_once(decisions, extract=True)
    diff = compare_schedules(first.schedule, second.schedule)
    if not diff:
        print("NOT DETERMINISTIC: %s" % diff.detail)
        return 2
    print(
        "deterministic: %d dispatches, identical across two runs"
        % len(first.schedule)
    )
    if first.failure is None:
        print("no failure under this schedule")
        return 0
    _print_failure(first, args)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Schedule exploration and invariant checking.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", required=True)
        p.add_argument("--scale", type=int, default=1)
        p.add_argument("--model", default="sparc-ipx")
        p.add_argument("--world-seed", type=int, default=0)
        p.add_argument("--max-depth", type=int, default=64)
        p.add_argument("--max-branch", type=int, default=4)
        p.add_argument(
            "--ncpus",
            type=int,
            default=1,
            help="simulated CPUs (>1 routes async signals via IPI)",
        )
        p.add_argument(
            "--preseed",
            choices=sorted(BUGS),
            default=None,
            help="temporarily reinstate a fixed bug first",
        )

    p_list = sub.add_parser("list", help="list workloads and bugs")
    p_list.set_defaults(fn=cmd_list)

    p_explore = sub.add_parser("explore", help="search for violations")
    common(p_explore)
    p_explore.add_argument("--mode", choices=("dfs", "random"), default="dfs")
    p_explore.add_argument("--runs", type=int, default=200)
    p_explore.add_argument(
        "--seed", type=int, default=1234, help="random-walk seed"
    )
    p_explore.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (output is byte-identical for any value)",
    )
    p_explore.add_argument(
        "--snapshots",
        dest="snapshots",
        action="store_true",
        default=None,
        help="checkpoint DFS prefixes (default: on when --jobs > 1)",
    )
    p_explore.add_argument(
        "--no-snapshots",
        dest="snapshots",
        action="store_false",
        help="replay every DFS schedule from scratch",
    )
    p_explore.set_defaults(fn=cmd_explore)

    p_replay = sub.add_parser("replay", help="replay a decision vector")
    common(p_replay)
    p_replay.add_argument(
        "--decisions",
        default="",
        help="comma-separated decision vector, e.g. 0,0,3",
    )
    p_replay.set_defaults(fn=cmd_replay)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
