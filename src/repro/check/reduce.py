"""Shrinking a failing schedule to a minimal reproducer.

A failing decision vector found by DFS or a random walk usually
contains many decisions that have nothing to do with the bug.  The
reducer greedily replaces decisions with the default (0) and strips
the defaulted tail, keeping a change only when the re-run fails the
*same* way (same kind and rule) -- the standard delta-debugging
criterion, specialised for the fact that 0 is always a legal decision
and that a vector is equivalent to itself minus trailing zeros.

The minimized result's schedule (its ``dispatch`` trace) is the thing
to stare at: it is typically a handful of forced switches around the
exact window the bug needs.
"""

from __future__ import annotations

from typing import List

from repro.check.explore import Explorer, RunResult


def _strip(vector: List[int]) -> List[int]:
    """Trailing zeros are the default anyway: drop them."""
    end = len(vector)
    while end and vector[end - 1] == 0:
        end -= 1
    return vector[:end]


class Reducer:
    """Shrinks failing decision vectors against an :class:`Explorer`."""

    def __init__(self, explorer: Explorer, max_attempts: int = 200) -> None:
        self.explorer = explorer
        self.max_attempts = max_attempts
        self.attempts = 0

    def shrink(self, result: RunResult) -> RunResult:
        """Minimize ``result``'s decision vector; returns the best run.

        The returned :class:`RunResult` re-ran under the minimized
        vector and still exhibits the same failure; its ``decisions``
        are the minimal schedule and its ``schedule`` the dispatch
        sequence to publish.
        """
        failure = result.failure
        if failure is None:
            raise ValueError("cannot shrink a passing run")
        self.attempts = 0
        best = result
        vector = _strip(list(result.vector))
        if len(vector) < len(result.vector):
            candidate = self._try(vector, best)
            if candidate is not None:
                best = candidate
        improved = True
        while improved and self.attempts < self.max_attempts:
            improved = False
            # Zero decisions from the back: late forced switches are
            # the likeliest to be incidental.
            for index in reversed(range(len(vector))):
                if vector[index] == 0:
                    continue
                trial = _strip(vector[:index] + [0] + vector[index + 1:])
                candidate = self._try(trial, best)
                if candidate is not None:
                    vector = trial
                    best = candidate
                    improved = True
                if self.attempts >= self.max_attempts:
                    break
        return best

    def _try(self, vector: List[int], best: RunResult):
        self.attempts += 1
        run = self.explorer.run_once(vector)
        if run.failure is not None and run.failure.same_as(best.failure):
            run.decisions = list(vector)
            return run
        return None
