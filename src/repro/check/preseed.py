"""Re-seed fixed bugs so the checker can demonstrate finding them.

The schedule-exploration harness earned its keep by catching real
latent bugs (since fixed in :mod:`repro.core`).  This module puts the
pre-fix code back -- temporarily, under a context manager -- so tests
and the CLI can demonstrate, on demand, that the explorer still finds
them.  Each entry reinstates the shipped pre-fix logic; where the
original hazard window sat *between* two operations that this
simulator executes atomically (plain statements glue to the following
library call), the window is made reachable again with an explicit
``pthread_testintr`` cancellation point, which any real preemption or
longer code path would provide for free.

Known bugs:

- ``grant-to-waker``: the condvar waker path queued a woken thread on
  a held mutex bumping only the run-wide contention counter, never the
  per-mutex one.  Caught by the ``mutex-counter-agreement`` rule.
- ``wrlock-cancel``: the writer-lock path claimed ``waiting_writers``
  *before* registering the cleanup handler that withdraws the claim
  (and releases the internal mutex).  A cancellation landing in that
  window kills the writer with the claim leaked and the mutex held.
  Caught by ``mutex-owner-dead`` (and, if the run limps to the end,
  the quiescent rules).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.core import rwlock as _rwlock_mod
from repro.core.errors import OK
from repro.core.mutex import MutexOps
from repro.core.tcb import Tcb, WaitRecord
from repro.hw import costs


def _prefix_grant_to_waker(self, tcb: Tcb, mutex, result: int) -> bool:
    """The pre-fix waker path: run-wide counter only (asymmetric)."""
    rt = self.rt
    if not mutex.locked:
        mutex.cell.value = 0xFF
        mutex.owner = tcb
        mutex.acquisitions += 1
        rt.protocols.on_acquired(tcb, mutex)
        if tcb.wait is not None:
            tcb.wait.deliver(result)
        rt.sched.make_ready(tcb)
        return True
    record = WaitRecord(
        kind="mutex",
        obj=mutex,
        frame=tcb.wait.frame if tcb.wait else tcb.frames.top,
        since=rt.world.now,
        interruptible=False,
        teardown=lambda: mutex.waiters.remove(tcb),
        data={"result": result},
    )
    tcb.wait = record
    mutex.waiters.add(tcb)
    self.contentions += 1  # the bug: mutex.contentions not bumped
    rt.protocols.on_contention(tcb, mutex)
    return False


def _prefix_writer_cancel_cleanup(pt, rw):
    """Pre-fix cleanup: withdraws the claim unconditionally."""
    rw.waiting_writers -= 1
    if rw.waiting_writers == 0 and rw.active_writer is None:
        yield pt.cond_broadcast(rw.readers_cond)
    yield pt.mutex_unlock(rw.mutex)


def _prefix_wrlock_body(pt, rw):
    """Pre-fix writer lock: claim registered before its cleanup.

    The ``testintr`` makes the original hazard window (claim taken,
    cleanup not yet pushed, internal mutex held) reachable under this
    simulator's step atomicity; see the module docstring.
    """
    yield pt.charge(costs.SEM_OVERHEAD)
    me = yield pt.self_id()
    yield pt.mutex_lock(rw.mutex)
    rw.waiting_writers += 1
    yield pt.testintr()  # the window: cancellation here leaks the claim
    yield pt.cleanup_push(_prefix_writer_cancel_cleanup, rw)
    while rw.active_writer is not None or rw.active_readers > 0:
        yield pt.cond_wait(rw.writers_cond, rw.mutex)
    rw.waiting_writers -= 1
    rw.active_writer = me
    rw.write_acquisitions += 1
    yield pt.cleanup_pop(False)
    yield pt.mutex_unlock(rw.mutex)
    return OK


def _seed_grant_to_waker():
    original = MutexOps.grant_to_waker
    MutexOps.grant_to_waker = _prefix_grant_to_waker
    return lambda: setattr(MutexOps, "grant_to_waker", original)


def _seed_wrlock_cancel():
    original = _rwlock_mod.wrlock_body
    # The PT facade resolves the body from the module at call time, so
    # swapping the module attribute reroutes every new wrlock call.
    _rwlock_mod.wrlock_body = _prefix_wrlock_body
    return lambda: setattr(_rwlock_mod, "wrlock_body", original)


BUGS = {
    "grant-to-waker": _seed_grant_to_waker,
    "wrlock-cancel": _seed_wrlock_cancel,
}


@contextmanager
def preseeded(bug: Optional[str]) -> Iterator[None]:
    """Temporarily reinstate a fixed bug (None is a no-op)."""
    if bug is None:
        yield
        return
    try:
        seeder = BUGS[bug]
    except KeyError:
        raise ValueError(
            "unknown bug %r (have: %s)" % (bug, ", ".join(sorted(BUGS)))
        )
    restore = seeder()
    try:
        yield
    finally:
        restore()
