"""Tolerance-band comparison between two suite results.

This generalizes the old host-only ``check_regression.py`` contract
across every suite:

- ``exact`` metrics (virtual-clock outputs) must match bit for bit --
  any difference is a **divergence**: the simulation's semantics
  changed and the baseline must be regenerated deliberately, which is
  a different problem from a slow host path and is reported as such;
- ``higher``/``lower`` metrics fail only outside their tolerance band
  (the record's own ``tolerance`` or the gate-wide default, 20% as
  before); improvements beyond the band are reported but never fail;
- ``info`` metrics are skipped;
- a metric present in the baseline but missing from the current run
  fails (silently dropping a measurement is itself a regression);
- mismatched suite names or runner configs make the results
  **incomparable**, which also fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bench.schema import NONCOMPARABLE_CONFIG, SuiteResult

#: The historical host-gate band, now the default for every suite.
DEFAULT_TOLERANCE = 0.20

#: Finding statuses that make the gate exit nonzero.
FAIL_STATUSES = frozenset({"regressed", "diverged", "missing", "incomparable"})


@dataclass
class Finding:
    """One compared metric (or one structural problem)."""

    status: str  # ok | improved | regressed | diverged | missing | incomparable
    workload: str
    metric: str
    message: str
    baseline_value: Optional[float] = None
    current_value: Optional[float] = None
    params: Optional[Dict[str, Any]] = None

    @property
    def failed(self) -> bool:
        return self.status in FAIL_STATUSES

    def label(self) -> str:
        extras = ""
        if self.params:
            extras = "[%s]" % ",".join(
                "%s=%s" % (k, v) for k, v in sorted(self.params.items())
                if k != "sweep" or v != "cold"
            )
        return "%s/%s%s" % (self.workload, self.metric, extras)


def _comparable_config(config: Dict[str, Any]) -> Dict[str, Any]:
    return {
        key: value
        for key, value in config.items()
        if key not in NONCOMPARABLE_CONFIG
    }


def compare_results(
    baseline: SuiteResult,
    current: SuiteResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Finding]:
    """Compare every gated baseline metric against the current run."""
    findings: List[Finding] = []
    if baseline.suite != current.suite:
        return [
            Finding(
                status="incomparable",
                workload="-",
                metric="suite",
                message="suite mismatch: baseline is %r, current is %r"
                % (baseline.suite, current.suite),
            )
        ]
    base_cfg = _comparable_config(baseline.config)
    cur_cfg = _comparable_config(current.config)
    if base_cfg != cur_cfg:
        differing = sorted(
            key
            for key in set(base_cfg) | set(cur_cfg)
            if base_cfg.get(key) != cur_cfg.get(key)
        )
        return [
            Finding(
                status="incomparable",
                workload="-",
                metric="config",
                message="config mismatch on %s: baseline %r vs current %r "
                "-- results are not comparable"
                % (
                    differing,
                    {k: base_cfg.get(k) for k in differing},
                    {k: cur_cfg.get(k) for k in differing},
                ),
            )
        ]

    current_by_key = current.by_key()
    for record in baseline.records:
        if record.direction == "info":
            continue
        cur = current_by_key.get(record.key())
        common = dict(
            workload=record.workload,
            metric=record.metric,
            params=dict(record.params),
            baseline_value=record.value,
        )
        if cur is None:
            findings.append(
                Finding(
                    status="missing",
                    message="metric missing from the current run "
                    "(baseline %g %s)" % (record.value, record.unit),
                    **common,
                )
            )
            continue
        common["current_value"] = cur.value
        if record.direction == "exact":
            if cur.value != record.value:
                findings.append(
                    Finding(
                        status="diverged",
                        message="deterministic output diverged "
                        "(%r -> %r %s) -- semantics changed; regenerate "
                        "the baseline deliberately"
                        % (record.value, cur.value, record.unit),
                        **common,
                    )
                )
            else:
                findings.append(
                    Finding(status="ok", message="exact match", **common)
                )
            continue

        band = record.tolerance if record.tolerance is not None else tolerance
        if record.value == 0:
            # A zero baseline has no relative band; only report change.
            status = "ok" if cur.value == record.value else "improved"
            findings.append(
                Finding(
                    status=status,
                    message="baseline is zero; recorded %g %s"
                    % (cur.value, record.unit),
                    **common,
                )
            )
            continue
        ratio = cur.value / record.value
        if record.direction == "higher":
            regressed = ratio < (1.0 - band)
            improved = ratio > (1.0 + band)
        else:  # lower
            regressed = ratio > (1.0 + band)
            improved = ratio < (1.0 - band)
        if regressed:
            findings.append(
                Finding(
                    status="regressed",
                    message="%g %s is %.1f%% %s the baseline %g "
                    "(band %.0f%%)"
                    % (
                        cur.value,
                        record.unit,
                        abs(1.0 - ratio) * 100.0,
                        "below" if record.direction == "higher" else "above",
                        record.value,
                        band * 100.0,
                    ),
                    **common,
                )
            )
        elif improved:
            findings.append(
                Finding(
                    status="improved",
                    message="%g %s beats the baseline %g by %.1f%%"
                    % (
                        cur.value,
                        record.unit,
                        record.value,
                        abs(1.0 - ratio) * 100.0,
                    ),
                    **common,
                )
            )
        else:
            findings.append(
                Finding(
                    status="ok",
                    message="within the %.0f%% band (ratio %.2f)"
                    % (band * 100.0, ratio),
                    **common,
                )
            )
    return findings


def failures(findings: List[Finding]) -> List[Finding]:
    return [finding for finding in findings if finding.failed]


def render_findings(
    findings: List[Finding], verbose: bool = False
) -> str:
    """An aligned comparison table; quiet rows collapse unless verbose."""
    shown = [
        f for f in findings
        if verbose or f.status not in ("ok",)
    ]
    ok_count = sum(1 for f in findings if f.status == "ok")
    lines: List[str] = []
    if shown:
        width = max(len(f.label()) for f in shown)
        swidth = max(len(f.status) for f in shown)
        for finding in shown:
            lines.append(
                "%-*s  %-*s  %s"
                % (width, finding.label(), swidth, finding.status,
                   finding.message)
            )
    if not verbose and ok_count:
        lines.append("(%d metrics in band, not shown)" % ok_count)
    if not findings:
        lines.append("(nothing gated: baseline has no comparable metrics)")
    return "\n".join(lines)
