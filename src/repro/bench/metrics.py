"""One measurement routine per Table 2 row.

Every routine builds a fresh world, runs the paper's scenario for that
metric through the real library code paths, and returns the measured
latency in simulated microseconds.  Nothing here charges costs
directly -- the numbers emerge from the code the library executes.

Scenarios follow the paper's text:

- mutex contention times "the interval between an unlock by thread A
  and the return from a lock operation by thread B (which was
  suspended while A held the mutex)";
- semaphore synchronization is "one Dijkstra P operation plus one V
  operation" in a two-thread ping-pong;
- thread creation excludes the context switch and assumes a pooled
  TCB/stack;
- the process context switch times "two alternating processes which
  activate each other by exchanging signals minus the time required
  for process signal delivery".
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.dualloop import LOOP_OVERHEAD_CYCLES
from repro.core.attr import ThreadAttr
from repro.core.config import RuntimeConfig
from repro.core.runtime import PthreadsRuntime
from repro.sim.world import World
from repro.unix import process as uproc
from repro.unix.kernel import UnixKernel
from repro.unix.signals import SigAction, SigCause
from repro.unix.sigset import SIGUSR1, SigSet

ITERS = 50


def _runtime(model: str) -> PthreadsRuntime:
    return PthreadsRuntime(
        model=model,
        config=RuntimeConfig(timeslice_us=None, pool_size=8),
    )


def _per_op(world: World, cycles: int, ops: int) -> float:
    """Dual-loop reduction: strip loop overhead, average per op."""
    return world.us(max(cycles - LOOP_OVERHEAD_CYCLES * ops, 0)) / ops


# ---------------------------------------------------------------------------
# Rows
# ---------------------------------------------------------------------------


def measure_kernel_enter_exit(model: str) -> float:
    """Row 1: set/clear the kernel flag (the library's "kernel call")."""
    rt = _runtime(model)
    world = rt.world
    start = world.now
    for _ in range(ITERS):
        rt.kern.enter()
        rt.kern.leave()
        world.spend_cycles(LOOP_OVERHEAD_CYCLES, fire=False)
    return _per_op(world, world.now - start, ITERS)


def measure_unix_kernel_enter_exit(model: str) -> float:
    """Row 2: a ``getpid`` round trip into the UNIX kernel."""
    rt = _runtime(model)
    out: Dict[str, float] = {}

    def main(pt):
        world = pt.runtime.world
        start = world.now
        for _ in range(ITERS):
            yield pt.unix_getpid()
            yield pt.work(LOOP_OVERHEAD_CYCLES)
        out["us"] = _per_op(world, world.now - start, ITERS)

    rt.main(main)
    rt.run()
    return out["us"]


def measure_mutex_pair_uncontended(model: str) -> float:
    """Row 3: lock + unlock of a free, no-protocol mutex."""
    rt = _runtime(model)
    out: Dict[str, float] = {}

    def main(pt):
        world = pt.runtime.world
        mutex = yield pt.mutex_init()
        start = world.now
        for _ in range(ITERS):
            yield pt.mutex_lock(mutex)
            yield pt.mutex_unlock(mutex)
            yield pt.work(LOOP_OVERHEAD_CYCLES)
        out["us"] = _per_op(world, world.now - start, ITERS)

    rt.main(main)
    rt.run()
    return out["us"]


def measure_mutex_pair_contended(model: str) -> float:
    """Row 4: unlock by A until the suspended B's lock returns."""
    rt = _runtime(model)
    world = rt.world
    unlock_at: List[int] = []
    return_at: List[int] = []
    rounds = 12

    def contender(pt, mutex, gate):
        # High priority: each round it blocks on the mutex held by A.
        for _ in range(rounds):
            yield pt.sem_wait(gate)  # wait until A holds the mutex
            yield pt.mutex_lock(mutex)  # suspends; A will unlock
            return_at.append(pt.runtime.world.now)
            yield pt.mutex_unlock(mutex)

    def main(pt):
        mutex = yield pt.mutex_init()
        gate = yield pt.sem_init(0)
        b = yield pt.create(
            contender, mutex, gate,
            attr=ThreadAttr(priority=100), name="B",
        )
        for _ in range(rounds):
            yield pt.mutex_lock(mutex)
            yield pt.sem_post(gate)  # B runs, blocks on the mutex
            unlock_at.append(pt.runtime.world.now)
            yield pt.mutex_unlock(mutex)  # B preempts and returns
        yield pt.join(b)

    rt.main(main, priority=20)
    rt.run()
    deltas = [r - u for u, r in zip(unlock_at, return_at)]
    return world.us(sum(deltas)) / len(deltas)


def measure_semaphore_sync(model: str) -> float:
    """Row 5: one P plus one V, two-thread ping-pong."""
    rt = _runtime(model)
    out: Dict[str, float] = {}
    rounds = 20

    def partner(pt, s1, s2):
        for _ in range(rounds):
            yield pt.sem_wait(s1)
            yield pt.sem_post(s2)

    def main(pt):
        world = pt.runtime.world
        s1 = yield pt.sem_init(0)
        s2 = yield pt.sem_init(0)
        other = yield pt.create(partner, s1, s2, name="partner")
        start = world.now
        for _ in range(rounds):
            yield pt.sem_post(s1)
            yield pt.sem_wait(s2)
        # Each round performs two P and two V operations.
        out["us"] = world.us(world.now - start) / (2 * rounds)
        yield pt.join(other)

    rt.main(main)
    rt.run()
    return out["us"]


def measure_thread_create(model: str) -> float:
    """Row 6: pthread_create with a pooled TCB/stack, no switch."""
    rt = _runtime(model)
    out: Dict[str, float] = {}

    def child(pt):
        return
        yield  # pragma: no cover - makes it a generator

    def main(pt):
        world = pt.runtime.world
        total = 0
        for _ in range(ITERS):
            start = world.now
            # Lower priority: the child cannot preempt the creator.
            t = yield pt.create(child, attr=ThreadAttr(priority=10))
            total += world.now - start
            yield pt.join(t)  # recycle the pool entry
        out["us"] = world.us(total) / ITERS

    rt.main(main, priority=50)
    rt.run()
    return out["us"]


def measure_setjmp_longjmp(model: str) -> float:
    """Row 7: a setjmp/longjmp pair."""
    rt = _runtime(model)
    out: Dict[str, float] = {}

    def jumper(pt, buf):
        yield pt.longjmp(buf, 1)

    def main(pt):
        world = pt.runtime.world
        start = world.now
        for _ in range(ITERS):
            buf = yield pt.jmp_buf()
            jumped, value = yield pt.setjmp_block(buf, jumper, buf)
            assert jumped and value == 1
            yield pt.work(LOOP_OVERHEAD_CYCLES)
        out["us"] = _per_op(world, world.now - start, ITERS)

    rt.main(main)
    rt.run()
    return out["us"]


def measure_thread_context_switch(model: str) -> float:
    """Row 8: yield ping-pong between two equal-priority threads."""
    rt = _runtime(model)
    out: Dict[str, float] = {}
    rounds = 25

    def partner(pt):
        for _ in range(rounds):
            yield pt.yield_()

    def main(pt):
        world = pt.runtime.world
        other = yield pt.create(partner, name="partner")
        start = world.now
        for _ in range(rounds):
            yield pt.yield_()
        out["us"] = world.us(world.now - start) / (2 * rounds)
        yield pt.join(other)

    rt.main(main)
    rt.run()
    return out["us"]


def measure_process_context_switch(model: str) -> float:
    """Row 9: alternating processes exchanging signals, minus the
    signal-delivery time (the paper's subtraction)."""
    rounds = 10

    # Part 1: the ping-pong.
    world = World(model)
    kernel = UnixKernel(world)

    def body(pt_ignored=None, peer_pid=None):
        raise NotImplementedError  # replaced below

    def make_body(peer_pid_holder, n):
        def process_body():
            for i in range(n):
                yield uproc.kill(peer_pid_holder[0], SIGUSR1)
                if i < n - 1:
                    yield uproc.pause()
        return process_body

    peer_a: List[int] = [0]
    peer_b: List[int] = [0]
    proc_a = uproc.UnixProcess(kernel, make_body(peer_a, rounds), name="A")
    proc_b = uproc.UnixProcess(kernel, make_body(peer_b, rounds), name="B")
    peer_a[0] = proc_b.pid
    peer_b[0] = proc_a.pid
    for proc in (proc_a, proc_b):
        kernel.sigaction(
            proc, SIGUSR1, SigAction(handler=lambda sig, cause: None)
        )
    sched = uproc.UnixScheduler(world, kernel)
    sched.add(proc_a)
    sched.add(proc_b)
    start = world.now
    sched.run()
    elapsed = world.now - start
    switches = sched.process_switches
    per_round = elapsed / max(switches, 1)

    # Part 2: signal delivery alone (self-signal, same kernel costs).
    world2 = World(model)
    kernel2 = UnixKernel(world2)
    proc_c = uproc.UnixProcess(kernel2, None, name="C")
    proc_c.auto_deliver = True
    kernel2.sigaction(
        proc_c, SIGUSR1, SigAction(handler=lambda sig, cause: None)
    )
    start2 = world2.now
    for _ in range(rounds):
        kernel2.kill(proc_c, SIGUSR1)
    delivery = (world2.now - start2) / rounds

    # Each switch carries one kill + one delivery + one pause with it.
    pause_overhead = world.model.cost("syscall")
    return world.us(int(per_round - delivery - pause_overhead))


def measure_signal_internal(model: str) -> float:
    """Row 10: pthread_kill to a suspended thread until its handler
    runs -- no UNIX kernel involvement at all."""
    rt = _runtime(model)
    world = rt.world
    sent: List[int] = []
    received: List[int] = []
    rounds = 10

    def handler(pt, sig):
        received.append(pt.runtime.world.now)
        return
        yield  # pragma: no cover

    def victim(pt):
        # Suspend forever; each signal interrupts the delay, runs the
        # handler, and the wait returns EINTR -- so loop.
        for _ in range(rounds):
            yield pt.delay_us(1_000_000)

    def main(pt):
        yield pt.sigaction(SIGUSR1, handler)
        v = yield pt.create(
            victim, attr=ThreadAttr(priority=100), name="victim"
        )
        yield pt.delay_us(50)
        for _ in range(rounds):
            sent.append(pt.runtime.world.now)
            yield pt.kill(v, SIGUSR1)
            yield pt.delay_us(50)
        yield pt.cancel(v)
        yield pt.join(v)

    rt.main(main, priority=50)
    rt.run()
    deltas = [r - s for s, r in zip(sent, received)]
    return world.us(sum(deltas)) / len(deltas)


def measure_signal_external(model: str) -> float:
    """Row 11: a signal from outside the process, demultiplexed by the
    universal handler to the right thread's handler."""
    rt = _runtime(model)
    world = rt.world
    sent: List[int] = []
    received: List[int] = []
    rounds = 10

    def handler(pt, sig):
        received.append(pt.runtime.world.now)
        return
        yield  # pragma: no cover

    def victim(pt):
        for _ in range(rounds):
            yield pt.delay_us(1_000_000)

    def main(pt):
        from repro.core.signals import SIG_BLOCK

        yield pt.sigaction(SIGUSR1, handler)
        # Only the victim leaves SIGUSR1 unmasked: rule 5's linear
        # search directs the external signal at it.
        yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR1]))
        yield pt.create(victim, attr=ThreadAttr(priority=100), name="victim")
        # Busy main-loop: external signals land mid-computation.
        for _ in range(rounds):
            yield pt.work(world.cycles_for_us(400))

    def external_sender():
        sent.append(world.now)
        rt.unix.kill(rt.proc, SIGUSR1)

    for i in range(rounds):
        rt.world.schedule_in(
            world.cycles_for_us(300 + 400 * i), external_sender, name="ext"
        )
    rt.main(main, priority=50)
    rt.run(until_us=300 + 400 * (rounds + 2))
    deltas = [r - s for s, r in zip(sent, received)]
    return world.us(sum(deltas)) / len(deltas)


def measure_unix_signal_handler(model: str) -> float:
    """Row 12: raw UNIX signal delivery to an ordinary handler."""
    world = World(model)
    kernel = UnixKernel(world)
    proc = uproc.UnixProcess(kernel, None, name="solo")
    proc.auto_deliver = True
    received: List[int] = []
    kernel.sigaction(
        proc,
        SIGUSR1,
        SigAction(handler=lambda sig, cause: received.append(world.now)),
    )
    rounds = 10
    sent = []
    for _ in range(rounds):
        sent.append(world.now)
        # Posted by "the sender": the receiver pays delivery, not the
        # sender's kill syscall.
        kernel.post_signal(proc, SIGUSR1, SigCause(kind="external"))
    deltas = [r - s for s, r in zip(sent, received)]
    return world.us(sum(deltas)) / len(deltas)


MEASUREMENTS: Dict[str, Callable[[str], float]] = {
    "kernel_enter_exit": measure_kernel_enter_exit,
    "unix_kernel_enter_exit": measure_unix_kernel_enter_exit,
    "mutex_pair_uncontended": measure_mutex_pair_uncontended,
    "mutex_pair_contended": measure_mutex_pair_contended,
    "semaphore_sync": measure_semaphore_sync,
    "thread_create": measure_thread_create,
    "setjmp_longjmp": measure_setjmp_longjmp,
    "thread_context_switch": measure_thread_context_switch,
    "process_context_switch": measure_process_context_switch,
    "signal_internal": measure_signal_internal,
    "signal_external": measure_signal_external,
    "unix_signal_handler": measure_unix_signal_handler,
}


def measure_row(key: str, model: str) -> float:
    """Measure one Table 2 row on one CPU model."""
    return MEASUREMENTS[key](model)


def measure_all(model: str) -> Dict[str, float]:
    """Measure every Table 2 row on one CPU model."""
    return {key: fn(model) for key, fn in MEASUREMENTS.items()}
