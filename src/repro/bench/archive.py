"""Per-commit benchmark history: ``benchmarks/history/<commit>/<suite>.json``.

The archive is a plain directory tree so results diff cleanly in
review, plus an ``index.json`` recording commit *order* -- directory
listings sort lexically by hash, which is useless for a trend line.
``save_result`` appends the commit to the index on first sight;
``list_commits`` returns index order and sweeps in any unindexed
directories (hand-copied entries) at the end so nothing archived is
ever invisible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.schema import SchemaError, SuiteResult

#: Repo-relative default; the CLI resolves it against the cwd.
DEFAULT_HISTORY = Path("benchmarks") / "history"

INDEX_NAME = "index.json"


def _index_path(history_dir: Path) -> Path:
    return Path(history_dir) / INDEX_NAME


def _read_index(history_dir: Path) -> List[str]:
    path = _index_path(history_dir)
    if not path.exists():
        return []
    with path.open() as fh:
        payload = json.load(fh)
    commits = payload.get("commits", [])
    if not isinstance(commits, list):
        raise SchemaError("%s: 'commits' must be a list" % path)
    return [str(c) for c in commits]


def _write_index(history_dir: Path, commits: List[str]) -> None:
    path = _index_path(history_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump({"commits": commits}, fh, indent=2)
        fh.write("\n")


def list_commits(history_dir) -> List[str]:
    """Archived commits, oldest first (index order + unindexed extras)."""
    history_dir = Path(history_dir)
    commits = _read_index(history_dir)
    if history_dir.is_dir():
        indexed = set(commits)
        extras = sorted(
            entry.name
            for entry in history_dir.iterdir()
            if entry.is_dir() and entry.name not in indexed
        )
        commits.extend(extras)
    return commits


def save_result(
    result: SuiteResult, history_dir, commit: Optional[str] = None
) -> Path:
    """Archive one suite result under its commit; returns the path."""
    history_dir = Path(history_dir)
    commit = commit or result.env.commit
    if not commit or commit == "unknown":
        raise SchemaError(
            "cannot archive without a commit label (env.commit is %r); "
            "pass --commit" % (result.env.commit,)
        )
    result.validate()
    path = history_dir / commit / ("%s.json" % result.suite)
    result.save(path)
    commits = _read_index(history_dir)
    if commit not in commits:
        commits.append(commit)
        _write_index(history_dir, commits)
    return path


def load_entry(history_dir, commit: str) -> Dict[str, SuiteResult]:
    """All suites archived for one commit, ``{suite: result}``."""
    entry_dir = Path(history_dir) / commit
    if not entry_dir.is_dir():
        raise FileNotFoundError(
            "no archived entry for commit %r under %s" % (commit, history_dir)
        )
    out: Dict[str, SuiteResult] = {}
    for path in sorted(entry_dir.glob("*.json")):
        result = SuiteResult.load(path)
        out[result.suite] = result
    return out


def load_history(history_dir) -> List[Dict[str, object]]:
    """The whole archive, oldest first:
    ``[{"commit": c, "suites": {suite: SuiteResult}}, ...]``."""
    out = []
    for commit in list_commits(history_dir):
        try:
            suites = load_entry(history_dir, commit)
        except FileNotFoundError:
            continue  # indexed but deleted on disk; skip, don't crash
        out.append({"commit": commit, "suites": suites})
    return out


def latest_result(history_dir, suite: str) -> Optional[SuiteResult]:
    """The newest archived result for ``suite``, or ``None``."""
    for commit in reversed(list_commits(history_dir)):
        path = Path(history_dir) / commit / ("%s.json" % suite)
        if path.exists():
            return SuiteResult.load(path)
    return None
