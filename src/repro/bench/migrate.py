"""Legacy ``BENCH_*.json`` -> schema migration.

The three root-level files (``BENCH_host.json``, ``BENCH_net.json``,
``BENCH_fleet.json``) predate the unified schema; each had its own
ad-hoc shape.  This tool pushes them through the same adapters the
live runners use and archives the normalized results as a history
entry, so the committed numbers become the seed of the trend line and
the first gate baseline.  The legacy files stay in place until the
next regeneration (docs and muscle memory still point at them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.adapters import env_fingerprint, normalize
from repro.bench.archive import save_result
from repro.bench.schema import SuiteResult

#: suite -> legacy filename at the repo root.
LEGACY_FILES = {
    "host": "BENCH_host.json",
    "net": "BENCH_net.json",
    "fleet": "BENCH_fleet.json",
}


def migrate_file(
    suite: str, path, commit: Optional[str] = None
) -> SuiteResult:
    """Convert one legacy file into a validated :class:`SuiteResult`."""
    with open(path) as fh:
        payload = json.load(fh)
    env = env_fingerprint(commit=commit)
    if suite == "host":
        # The host file recorded the python that measured it; prefer
        # that over the migrating interpreter's version.
        if payload.get("python"):
            env.python = payload["python"]
    if suite == "fleet" and payload.get("host_cores"):
        env.cores = payload["host_cores"]
    return normalize(suite, payload, env=env)


def migrate_legacy(
    root=".",
    history_dir=None,
    commit: Optional[str] = None,
) -> Dict[str, Path]:
    """Convert every legacy file present under ``root`` and archive it.

    Returns ``{suite: archived path}``; suites whose legacy file is
    absent are skipped (the check suite never had one).
    """
    from repro.bench.archive import DEFAULT_HISTORY

    root = Path(root)
    history_dir = (
        root / DEFAULT_HISTORY if history_dir is None else Path(history_dir)
    )
    saved: Dict[str, Path] = {}
    for suite, filename in sorted(LEGACY_FILES.items()):
        legacy = root / filename
        if not legacy.exists():
            continue
        result = migrate_file(suite, legacy, commit=commit)
        saved[suite] = save_result(result, history_dir, commit=commit)
    return saved


def describe(saved: Dict[str, Path]) -> List[str]:
    return [
        "%s: %s" % (suite, path) for suite, path in sorted(saved.items())
    ]
