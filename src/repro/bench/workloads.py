"""Reusable synthetic workloads for benchmarks and stress tests.

The paper's evaluation is micro-benchmarks; these composite workloads
exercise the same primitives at scale (the "medium and fine-grain
models of parallelism" its Future Work contemplates) and are shared by
the scalability/ablation benches and the stress tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.attr import MutexAttr, ThreadAttr
from repro.core.runtime import PthreadsRuntime


def pipeline(stages: int, items: int, work_cycles: int = 500):
    """An ``stages``-deep pipeline over condvar-guarded queues.

    Returns a main generator; after the run, the returned dict (via
    the main thread's exit value) reports per-item latency.
    """

    def stage_body(pt, inbox, outbox, m, cv_in, cv_out):
        # Ops are immutable; building them once outside the loop keeps
        # the per-item path free of op allocation (bit-identical run).
        lock = pt.mutex_lock(m)
        unlock = pt.mutex_unlock(m)
        wait_in = pt.cond_wait(cv_in, m)
        burn = pt.work(work_cycles)
        signal_out = None if cv_out is None else pt.cond_signal(cv_out)
        while True:
            yield lock
            while not inbox:
                yield wait_in
            item = inbox.pop(0)
            yield unlock
            if item is None:
                if outbox is not None:
                    yield lock
                    outbox.append(None)
                    yield signal_out
                    yield unlock
                return
            yield burn
            if outbox is not None:
                yield lock
                outbox.append(item)
                yield signal_out
                yield unlock

    def main(pt):
        m = yield pt.mutex_init()
        queues = [[] for _ in range(stages + 1)]
        conds = []
        for _ in range(stages + 1):
            conds.append((yield pt.cond_init()))
        threads = []
        for s in range(stages):
            outbox = queues[s + 1] if s + 1 < stages else None
            cv_out = conds[s + 1] if s + 1 < stages else None
            threads.append(
                (
                    yield pt.create(
                        stage_body, queues[s], outbox, m,
                        conds[s], cv_out, name="stage-%d" % s,
                    )
                )
            )
        lock = pt.mutex_lock(m)
        unlock = pt.mutex_unlock(m)
        push = pt.cond_signal(conds[0])
        for item in list(range(items)) + [None]:
            yield lock
            queues[0].append(item)
            yield push
            yield unlock
        for t in threads:
            yield pt.join(t)
        return {"items": items, "stages": stages}

    return main


def fan_out_fan_in(workers: int, chunks: int, work_cycles: int = 1_000):
    """Scatter ``chunks`` of work over ``workers``; gather at a barrier."""

    def worker(pt, barrier, results, index):
        total = 0
        for chunk in range(chunks):
            yield pt.work(work_cycles)
            total += chunk
        results[index] = total
        yield pt.barrier_wait(barrier)

    def main(pt):
        barrier = yield pt.barrier_init(workers + 1)
        results = [None] * workers
        for i in range(workers):
            yield pt.create(
                worker, barrier, results, i,
                attr=ThreadAttr(priority=50), name="fan-%d" % i,
            )
        yield pt.barrier_wait(barrier)
        assert all(r == sum(range(chunks)) for r in results)
        return {"workers": workers}

    return main


def lock_storm(
    threads: int,
    iterations: int,
    protocol: str = "none",
    section_cycles: int = 200,
    spread_priorities: bool = True,
):
    """Heavy contention on one mutex (protocol selectable)."""

    def worker(pt, m, stats):
        # Prebound immutable ops: the loop body allocates nothing.
        lock = pt.mutex_lock(m)
        unlock = pt.mutex_unlock(m)
        section = pt.work(section_cycles)
        gap = pt.work(50)
        for _ in range(iterations):
            yield lock
            yield section
            yield unlock
            yield gap
        stats["done"] += 1

    def main(pt):
        m = yield pt.mutex_init(
            MutexAttr(protocol=protocol, prioceiling=120)
        )
        stats = {"done": 0}
        ts = []
        for i in range(threads):
            prio = 20 + (i * 13 % 80) if spread_priorities else 50
            ts.append(
                (
                    yield pt.create(
                        worker, m, stats,
                        attr=ThreadAttr(priority=prio), name="ls-%d" % i,
                    )
                )
            )
        for t in ts:
            yield pt.join(t)
        assert stats["done"] == threads
        return {"mutex": m}

    return main


def signal_storm(victims: int, rounds: int, gap_cycles: int = 2_000):
    """Heavy internal-signal traffic: handlers interrupt blocked delays.

    ``rounds`` pthread_kills are sprayed round-robin over ``victims``
    high-priority threads parked in long delays; every signal runs a
    user handler via the fake-call machinery and EINTRs the delay.
    This is the event-queue stress case: each interrupted delay leaves
    a cancelled timer event behind in the heap.
    """
    from repro.unix.sigset import SIGUSR1

    hits = {"handled": 0}

    def handler(pt, sig):
        hits["handled"] += 1
        return
        yield  # pragma: no cover - makes it a generator

    def victim(pt):
        nap = pt.delay_us(10_000_000)
        while True:
            yield nap

    def main(pt):
        yield pt.sigaction(SIGUSR1, handler)
        vs = []
        for i in range(victims):
            vs.append(
                (
                    yield pt.create(
                        victim,
                        attr=ThreadAttr(priority=100),
                        name="storm-%d" % i,
                    )
                )
            )
        kills = [pt.kill(v, SIGUSR1) for v in vs]
        gap = pt.work(gap_cycles)
        for r in range(rounds):
            yield kills[r % victims]
            yield gap
        for v in vs:
            yield pt.cancel(v)
        for v in vs:
            yield pt.join(v)
        assert hits["handled"] == rounds
        return dict(hits)

    return main


def create_join_churn(rounds: int, burst: int = 8, work_cycles: int = 200):
    """Create/join churn: bursts of short-lived pooled threads."""

    def child(pt, index):
        del index
        yield pt.work(work_cycles)

    def main(pt):
        attr = ThreadAttr(priority=40)  # attrs are read-only: share one
        # Create ops are immutable: prebind one per burst slot so the
        # round loop allocates no ops (joins take fresh handles, so
        # they cannot be prebound).
        creates = [pt.create(child, i, attr=attr) for i in range(burst)]
        for _ in range(rounds):
            ts = []
            for op in creates:
                ts.append((yield op))
            for t in ts:
                yield pt.join(t)
        return {"rounds": rounds, "burst": burst}

    return main


def run_workload(
    main_fn,
    model: str = "sparc-ipx",
    priority: int = 100,
    timeslice_us: Optional[float] = None,
    **runtime_kwargs: Any,
) -> Dict[str, Any]:
    """Run a workload main; returns summary statistics."""
    from repro.core.config import RuntimeConfig

    rt = PthreadsRuntime(
        model=model,
        config=RuntimeConfig(timeslice_us=timeslice_us, pool_size=64),
        **runtime_kwargs,
    )
    rt.main(main_fn, priority=priority)
    rt.run()
    return {
        "elapsed_us": rt.world.now_us,
        "context_switches": rt.dispatcher.context_switches,
        "syscalls": rt.unix.total_syscalls,
        "runtime": rt,
    }
