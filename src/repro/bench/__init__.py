"""The measurement harness for the paper's evaluation.

Paper methodology (Table 2):

- :mod:`repro.bench.dualloop` -- dual-loop timing over the virtual
  clock (the paper's methodology).
- :mod:`repro.bench.metrics` -- one measurement routine per Table 2
  row, each building a fresh runtime and exercising the real code
  path.
- :mod:`repro.bench.table2` -- the paper's reported numbers and the
  row schema.
- :mod:`repro.bench.reporting` -- the formatter that prints the
  paper-vs-measured table.

Production evaluation harness (``python -m repro.bench``):

- :mod:`repro.bench.schema` -- the versioned :class:`BenchRecord` /
  :class:`SuiteResult` record schema shared by all four suites.
- :mod:`repro.bench.suites` -- the host/net/check/fleet suite runners.
- :mod:`repro.bench.adapters` -- native payloads -> schema records,
  including the ``repro.obs`` counter harvest.
- :mod:`repro.bench.archive` -- per-commit history under
  ``benchmarks/history/<commit>/<suite>.json``.
- :mod:`repro.bench.compare` -- tolerance-band diff + gate semantics.
- :mod:`repro.bench.trend` -- ASCII/HTML reports over the history.
- :mod:`repro.bench.migrate` -- legacy ``BENCH_*.json`` conversion.
- :mod:`repro.bench.cli` -- the ``run|compare|gate|trend`` CLI.
"""

from repro.bench.dualloop import DualLoopTimer
from repro.bench.metrics import MEASUREMENTS, measure_all, measure_row
from repro.bench.reporting import format_table2
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchRecord,
    EnvFingerprint,
    SchemaError,
    SuiteResult,
)
from repro.bench.table2 import PAPER_TABLE2, Table2Row

__all__ = [
    "BenchRecord",
    "DualLoopTimer",
    "EnvFingerprint",
    "MEASUREMENTS",
    "PAPER_TABLE2",
    "SCHEMA_VERSION",
    "SchemaError",
    "SuiteResult",
    "Table2Row",
    "format_table2",
    "measure_all",
    "measure_row",
]
