"""The measurement harness for the paper's evaluation.

- :mod:`repro.bench.dualloop` -- dual-loop timing over the virtual
  clock (the paper's methodology).
- :mod:`repro.bench.metrics` -- one measurement routine per Table 2
  row, each building a fresh runtime and exercising the real code
  path.
- :mod:`repro.bench.table2` -- the paper's reported numbers and the
  row schema.
- :mod:`repro.bench.reporting` -- the formatter that prints the
  paper-vs-measured table.
"""

from repro.bench.dualloop import DualLoopTimer
from repro.bench.metrics import MEASUREMENTS, measure_all, measure_row
from repro.bench.reporting import format_table2
from repro.bench.table2 import PAPER_TABLE2, Table2Row

__all__ = [
    "DualLoopTimer",
    "MEASUREMENTS",
    "PAPER_TABLE2",
    "Table2Row",
    "format_table2",
    "measure_all",
    "measure_row",
]
