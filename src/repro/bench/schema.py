"""The versioned benchmark-record schema shared by all four suites.

Every benchmark runner (host throughput, net load sweeps, check
exploration, fleet scaling) ultimately produces the same thing: named
metrics with a unit, measured for one workload under explicit
parameters, on a fingerprinted environment.  This module is the one
definition of that shape; the adapters in :mod:`repro.bench.adapters`
map each runner's native payload onto it, and the compare/gate/trend
machinery consumes nothing else.

A :class:`BenchRecord` carries its own comparison semantics in
``direction``:

``higher``
    Bigger is better (throughput).  The gate fails when the current
    value falls below ``baseline * (1 - tolerance)``.
``lower``
    Smaller is better (latency).  The gate fails when the current
    value rises above ``baseline * (1 + tolerance)``.
``exact``
    Deterministic simulation output (simulated microseconds, step
    counts).  *Any* difference is a divergence: the simulation's
    semantics changed and the baseline must be regenerated
    deliberately -- a different problem from a slow host path, and
    reported as such.
``info``
    Context only (raw wall times, counter harvests); recorded for the
    trend history, never gated.

Records may carry a per-metric ``tolerance`` overriding the gate-wide
default -- wall-clock ratios measured on shared CI runners (the fleet
speedups) get wider bands than virtual-time throughput.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

#: Bump when the record shape changes incompatibly; ``from_dict``
#: refuses payloads from a different major version.
SCHEMA_VERSION = 1

DIRECTIONS = ("higher", "lower", "exact", "info")

#: Config keys that change measurement fidelity (best-of-N repeats)
#: but not what is measured; two results whose configs differ only
#: here are still comparable.
NONCOMPARABLE_CONFIG = frozenset({"repeat", "grid_repeat"})

Number = Union[int, float]


class SchemaError(ValueError):
    """A payload does not satisfy the benchmark-record schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


@dataclass
class BenchRecord:
    """One measured metric: the atom of the benchmark history."""

    suite: str
    workload: str
    metric: str
    value: Number
    unit: str
    direction: str = "info"
    params: Dict[str, Any] = field(default_factory=dict)
    tolerance: Optional[float] = None

    def validate(self) -> "BenchRecord":
        for name in ("suite", "workload", "metric", "unit"):
            attr = getattr(self, name)
            _require(
                isinstance(attr, str) and attr != "",
                "record %s must be a non-empty string, got %r" % (name, attr),
            )
        _require(
            self.direction in DIRECTIONS,
            "record %s/%s: direction %r not one of %s"
            % (self.workload, self.metric, self.direction, list(DIRECTIONS)),
        )
        _require(
            isinstance(self.value, (int, float))
            and not isinstance(self.value, bool),
            "record %s/%s: value must be a number, got %r"
            % (self.workload, self.metric, self.value),
        )
        if self.tolerance is not None:
            _require(
                isinstance(self.tolerance, (int, float))
                and 0.0 < self.tolerance < 1.0,
                "record %s/%s: tolerance must be in (0, 1), got %r"
                % (self.workload, self.metric, self.tolerance),
            )
            _require(
                self.direction in ("higher", "lower"),
                "record %s/%s: tolerance is meaningless for direction %r"
                % (self.workload, self.metric, self.direction),
            )
        _require(
            isinstance(self.params, dict),
            "record %s/%s: params must be a dict" % (self.workload, self.metric),
        )
        for key, value in self.params.items():
            _require(
                isinstance(key, str),
                "record %s/%s: param keys must be strings, got %r"
                % (self.workload, self.metric, key),
            )
            _require(
                value is None or isinstance(value, (str, int, float, bool)),
                "record %s/%s: param %r must be a scalar, got %r"
                % (self.workload, self.metric, key, value),
            )
        return self

    def key(self) -> Tuple[str, str, str]:
        """Identity within a suite: same workload, metric, and params."""
        return (
            self.workload,
            self.metric,
            json.dumps(self.params, sort_keys=True),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "suite": self.suite,
            "workload": self.workload,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
        }
        if self.params:
            out["params"] = dict(self.params)
        if self.tolerance is not None:
            out["tolerance"] = self.tolerance
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRecord":
        _require(isinstance(payload, dict), "record must be an object")
        unknown = set(payload) - {
            "suite", "workload", "metric", "value", "unit",
            "direction", "params", "tolerance",
        }
        _require(not unknown, "record has unknown fields: %s" % sorted(unknown))
        try:
            record = cls(
                suite=payload["suite"],
                workload=payload["workload"],
                metric=payload["metric"],
                value=payload["value"],
                unit=payload["unit"],
                direction=payload.get("direction", "info"),
                params=dict(payload.get("params", {})),
                tolerance=payload.get("tolerance"),
            )
        except KeyError as exc:
            raise SchemaError("record missing field %s" % exc) from exc
        return record.validate()


@dataclass
class EnvFingerprint:
    """Where a suite result came from (enough to judge comparability)."""

    commit: str = "unknown"
    python: str = "unknown"
    cores: int = 0
    platform: str = "unknown"
    scale: Optional[int] = None

    def validate(self) -> "EnvFingerprint":
        _require(
            isinstance(self.commit, str) and self.commit != "",
            "env commit must be a non-empty string",
        )
        _require(isinstance(self.python, str), "env python must be a string")
        _require(
            isinstance(self.cores, int) and self.cores >= 0,
            "env cores must be a non-negative int",
        )
        if self.scale is not None:
            _require(
                isinstance(self.scale, int) and self.scale > 0,
                "env scale must be a positive int",
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "commit": self.commit,
            "python": self.python,
            "cores": self.cores,
            "platform": self.platform,
        }
        if self.scale is not None:
            out["scale"] = self.scale
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EnvFingerprint":
        _require(isinstance(payload, dict), "env must be an object")
        env = cls(
            commit=payload.get("commit", "unknown"),
            python=payload.get("python", "unknown"),
            cores=payload.get("cores", 0),
            platform=payload.get("platform", "unknown"),
            scale=payload.get("scale"),
        )
        return env.validate()


@dataclass
class SuiteResult:
    """One suite's records from one run, plus the knobs that shaped it.

    ``config`` captures the runner arguments (scale, sweep grid, load
    parameters): two results are only comparable when their configs
    match -- except for keys in :data:`NONCOMPARABLE_CONFIG`, which
    affect measurement fidelity but not what was measured.
    """

    suite: str
    env: EnvFingerprint = field(default_factory=EnvFingerprint)
    config: Dict[str, Any] = field(default_factory=dict)
    records: List[BenchRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def validate(self) -> "SuiteResult":
        _require(
            isinstance(self.suite, str) and self.suite != "",
            "suite name must be a non-empty string",
        )
        _require(
            self.schema_version == SCHEMA_VERSION,
            "unsupported schema version %r (this build reads %d)"
            % (self.schema_version, SCHEMA_VERSION),
        )
        self.env.validate()
        seen: Dict[Tuple[str, str, str], BenchRecord] = {}
        for record in self.records:
            record.validate()
            _require(
                record.suite == self.suite,
                "record %s/%s belongs to suite %r, not %r"
                % (record.workload, record.metric, record.suite, self.suite),
            )
            key = record.key()
            _require(
                key not in seen,
                "duplicate record %s/%s %s"
                % (record.workload, record.metric, key[2]),
            )
            seen[key] = record
        return self

    def by_key(self) -> Dict[Tuple[str, str, str], BenchRecord]:
        return {record.key(): record for record in self.records}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "env": self.env.to_dict(),
            "config": dict(self.config),
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SuiteResult":
        _require(isinstance(payload, dict), "suite result must be an object")
        _require("suite" in payload, "suite result missing 'suite'")
        _require("records" in payload, "suite result missing 'records'")
        result = cls(
            suite=payload["suite"],
            env=EnvFingerprint.from_dict(payload.get("env", {})),
            config=dict(payload.get("config", {})),
            records=[
                BenchRecord.from_dict(item) for item in payload["records"]
            ],
            schema_version=payload.get("schema_version", SCHEMA_VERSION),
        )
        return result.validate()

    # -- file I/O ----------------------------------------------------------

    def save(self, path) -> None:
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "SuiteResult":
        with open(path) as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SchemaError("%s: not JSON (%s)" % (path, exc)) from exc
        try:
            return cls.from_dict(payload)
        except SchemaError as exc:
            raise SchemaError("%s: %s" % (path, exc)) from exc
