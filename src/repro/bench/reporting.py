"""Render the paper-vs-measured Table 2."""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.table2 import PAPER_TABLE2


def _cell(value: Optional[float]) -> str:
    if value is None:
        return "     -"
    if value < 10:
        return "%6.1f" % value
    return "%6.0f" % value


def format_table2(
    measured_1plus: Dict[str, float],
    measured_ipx: Dict[str, float],
) -> str:
    """The paper's Table 2 with measured columns beside each "Ours".

    ``measured_*`` map row keys to simulated microseconds (missing
    keys render as '-').
    """
    header = (
        "%-34s | %6s %6s %6s | %6s %6s %6s\n"
        % ("", "Sun", "Ours", "meas.", "Ours", "meas.", "Lynx")
    )
    header += (
        "%-34s | %6s %6s %6s | %6s %6s %6s\n"
        % ("Performance Metric [us]", "1+", "1+", "1+", "IPX", "IPX", "IPX")
    )
    rule = "-" * len(header.splitlines()[0]) + "\n"
    body = ""
    for row in PAPER_TABLE2:
        body += "%-34s | %s %s %s | %s %s %s\n" % (
            row.label,
            _cell(row.sun_1plus),
            _cell(row.ours_1plus),
            _cell(measured_1plus.get(row.key)),
            _cell(row.ours_ipx),
            _cell(measured_ipx.get(row.key)),
            _cell(row.lynx_ipx),
        )
    return header + rule + body
