"""The benchmark suite runners, callable from anywhere.

Historically each suite lived in its own ad-hoc runner: the host
throughput matrix in ``benchmarks/host/run.py``, the net sweep inside
a pytest fixture, the fleet sweep inside a test function, and the
check sweep produced no artifact at all.  This module is the one home
for the measurement loops; the ``benchmarks/`` modules and the
``python -m repro.bench run`` CLI both call in here, so a suite run
from CI and a suite run from the shell produce the same payload, and
the adapters in :mod:`repro.bench.adapters` normalize that payload
into schema records exactly once.

Every runner returns the suite's *native* payload (the shape the
legacy ``BENCH_*.json`` files used, so existing docs and eyeballs
still work); pair it with its adapter to get a
:class:`~repro.bench.schema.SuiteResult`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench import workloads

# ---------------------------------------------------------------------------
# host throughput
# ---------------------------------------------------------------------------


def standard_workloads(scale: int) -> Dict[str, Dict[str, Any]]:
    """The host benchmark matrix.  ``scale`` multiplies iteration counts."""
    return {
        "lock_storm": {
            "factory": lambda: workloads.lock_storm(
                threads=8, iterations=25 * scale
            ),
            "priority": 100,
        },
        "signal_storm": {
            "factory": lambda: workloads.signal_storm(
                victims=4, rounds=100 * scale
            ),
            "priority": 50,
        },
        "pipeline": {
            "factory": lambda: workloads.pipeline(
                stages=4, items=25 * scale
            ),
            "priority": 100,
        },
        "create_join_churn": {
            "factory": lambda: workloads.create_join_churn(
                rounds=12 * scale, burst=8
            ),
            "priority": 100,
        },
    }


def run_host_workload(
    name: str,
    factory: Callable[[], Callable],
    priority: int,
    model: str,
    repeat: int,
) -> Dict[str, Any]:
    """Run one workload ``repeat`` times; best wall time wins (minimum
    is the standard noise-rejection estimator for throughput)."""
    best_wall = None
    steps = None
    simulated_us = None
    switches = None
    segment_counters = None
    for _ in range(repeat):
        main_fn = factory()
        start = time.perf_counter()
        stats = workloads.run_workload(main_fn, model=model, priority=priority)
        wall = time.perf_counter() - start
        rt = stats["runtime"]
        if simulated_us is not None and simulated_us != stats["elapsed_us"]:
            raise AssertionError(
                "%s: non-deterministic simulated time (%r != %r)"
                % (name, simulated_us, stats["elapsed_us"])
            )
        simulated_us = stats["elapsed_us"]
        steps = rt.steps
        switches = stats["context_switches"]
        if rt._segments is not None:
            segment_counters = rt._segments.counters()
        if best_wall is None or wall < best_wall:
            best_wall = wall
    result = {
        "workload": name,
        "model": model,
        "wall_seconds": round(best_wall, 6),
        "steps": steps,
        "steps_per_sec": round(steps / best_wall, 1),
        "simulated_us": simulated_us,
        "simulated_us_per_sec": round(simulated_us / best_wall, 1),
        "context_switches": switches,
    }
    if segment_counters is not None:
        result["segments"] = segment_counters
    return result


def run_host_rows(
    scale: int = 1, repeat: int = 3, model: str = "sparc-ipx"
) -> List[Dict[str, Any]]:
    """The bare result rows (the shape ``benchmarks/host/run.py`` keeps)."""
    results = []
    for name, spec in standard_workloads(scale).items():
        results.append(
            run_host_workload(
                name, spec["factory"], spec["priority"], model, repeat
            )
        )
    return results


def run_host(
    scale: int = 4, repeat: int = 3, model: str = "sparc-ipx"
) -> Dict[str, Any]:
    """The full host-throughput payload (``BENCH_host.json`` shape)."""
    import platform as platform_mod

    return {
        "suite": "host-throughput",
        "scale": scale,
        "repeat": repeat,
        "python": platform_mod.python_version(),
        "results": run_host_rows(scale=scale, repeat=repeat, model=model),
    }


# ---------------------------------------------------------------------------
# net architecture sweep
# ---------------------------------------------------------------------------

#: Open-loop load: one request per connection, arrivals ~Poisson(150us),
#: no think time -- the connection mix, not any client's patience,
#: determines the backlog.
NET_LOAD: Dict[str, Any] = dict(
    requests_per_client=1,
    service_cycles=300,
    think_us=0.0,
    arrival="poisson",
    mean_gap_us=150.0,
    workers=16,
    seed=42,
    latency_us=60.0,
    first_class=True,  # identical completion path for all three archs
)

NET_ARCHS = ("perconn", "pool", "select", "epoll")
NET_CLIENT_SWEEP = (50, 200, 1000)
NET_CACHE_POOL_SIZE = 64

#: Closed-loop scale-factor fixtures: long-lived connections, many
#: request rounds, think time far above the arrival window so peak
#: concurrency equals the client count.  This is the regime the epoll
#: interest list exists for -- a huge watched set that is mostly idle
#: at any instant -- and the regime where select's O(n) scan per
#: wakeup stops amortizing.  ``archs`` is part of the fixture because
#: select's per-call fd-set rebuild is host-prohibitive past ~10^3
#: registered descriptors; sf10 up runs the epoll dispatcher only.
NET_SF_FIXTURES: Dict[str, Dict[str, Any]] = {
    "sf1": dict(
        clients=1000,
        requests_per_client=8,
        mean_gap_us=150.0,
        archs=("select", "epoll"),
    ),
    "sf10": dict(
        clients=10000,
        requests_per_client=4,
        mean_gap_us=15.0,
        archs=("epoll",),
    ),
    "sf100": dict(  # opt-in: ~10^5 concurrent clients, minutes of host time
        clients=100000,
        requests_per_client=2,
        mean_gap_us=1.5,
        archs=("epoll",),
    ),
}

#: sf100 stays out of the default (and therefore archived/CI) set.
NET_SF_DEFAULT = ("sf1", "sf10")

#: Load shape shared by every sf fixture (clients/gap/rounds vary).
NET_SF_LOAD: Dict[str, Any] = dict(
    arrival="poisson",
    think_us=200000.0,
    service_cycles=100,
    req_bytes=256,
    resp_bytes=1024,
    seed=42,
    latency_us=60.0,
)


def run_net_point(
    arch: str,
    clients: int,
    pool_size: int,
    load: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One grid cell: run the scenario, flatten the report row."""
    from repro.net.scenario import run_scenario

    load = dict(NET_LOAD if load is None else load)
    report = run_scenario(
        arch=arch, clients=clients, pool_size=pool_size, **load
    )
    assert report.requests_served == clients  # every request answered
    assert report.refused == 0
    return {
        "arch": arch,
        "clients": clients,
        "pool_size": pool_size,
        "elapsed_us": round(report.elapsed_us, 1),
        "throughput_rps": round(report.throughput_rps, 1),
        "latency_p50_us": round(report.latency_p50_us, 1),
        "latency_p99_us": round(report.latency_p99_us, 1),
        "accept_wait_p50_us": round(report.accept_wait_p50_us, 1),
        "accept_wait_p99_us": round(report.accept_wait_p99_us, 1),
        "accept_depth_max": report.accept_depth_max,
        "queue_wait_p99_us": round(report.queue_wait_p99_us, 1),
        "syscalls": report.syscalls,
        "context_switches": report.context_switches,
        "completions_sigio": report.completions_sigio,
        "completions_fc": report.completions_fc,
    }


def run_sf_point(sf: str, arch: str) -> Dict[str, Any]:
    """One scale-factor cell: run the fixture, emit a normalized row.

    Every rate/percentile is per-sample (per reply), so rows are
    comparable across fixtures whose client and request counts differ
    by orders of magnitude.
    """
    from repro.net.scenario import run_scenario

    fixture = dict(NET_SF_FIXTURES[sf])
    fixture.pop("archs")
    clients = fixture.pop("clients")
    report = run_scenario(
        arch=arch, clients=clients, backlog=clients,
        **fixture, **NET_SF_LOAD
    )
    expected = clients * report.requests_per_client
    assert report.refused == 0
    assert report.replies == expected  # every request answered
    assert report.peak_clients == clients  # all concurrently resident
    return {
        "sf": sf,
        "arch": arch,
        "clients": clients,
        "requests_per_client": report.requests_per_client,
        "replies": report.replies,
        "peak_clients": report.peak_clients,
        "elapsed_us": round(report.elapsed_us, 1),
        "throughput_rps": round(report.throughput_rps, 1),
        "latency_mean_us": round(report.latency_mean_us, 1),
        "latency_p50_us": round(report.latency_p50_us, 1),
        "latency_p99_us": round(report.latency_p99_us, 1),
        "syscalls_per_request": round(report.syscalls / report.replies, 3),
        "epoll_waits": report.epoll_waits,
        "epoll_wakeups": report.epoll_wakeups,
        "epoll_ctl_calls": report.epoll_ctl_calls,
        "epoll_ready_returned": report.epoll_ready_returned,
        "epoll_stale_dropped": report.epoll_stale_dropped,
    }


def run_net(
    client_sweep: Sequence[int] = NET_CLIENT_SWEEP,
    archs: Sequence[str] = NET_ARCHS,
    cache_pool_size: int = NET_CACHE_POOL_SIZE,
    load: Optional[Dict[str, Any]] = None,
    sf: Sequence[str] = NET_SF_DEFAULT,
) -> Dict[str, Any]:
    """The full sweep payload (``BENCH_net.json`` shape).

    The headline grid disables the TCB/stack cache (``pool_size=0``)
    to isolate the architecture comparison; a second sweep at the top
    client count re-enables the cache and shows the gap narrow --
    ``pthread_create`` pre-caching is itself a thread pool, one layer
    down.  The ``sf`` scale-factor fixtures then push the dispatcher
    architectures into the long-lived high-concurrency regime
    (``NET_SF_FIXTURES``); sf100 is opt-in (pass ``sf`` explicitly).
    """
    load = dict(NET_LOAD if load is None else load)
    results = [
        run_net_point(arch, clients, pool_size=0, load=load)
        for clients in client_sweep
        for arch in archs
    ]
    cached = [
        run_net_point(arch, client_sweep[-1], cache_pool_size, load=load)
        for arch in archs
    ]
    sf_results = [
        run_sf_point(name, arch)
        for name in sf
        for arch in NET_SF_FIXTURES[name]["archs"]
    ]
    return {
        "suite": "net-architecture-sweep",
        "model": "sparc-ipx",
        "load": load,
        "results": results,
        "cache_on_results": cached,
        "sf_results": sf_results,
    }


# ---------------------------------------------------------------------------
# check exploration sweep
# ---------------------------------------------------------------------------


def run_check(
    runs: int = 15,
    seed: int = 99,
    scale: int = 1,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Seeded random-walk exploration over the checker workloads.

    Everything but ``wall_seconds`` is deterministic for a fixed
    library: the same seed replays the same schedules, runs the same
    invariant sweeps, and must keep finding nothing.
    """
    from repro.check.cli import WORKLOADS
    from repro.check.explore import Explorer

    chosen = sorted(WORKLOADS) if names is None else list(names)
    results = []
    for name in chosen:
        factory, priority = WORKLOADS[name]
        explorer = Explorer(lambda: factory(scale), priority=priority)
        start = time.perf_counter()
        report = explorer.explore_random(runs=runs, seed=seed)
        wall = time.perf_counter() - start
        results.append(
            {
                "workload": name,
                "mode": "random",
                "runs": runs,
                "seed": seed,
                "schedules_explored": report.schedules_explored,
                "checks_run": report.checks_run,
                "failures": len(report.failures),
                "wall_seconds": round(wall, 6),
            }
        )
    return {
        "suite": "check-exploration",
        "runs": runs,
        "seed": seed,
        "scale": scale,
        "results": results,
    }


# ---------------------------------------------------------------------------
# fleet scaling sweep
# ---------------------------------------------------------------------------


def fleet_stats_dict(stats) -> Dict[str, Any]:
    return {
        "backend": stats.backend,
        "jobs": stats.jobs,
        "tasks": stats.tasks,
        "snapshots_created": stats.snapshots_created,
        "snapshot_hits": stats.snapshot_hits,
        "snapshot_evictions": stats.snapshot_evictions,
        "speculative_waste": stats.speculative_waste,
        "fallbacks": stats.fallbacks,
        "steps_executed": stats.steps_executed,
        "steps_full": stats.steps_full,
        "steps_saved": stats.steps_saved,
    }


def run_fleet(
    max_runs: int = 40,
    rounds: int = 800,
    max_depth: int = 2000,
    max_branch: int = 4,
    jobs: int = 4,
    grid: bool = True,
    grid_repeat: int = 3,
) -> Dict[str, Any]:
    """DFS snapshot sweep + scenario compare grid (``BENCH_fleet.json``
    shape).  Needs :func:`os.fork`.

    The DFS speedup is algorithmic (prefix checkpoints cut simulated
    steps), so it holds on a single-core host; the grid speedup is
    pure fan-out and is bounded by the host's core count.
    """
    import os

    from repro.bench.workloads import signal_storm
    from repro.check.explore import Explorer
    from repro.net.scenario import compare_scenarios

    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
        raise RuntimeError("the fleet suite needs os.fork")

    def make_explorer() -> Explorer:
        # rounds=800 (scale 8): the trail is ~1600 choice points spread
        # across the whole run, so deep DFS children share long
        # prefixes -- the workload prefix snapshots were built for.
        return Explorer(
            lambda: signal_storm(victims=4, rounds=rounds),
            priority=50,  # the bench registry's tuning for this workload
            max_depth=max_depth,
            max_branch=max_branch,
        )

    def timed_dfs(dfs_jobs: int, snapshot: bool):
        explorer = make_explorer()
        start = time.perf_counter()
        report = explorer.explore_dfs(
            max_runs=max_runs, jobs=dfs_jobs, snapshot=snapshot
        )
        return report, time.perf_counter() - start

    seq_report, seq_s = timed_dfs(dfs_jobs=1, snapshot=False)
    snap_report, snap_s = timed_dfs(dfs_jobs=1, snapshot=True)
    par_report, par_s = timed_dfs(dfs_jobs=jobs, snapshot=True)

    dfs_identical = (
        snap_report == seq_report
        and par_report == seq_report
        and par_report.render() == seq_report.render()
    )

    payload: Dict[str, Any] = {
        "host_cores": os.cpu_count() or 1,
        "dfs": {
            "workload": "signal_storm",
            "scale": rounds // 100,
            "max_runs": max_runs,
            "max_depth": max_depth,
            "max_branch": max_branch,
            "schedules_explored": seq_report.schedules_explored,
            "sequential_s": round(seq_s, 3),
            "snapshot_jobs1_s": round(snap_s, 3),
            "jobs4_s": round(par_s, 3),
            "speedup_snapshot_jobs1": round(seq_s / snap_s, 2),
            "speedup_jobs4": round(seq_s / par_s, 2),
            "reports_identical": dfs_identical,
            "sequential_fleet": fleet_stats_dict(seq_report.fleet),
            "snapshot_fleet": fleet_stats_dict(snap_report.fleet),
            "jobs4_fleet": fleet_stats_dict(par_report.fleet),
        },
    }

    if grid:
        cells = [
            dict(arch=arch, clients=120, requests_per_client=2, workers=16,
                 seed=42, arrival=arrival, pool_size=pool_size)
            for arch in ("perconn", "pool", "select")
            for arrival in ("poisson", "bursty")
            for pool_size in (64, 0)
        ]

        # Best-of-N (the standard noise-rejection estimator, same as
        # the host-throughput runner): a single shot of a sub-second
        # grid is dominated by host jitter.
        def timed_grid(grid_jobs: int):
            best_s, best = None, None
            for _ in range(grid_repeat):
                start = time.perf_counter()
                reports = compare_scenarios(cells, jobs=grid_jobs)
                elapsed = time.perf_counter() - start
                if best_s is None or elapsed < best_s:
                    best_s, best = elapsed, reports
            return best, best_s

        grid_seq, grid_seq_s = timed_grid(grid_jobs=1)
        grid_par, grid_par_s = timed_grid(grid_jobs=jobs)
        grid_identical = grid_par == grid_seq and [
            r.render() for r in grid_par
        ] == [r.render() for r in grid_seq]
        payload["compare_grid"] = {
            "cells": len(cells),
            "sequential_s": round(grid_seq_s, 3),
            "jobs4_s": round(grid_par_s, 3),
            "speedup_jobs4": round(grid_seq_s / grid_par_s, 2),
            "reports_identical": grid_identical,
        }

    return payload


# ---------------------------------------------------------------------------
# smp lock-algorithm zoo
# ---------------------------------------------------------------------------


def run_smp(
    acquisitions: int = 10,
    section_cycles: int = 400,
    think_cycles: int = 300,
    model: str = "niagara-t3",
    seed: int = 42,
    ipi_rounds: int = 40,
) -> Dict[str, Any]:
    """The SMP suite payload: the lock-zoo crossover sweep plus an
    IPI-routed signal workload.

    Every simulated number is deterministic in (model, seed, axes):
    the zoo's per-cell makespans come off per-CPU virtual clocks, and
    the IPI row runs ``signal_storm`` on a 2-CPU world where every
    async signal crosses from the interrupt CPU as an IPI event.  Only
    ``wall_seconds`` varies run to run.
    """
    from repro.locks.workload import ZOO_ALGOS, ZOO_CPUS, run_zoo

    start = time.perf_counter()
    rows = run_zoo(
        acquisitions=acquisitions,
        section_cycles=section_cycles,
        think_cycles=think_cycles,
        model=model,
        seed=seed,
    )
    zoo_wall = time.perf_counter() - start

    start = time.perf_counter()
    stats = workloads.run_workload(
        workloads.signal_storm(victims=4, rounds=ipi_rounds),
        model="sparc-ipx",  # signal costs calibrated on the paper's host
        priority=50,
        # A tight slice so timer expiries (async "timer" causes, the
        # IPI-routed kind) actually land inside this short run.
        timeslice_us=1_000.0,
        ncpus=2,
    )
    ipi_wall = time.perf_counter() - start
    rt = stats["runtime"]
    smp = rt.world.smp
    ipi_row = {
        "workload": "signal_storm",
        "ncpus": 2,
        "rounds": ipi_rounds,
        "elapsed_us": stats["elapsed_us"],
        "context_switches": stats["context_switches"],
        "ipis_sent": smp.counters()["smp.ipis_sent"],
        "ipis_delivered": smp.counters()["smp.ipis_delivered"],
        "ipi_posts": rt.proc.signals.ipi_posts,
    }

    return {
        "suite": "smp-lock-zoo",
        "model": model,
        "seed": seed,
        "acquisitions": acquisitions,
        "section_cycles": section_cycles,
        "think_cycles": think_cycles,
        "algos": list(ZOO_ALGOS),
        "cpu_counts": list(ZOO_CPUS),
        "results": rows,
        "ipi": ipi_row,
        "zoo_wall_seconds": round(zoo_wall, 6),
        "ipi_wall_seconds": round(ipi_wall, 6),
    }


# ---------------------------------------------------------------------------
# the registry the CLI dispatches on
# ---------------------------------------------------------------------------

#: suite name -> (runner, config keys the runner accepts).  The gate
#: re-measures a baseline by feeding its archived ``config`` back in.
SUITE_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "host": run_host,
    "net": run_net,
    "check": run_check,
    "fleet": run_fleet,
    "smp": run_smp,
}

SUITES = tuple(sorted(SUITE_RUNNERS))
