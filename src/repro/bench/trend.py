"""Trend reports over the archived benchmark history.

``trend_ascii`` renders one table per suite: a row per (workload,
metric, params) series, a column per archived commit (oldest first),
so the perf trajectory across PRs reads left to right.  ``trend_html``
emits the same data as a standalone HTML page with regression/
improvement cells tinted relative to each series' first value.
"""

from __future__ import annotations

import html as html_mod
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.archive import load_history
from repro.bench.schema import BenchRecord

#: Direction glyphs for the table legend.
ARROWS = {"higher": "^", "lower": "v", "exact": "=", "info": "."}


def _series_label(record: BenchRecord) -> str:
    extras = ""
    if record.params:
        extras = "[%s]" % ",".join(
            "%s=%s" % (k, v) for k, v in sorted(record.params.items())
        )
    return "%s/%s%s" % (record.workload, record.metric, extras)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return "%.3g" % value
        return ("%.2f" % value).rstrip("0").rstrip(".")
    return "%g" % value


def collect_series(
    history_dir,
    suite: Optional[str] = None,
    metric_filter: Optional[str] = None,
) -> Tuple[List[str], Dict[str, List[Tuple[str, BenchRecord]]]]:
    """Flatten the archive into per-metric series.

    Returns ``(commits, series)`` where ``series`` maps
    ``"suite :: workload/metric[params]"`` to ``[(commit, record)]``
    in commit order.
    """
    entries = load_history(history_dir)
    commits = [entry["commit"] for entry in entries]
    series: Dict[str, List[Tuple[str, BenchRecord]]] = {}
    for entry in entries:
        for suite_name, result in sorted(entry["suites"].items()):
            if suite is not None and suite_name != suite:
                continue
            for record in result.records:
                if metric_filter and metric_filter not in record.metric:
                    continue
                key = "%s :: %s" % (suite_name, _series_label(record))
                series.setdefault(key, []).append(
                    (entry["commit"], record)
                )
    return commits, series


def trend_ascii(
    history_dir,
    suite: Optional[str] = None,
    metric_filter: Optional[str] = None,
    gated_only: bool = False,
) -> str:
    """One aligned table: series down, commits across."""
    commits, series = collect_series(history_dir, suite, metric_filter)
    if not commits:
        return "(history is empty: nothing archived under %s)" % history_dir
    if not series:
        return "(no metrics matched)"
    rows = []
    for key in sorted(series):
        points = {c: r for c, r in series[key]}
        any_record = series[key][0][1]
        if gated_only and any_record.direction == "info":
            continue
        cells = [
            _fmt(points[c].value) if c in points else "-" for c in commits
        ]
        rows.append(
            (
                "%s %s" % (ARROWS[any_record.direction], key),
                any_record.unit,
                cells,
            )
        )
    if not rows:
        return "(no metrics matched)"
    label_width = max(len(label) for label, _, _ in rows)
    unit_width = max(len(unit) for _, unit, _ in rows)
    col_widths = [
        max(len(commit), max(len(row[2][i]) for row in rows))
        for i, commit in enumerate(commits)
    ]
    header = "%-*s  %-*s  %s" % (
        label_width,
        "metric (^higher =exact vlower .info)",
        unit_width,
        "unit",
        "  ".join(
            "%*s" % (col_widths[i], commit) for i, commit in enumerate(commits)
        ),
    )
    lines = [header, "-" * len(header)]
    for label, unit, cells in rows:
        lines.append(
            "%-*s  %-*s  %s"
            % (
                label_width,
                label,
                unit_width,
                unit,
                "  ".join(
                    "%*s" % (col_widths[i], cell)
                    for i, cell in enumerate(cells)
                ),
            )
        )
    return "\n".join(lines)


def trend_html(
    history_dir,
    suite: Optional[str] = None,
    metric_filter: Optional[str] = None,
    title: str = "benchmark trend",
) -> str:
    """A standalone HTML page over the same series."""
    commits, series = collect_series(history_dir, suite, metric_filter)
    esc = html_mod.escape
    head = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>%s</title><style>"
        "body{font-family:monospace;margin:2em;}"
        "table{border-collapse:collapse;}"
        "th,td{border:1px solid #bbb;padding:4px 8px;text-align:right;}"
        "th{background:#eee;}td.label{text-align:left;}"
        "td.better{background:#e4f7e4;}td.worse{background:#fbe3e3;}"
        "caption{text-align:left;font-weight:bold;padding:6px 0;}"
        "</style></head><body><h1>%s</h1>" % (esc(title), esc(title))
    )
    if not commits:
        return head + "<p>history is empty</p></body></html>"
    parts = [head]
    parts.append(
        "<table><caption>one row per metric series, one column per "
        "archived commit (oldest first)</caption><tr><th>metric</th>"
        "<th>unit</th><th>dir</th>"
        + "".join("<th>%s</th>" % esc(c) for c in commits)
        + "</tr>"
    )
    for key in sorted(series):
        points = {c: r for c, r in series[key]}
        record = series[key][0][1]
        first = series[key][0][1].value
        cells = []
        for commit in commits:
            if commit not in points:
                cells.append("<td>-</td>")
                continue
            value = points[commit].value
            klass = ""
            if (
                record.direction in ("higher", "lower")
                and isinstance(first, (int, float))
                and first
            ):
                ratio = value / first
                good = ratio > 1.001 if record.direction == "higher" \
                    else ratio < 0.999
                bad = ratio < 0.999 if record.direction == "higher" \
                    else ratio > 1.001
                if good:
                    klass = " class='better'"
                elif bad:
                    klass = " class='worse'"
            cells.append("<td%s>%s</td>" % (klass, esc(_fmt(value))))
        parts.append(
            "<tr><td class='label'>%s</td><td>%s</td><td>%s</td>%s</tr>"
            % (
                esc(key),
                esc(record.unit),
                esc(record.direction),
                "".join(cells),
            )
        )
    parts.append("</table></body></html>")
    return "".join(parts)
