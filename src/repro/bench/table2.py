"""Table 2 of the paper: the reported numbers and row schema.

Column legend (all microseconds):

- ``sun_1plus``   -- SunOS LWP threads on a SPARC 1+ (Powell et al.);
- ``ours_1plus``  -- the paper's library on a SPARC 1+;
- ``ours_ipx``    -- the paper's library on a SPARC IPX;
- ``lynx_ipx``    -- a LynxOS pre-release on a SPARC IPX.

``None`` means the paper's cell is empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Table2Row:
    """One performance metric of Table 2."""

    key: str
    label: str
    sun_1plus: Optional[float]
    ours_1plus: Optional[float]
    ours_ipx: Optional[float]
    lynx_ipx: Optional[float]


PAPER_TABLE2 = [
    Table2Row(
        "kernel_enter_exit", "enter and exit Pthreads kernel",
        None, None, 0.4, 7.5,
    ),
    Table2Row(
        "unix_kernel_enter_exit", "enter and exit UNIX kernel",
        None, None, 18.0, None,
    ),
    Table2Row(
        "mutex_pair_uncontended", "mutex lock/unlock, no contention",
        None, None, 1.0, 5.0,
    ),
    Table2Row(
        "mutex_pair_contended", "mutex lock/unlock, contention",
        None, None, 51.0, None,
    ),
    Table2Row(
        "semaphore_sync", "semaphore synchronization",
        158.0, 101.0, 55.0, 75.0,
    ),
    Table2Row(
        "thread_create", "thread create, no context switch",
        56.0, 25.0, 12.0, None,
    ),
    Table2Row(
        "setjmp_longjmp", "setjmp/longjmp pair",
        59.0, 49.0, 29.0, None,
    ),
    Table2Row(
        "thread_context_switch", "thread context switch (yield)",
        None, None, 37.0, 38.0,
    ),
    Table2Row(
        "process_context_switch", "UNIX process context switch",
        None, None, 123.0, 41.0,
    ),
    Table2Row(
        "signal_internal", "thread signal handler (internal)",
        None, None, 52.0, None,
    ),
    Table2Row(
        "signal_external", "thread signal handler (external)",
        None, None, 250.0, None,
    ),
    Table2Row(
        "unix_signal_handler", "UNIX signal handler",
        None, None, 154.0, None,
    ),
]

ROWS_BY_KEY = {row.key: row for row in PAPER_TABLE2}
