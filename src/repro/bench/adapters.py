"""Adapters: native runner payloads -> normalized schema records.

Each of the four suites keeps its historical payload shape (the
``BENCH_*.json`` files people already read); these functions are the
single translation into :class:`~repro.bench.schema.SuiteResult`, so
the compare/gate/trend machinery never sees a suite-specific shape.
The same adapters power the legacy-file migration tool
(:mod:`repro.bench.migrate`).

Direction assignments are the policy heart of the gate (the metric
definitions live in ``docs/BENCHMARKING.md``):

- **virtual-clock outputs** (``simulated_us``, net ``elapsed_us``,
  schedule/check counts) are ``exact`` -- the simulation is
  deterministic, so any difference is a semantics change that needs a
  deliberate baseline regeneration, exactly the old
  ``check_regression.py`` contract generalized;
- **wall-clock rates** (``steps_per_sec``) are ``higher`` with the
  default 20% band; fleet wall-clock *ratios* get a wider per-record
  band because CI runners are shared and noisy;
- **harvested counters** (``exec.segment.*``, syscalls, completions,
  ``fleet.*`` snapshot stats) are ``info``: archived for the trend
  history, never gated.
"""

from __future__ import annotations

import os
import platform as platform_mod
import subprocess
from typing import Any, Dict, List, Mapping, Optional

from repro.bench.schema import BenchRecord, EnvFingerprint, SuiteResult

#: Wall-clock speedup ratios on shared CI runners need a wide band.
WALL_RATIO_TOLERANCE = 0.5


def git_commit(short: bool = True) -> str:
    """The current commit hash, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd, capture_output=True, text=True, timeout=10, check=True
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    value = out.stdout.strip()
    return value or "unknown"


def env_fingerprint(
    scale: Optional[int] = None, commit: Optional[str] = None
) -> EnvFingerprint:
    """Fingerprint the measuring host (commit/python/cores/platform)."""
    return EnvFingerprint(
        commit=commit or git_commit(),
        python=platform_mod.python_version(),
        cores=os.cpu_count() or 1,
        platform=platform_mod.system().lower(),
        scale=scale,
    )


def records_from_metrics(
    metrics: Mapping[str, Any],
    suite: str,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    prefixes: Optional[tuple] = None,
) -> List[BenchRecord]:
    """Harvest a counter mapping (``repro.obs`` snapshot style) into
    ``info`` records.

    Accepts both flat ``name -> number`` mappings (segment counters,
    ``FleetStats`` dicts) and the richer ``repro.obs`` snapshot shape
    where histograms appear as dicts -- histogram entries contribute
    their ``count``/``mean``/``max`` as separate metrics.  Pass
    ``prefixes`` to keep only matching counter families (e.g.
    ``("exec.segment.", "net.")``).
    """
    records: List[BenchRecord] = []
    params = dict(params or {})
    for name in sorted(metrics):
        if prefixes is not None and not any(
            name.startswith(prefix) for prefix in prefixes
        ):
            continue
        value = metrics[name]
        if isinstance(value, Mapping):  # histogram snapshot
            for part in ("count", "mean", "max"):
                if part in value and isinstance(
                    value[part], (int, float)
                ) and not isinstance(value[part], bool):
                    records.append(
                        BenchRecord(
                            suite=suite,
                            workload=workload,
                            metric="%s.%s" % (name, part),
                            value=value[part],
                            unit="count",
                            direction="info",
                            params=params,
                        )
                    )
            continue
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        records.append(
            BenchRecord(
                suite=suite,
                workload=workload,
                metric=name,
                value=value,
                unit="count",
                direction="info",
                params=params,
            )
        )
    return records


# ---------------------------------------------------------------------------
# host throughput
# ---------------------------------------------------------------------------


def host_suite_result(
    payload: Mapping[str, Any], env: Optional[EnvFingerprint] = None
) -> SuiteResult:
    """Normalize a ``BENCH_host.json``-shaped payload."""
    suite = "host"
    scale = payload.get("scale")
    if env is None:
        env = env_fingerprint(scale=scale)
    else:
        env.scale = scale
    if payload.get("python") and env.python == "unknown":
        env.python = payload["python"]
    records: List[BenchRecord] = []
    for row in payload["results"]:
        workload = row["workload"]

        def rec(metric, value, unit, direction, tolerance=None):
            records.append(
                BenchRecord(
                    suite=suite,
                    workload=workload,
                    metric=metric,
                    value=value,
                    unit=unit,
                    direction=direction,
                    tolerance=tolerance,
                )
            )

        rec("steps_per_sec", row["steps_per_sec"], "steps/s", "higher")
        rec("wall_seconds", row["wall_seconds"], "s", "info")
        rec("simulated_us", row["simulated_us"], "us", "exact")
        rec("simulated_us_per_sec", row["simulated_us_per_sec"], "us/s",
            "info")
        rec("steps", row["steps"], "count", "exact")
        rec("context_switches", row["context_switches"], "count", "info")
        records.extend(
            records_from_metrics(
                row.get("segments", {}), suite, workload
            )
        )
    config = {
        "scale": payload.get("scale"),
        "repeat": payload.get("repeat"),
        "model": payload["results"][0]["model"] if payload["results"]
        else "sparc-ipx",
    }
    return SuiteResult(
        suite=suite, env=env, config=config, records=records
    ).validate()


# ---------------------------------------------------------------------------
# net architecture sweep
# ---------------------------------------------------------------------------


def net_suite_result(
    payload: Mapping[str, Any], env: Optional[EnvFingerprint] = None
) -> SuiteResult:
    """Normalize a ``BENCH_net.json``-shaped payload.

    Every number in the sweep is virtual-time and bit-deterministic,
    so ``elapsed_us`` is the ``exact`` divergence oracle per cell;
    throughput and tail latency additionally get tolerance bands so a
    regression reads as a regression (not just "something diverged").
    """
    suite = "net"
    if env is None:
        env = env_fingerprint()
    records: List[BenchRecord] = []

    def add_rows(rows, sweep_name):
        for row in rows:
            params = {
                "clients": row["clients"],
                "pool_size": row["pool_size"],
                "sweep": sweep_name,
            }
            workload = row["arch"]

            def rec(metric, value, unit, direction):
                records.append(
                    BenchRecord(
                        suite=suite,
                        workload=workload,
                        metric=metric,
                        value=value,
                        unit=unit,
                        direction=direction,
                        params=params,
                    )
                )

            rec("elapsed_us", row["elapsed_us"], "us", "exact")
            rec("throughput_rps", row["throughput_rps"], "req/s", "higher")
            rec("latency_p50_us", row["latency_p50_us"], "us", "info")
            rec("latency_p99_us", row["latency_p99_us"], "us", "lower")
            rec("accept_wait_p50_us", row["accept_wait_p50_us"], "us", "info")
            rec("accept_wait_p99_us", row["accept_wait_p99_us"], "us",
                "lower")
            for counter in (
                "accept_depth_max",
                "syscalls",
                "context_switches",
                "completions_sigio",
                "completions_fc",
            ):
                rec(counter, row[counter], "count", "info")
            rec("queue_wait_p99_us", row["queue_wait_p99_us"], "us", "info")

    def add_sf_rows(rows):
        # Scale-factor fixtures: per-sample metrics, so the bands stay
        # meaningful across 10^3..10^5-client rows.
        for row in rows:
            params = {
                "sf": row["sf"],
                "clients": row["clients"],
                "sweep": "sf",
            }
            workload = row["arch"]

            def rec(metric, value, unit, direction):
                records.append(
                    BenchRecord(
                        suite=suite,
                        workload=workload,
                        metric=metric,
                        value=value,
                        unit=unit,
                        direction=direction,
                        params=params,
                    )
                )

            rec("elapsed_us", row["elapsed_us"], "us", "exact")
            rec("peak_clients", row["peak_clients"], "count", "exact")
            rec("throughput_rps", row["throughput_rps"], "req/s", "higher")
            rec("latency_p50_us", row["latency_p50_us"], "us", "info")
            rec("latency_p99_us", row["latency_p99_us"], "us", "lower")
            rec("latency_mean_us", row["latency_mean_us"], "us", "info")
            rec("syscalls_per_request", row["syscalls_per_request"],
                "count", "lower")
            for counter in (
                "replies",
                "epoll_waits",
                "epoll_wakeups",
                "epoll_ctl_calls",
                "epoll_ready_returned",
                "epoll_stale_dropped",
            ):
                rec(counter, row[counter], "count", "info")

    add_rows(payload["results"], "cold")
    add_rows(payload.get("cache_on_results", []), "warm")
    add_sf_rows(payload.get("sf_results", []))
    cold = payload["results"]
    config = {
        "client_sweep": sorted({row["clients"] for row in cold}),
        "archs": sorted({row["arch"] for row in cold}),
        "cache_pool_size": max(
            [row["pool_size"] for row in payload.get("cache_on_results", [])]
            or [0]
        ),
        "load": dict(payload.get("load", {})),
        "model": payload.get("model", "sparc-ipx"),
        "sf": sorted({row["sf"] for row in payload.get("sf_results", [])}),
    }
    return SuiteResult(
        suite=suite, env=env, config=config, records=records
    ).validate()


# ---------------------------------------------------------------------------
# check exploration sweep
# ---------------------------------------------------------------------------


def check_suite_result(
    payload: Mapping[str, Any], env: Optional[EnvFingerprint] = None
) -> SuiteResult:
    """Normalize a check-exploration payload (:func:`repro.bench.suites.run_check`)."""
    suite = "check"
    if env is None:
        env = env_fingerprint(scale=payload.get("scale"))
    records: List[BenchRecord] = []
    for row in payload["results"]:
        params = {
            "mode": row["mode"],
            "runs": row["runs"],
            "seed": row["seed"],
        }
        workload = row["workload"]

        def rec(metric, value, unit, direction):
            records.append(
                BenchRecord(
                    suite=suite,
                    workload=workload,
                    metric=metric,
                    value=value,
                    unit=unit,
                    direction=direction,
                    params=params,
                )
            )

        rec("schedules_explored", row["schedules_explored"], "count", "exact")
        rec("checks_run", row["checks_run"], "count", "exact")
        rec("failures", row["failures"], "count", "exact")
        rec("wall_seconds", row["wall_seconds"], "s", "info")
    config = {
        "runs": payload.get("runs"),
        "seed": payload.get("seed"),
        "scale": payload.get("scale", 1),
    }
    return SuiteResult(
        suite=suite, env=env, config=config, records=records
    ).validate()


# ---------------------------------------------------------------------------
# fleet scaling sweep
# ---------------------------------------------------------------------------


def fleet_suite_result(
    payload: Mapping[str, Any], env: Optional[EnvFingerprint] = None
) -> SuiteResult:
    """Normalize a ``BENCH_fleet.json``-shaped payload.

    Wall-clock speedups on shared runners are noisy, so the ratio
    records carry a wide per-record tolerance; the algorithmic facts
    (schedules explored, byte-identical reports, the full replay step
    count) are ``exact``.  Snapshot placement counters depend on
    speculation timing, so they are harvested as ``info``.
    """
    suite = "fleet"
    if env is None:
        env = env_fingerprint()
    if payload.get("host_cores") and env.cores == 0:
        env.cores = payload["host_cores"]
    records: List[BenchRecord] = []
    dfs = payload["dfs"]

    def rec(workload, metric, value, unit, direction, params=None,
            tolerance=None):
        records.append(
            BenchRecord(
                suite=suite,
                workload=workload,
                metric=metric,
                value=int(value) if isinstance(value, bool) else value,
                unit=unit,
                direction=direction,
                params=dict(params or {}),
                tolerance=tolerance,
            )
        )

    rec("dfs", "schedules_explored", dfs["schedules_explored"], "count",
        "exact")
    rec("dfs", "sequential_s", dfs["sequential_s"], "s", "info")
    rec("dfs", "snapshot_jobs1_s", dfs["snapshot_jobs1_s"], "s", "info")
    rec("dfs", "jobs4_s", dfs["jobs4_s"], "s", "info")
    rec("dfs", "speedup_snapshot_jobs1", dfs["speedup_snapshot_jobs1"],
        "ratio", "higher", tolerance=WALL_RATIO_TOLERANCE)
    rec("dfs", "speedup_jobs4", dfs["speedup_jobs4"], "ratio", "higher",
        tolerance=WALL_RATIO_TOLERANCE)
    rec("dfs", "reports_identical", dfs["reports_identical"], "bool",
        "exact")
    rec("dfs", "steps_full", dfs["sequential_fleet"]["steps_full"], "count",
        "exact")
    for phase in ("sequential", "snapshot", "jobs4"):
        stats = dfs.get("%s_fleet" % phase)
        if stats:
            records.extend(
                records_from_metrics(
                    {k: v for k, v in stats.items() if k != "backend"},
                    suite,
                    "dfs",
                    params={"phase": phase},
                )
            )
    grid = payload.get("compare_grid")
    if grid:
        rec("compare_grid", "cells", grid["cells"], "count", "exact")
        rec("compare_grid", "sequential_s", grid["sequential_s"], "s",
            "info")
        rec("compare_grid", "jobs4_s", grid["jobs4_s"], "s", "info")
        rec("compare_grid", "speedup_jobs4", grid["speedup_jobs4"], "ratio",
            "higher", tolerance=WALL_RATIO_TOLERANCE)
        rec("compare_grid", "reports_identical", grid["reports_identical"],
            "bool", "exact")
    config = {
        "workload": dfs.get("workload", "signal_storm"),
        "max_runs": dfs.get("max_runs"),
        "rounds": 100 * dfs.get("scale", 8),
        "max_depth": dfs.get("max_depth"),
        "max_branch": dfs.get("max_branch"),
        "grid": grid is not None,
    }
    return SuiteResult(
        suite=suite, env=env, config=config, records=records
    ).validate()


# ---------------------------------------------------------------------------
# smp lock-algorithm zoo
# ---------------------------------------------------------------------------


def smp_suite_result(
    payload: Mapping[str, Any], env: Optional[EnvFingerprint] = None
) -> SuiteResult:
    """Normalize an SMP-zoo payload (:func:`repro.bench.suites.run_smp`).

    Makespans come off per-CPU virtual clocks and the IPI row off the
    2-CPU world's clock, all bit-deterministic in (model, seed), so
    they are ``exact`` -- a changed makespan is a changed contention
    semantics, which must be a deliberate baseline regeneration.  The
    coherence/IPI counters are harvested as ``info`` for the trend
    history.
    """
    suite = "smp"
    if env is None:
        env = env_fingerprint()
    records: List[BenchRecord] = []
    for row in payload["results"]:
        params = {"ncpus": row["ncpus"], "model": row["model"]}
        workload = row["algo"]

        def rec(metric, value, unit, direction):
            records.append(
                BenchRecord(
                    suite=suite,
                    workload=workload,
                    metric=metric,
                    value=value,
                    unit=unit,
                    direction=direction,
                    params=params,
                )
            )

        rec("makespan_cycles", row["makespan_cycles"], "cycles", "exact")
        rec("cycles_per_acquisition", row["cycles_per_acquisition"],
            "cycles", "exact")
        rec("executor_steps", row["executor_steps"], "count", "exact")
        rec("acquisitions", row["acquisitions"], "count", "exact")
        records.extend(
            records_from_metrics(
                row.get("counters", {}), suite, workload, params=params
            )
        )
        records.extend(
            records_from_metrics(
                {
                    "lock.%s" % k: v
                    for k, v in row.get("lock", {}).items()
                },
                suite,
                workload,
                params=params,
            )
        )
    ipi = payload.get("ipi")
    if ipi:
        params = {"ncpus": ipi["ncpus"], "rounds": ipi["rounds"]}

        def rec(metric, value, unit, direction):
            records.append(
                BenchRecord(
                    suite=suite,
                    workload="ipi_signal_storm",
                    metric=metric,
                    value=value,
                    unit=unit,
                    direction=direction,
                    params=params,
                )
            )

        rec("elapsed_us", ipi["elapsed_us"], "us", "exact")
        rec("ipis_sent", ipi["ipis_sent"], "count", "exact")
        rec("ipis_delivered", ipi["ipis_delivered"], "count", "exact")
        rec("ipi_posts", ipi["ipi_posts"], "count", "exact")
        rec("context_switches", ipi["context_switches"], "count", "info")
    for wall_key in ("zoo_wall_seconds", "ipi_wall_seconds"):
        if wall_key in payload:
            records.append(
                BenchRecord(
                    suite=suite,
                    workload="suite",
                    metric=wall_key,
                    value=payload[wall_key],
                    unit="s",
                    direction="info",
                )
            )
    config = {
        "acquisitions": payload.get("acquisitions"),
        "section_cycles": payload.get("section_cycles"),
        "think_cycles": payload.get("think_cycles"),
        "model": payload.get("model", "niagara-t3"),
        "seed": payload.get("seed", 42),
        "ipi_rounds": payload.get("ipi", {}).get("rounds"),
    }
    return SuiteResult(
        suite=suite, env=env, config=config, records=records
    ).validate()


#: suite name -> adapter from the runner's native payload.
SUITE_ADAPTERS = {
    "host": host_suite_result,
    "net": net_suite_result,
    "check": check_suite_result,
    "fleet": fleet_suite_result,
    "smp": smp_suite_result,
}


def normalize(
    suite: str,
    payload: Mapping[str, Any],
    env: Optional[EnvFingerprint] = None,
) -> SuiteResult:
    """Dispatch a native payload through its suite adapter."""
    try:
        adapter = SUITE_ADAPTERS[suite]
    except KeyError:
        raise ValueError(
            "unknown suite %r (have: %s)"
            % (suite, ", ".join(sorted(SUITE_ADAPTERS)))
        )
    return adapter(payload, env=env)
