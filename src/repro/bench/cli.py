"""The evaluation-harness CLI: ``python -m repro.bench <command>``.

::

    python -m repro.bench run     --suite host --out records/host.json
    python -m repro.bench run     --suite all --archive
    python -m repro.bench migrate [--commit abc1234]
    python -m repro.bench compare baseline.json current.json
    python -m repro.bench gate    --suite host            # re-measure
    python -m repro.bench gate    --suite net --current records/net.json
    python -m repro.bench gate    --all --current-dir records/
    python -m repro.bench trend   [--suite host] [--format html --out t.html]
    python -m repro.bench list

``run`` executes a suite and writes normalized schema records
(``--archive`` files them under ``benchmarks/history/<commit>/``).
``compare`` diffs two record files with per-metric tolerance bands.
``gate`` compares a current run (measured on the spot when
``--current`` is omitted) against the newest archived baseline and
exits nonzero on any out-of-band regression, missing metric, or
simulated-time divergence.  ``trend`` renders the archived history as
an ASCII table or an HTML page.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.bench.adapters import normalize
from repro.bench.archive import (
    DEFAULT_HISTORY,
    latest_result,
    list_commits,
    save_result,
)
from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_results,
    failures,
    render_findings,
)
from repro.bench.schema import SchemaError, SuiteResult
from repro.bench.suites import SUITES, SUITE_RUNNERS
from repro.bench.trend import trend_ascii, trend_html


def _run_suite_now(suite: str, config: Optional[dict] = None,
                   scale: Optional[int] = None) -> SuiteResult:
    """Measure one suite, optionally replaying an archived config."""
    runner = SUITE_RUNNERS[suite]
    kwargs = dict(config or {})
    # Archived configs may carry descriptive keys the runner does not
    # take (e.g. the fleet workload name); keep only real parameters.
    import inspect

    accepted = set(inspect.signature(runner).parameters)
    kwargs = {k: v for k, v in kwargs.items()
              if k in accepted and v is not None}
    if scale is not None and "scale" in accepted:
        kwargs["scale"] = scale
    payload = runner(**kwargs)
    return normalize(suite, payload)


def _load_result(path) -> SuiteResult:
    return SuiteResult.load(path)


def cmd_run(args: argparse.Namespace) -> int:
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    status = 0
    for suite in suites:
        print("running suite %r..." % suite)
        result = _run_suite_now(suite, scale=args.scale)
        print(
            "  %d records from %d workloads (commit %s)"
            % (
                len(result.records),
                len({r.workload for r in result.records}),
                result.env.commit,
            )
        )
        if args.out and len(suites) == 1:
            result.save(args.out)
            print("  wrote %s" % args.out)
        elif args.out:
            target = Path(args.out) / ("%s.json" % suite)
            result.save(target)
            print("  wrote %s" % target)
        if args.archive:
            path = save_result(result, args.history)
            print("  archived %s" % path)
    return status


def cmd_migrate(args: argparse.Namespace) -> int:
    from repro.bench.migrate import describe, migrate_legacy

    saved = migrate_legacy(
        root=args.root, history_dir=args.history, commit=args.commit
    )
    if not saved:
        print("no legacy BENCH_*.json files found under %s" % args.root,
              file=sys.stderr)
        return 1
    for line in describe(saved):
        print("migrated %s" % line)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = _load_result(args.baseline)
    current = _load_result(args.current)
    findings = compare_results(baseline, current, tolerance=args.tolerance)
    print(render_findings(findings, verbose=args.verbose))
    failed = failures(findings)
    if failed:
        print(
            "\n%d of %d gated metrics failed" % (len(failed), len(findings)),
            file=sys.stderr,
        )
        return 1
    print("\nall %d gated metrics within band" % len(findings))
    return 0


def _gate_one(
    suite: str,
    args: argparse.Namespace,
    current_path: Optional[str],
) -> int:
    baseline = None
    if args.baseline:
        baseline = _load_result(args.baseline)
    else:
        baseline = latest_result(args.history, suite)
    if baseline is None:
        print(
            "gate[%s]: no archived baseline under %s -- run "
            "`python -m repro.bench run --suite %s --archive` first"
            % (suite, args.history, suite),
            file=sys.stderr,
        )
        return 1
    if current_path:
        current = _load_result(current_path)
    else:
        print(
            "gate[%s]: measuring now with the baseline's config %r..."
            % (suite, baseline.config)
        )
        current = _run_suite_now(suite, config=baseline.config)
        if args.save_current:
            current.save(args.save_current)
            print("gate[%s]: wrote %s" % (suite, args.save_current))
    findings = compare_results(baseline, current, tolerance=args.tolerance)
    print(render_findings(findings, verbose=args.verbose))
    failed = failures(findings)
    if failed:
        print("\ngate[%s] FAILED (baseline commit %s):"
              % (suite, baseline.env.commit), file=sys.stderr)
        for finding in failed:
            print("  - %s: %s" % (finding.label(), finding.message),
                  file=sys.stderr)
        return 1
    print(
        "gate[%s] passed: %d metrics vs baseline commit %s "
        "(tolerance %.0f%%)"
        % (suite, len(findings), baseline.env.commit,
           args.tolerance * 100.0)
    )
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    if args.current_dir:
        directory = Path(args.current_dir)
        pairs = []
        for suite in SUITES:
            path = directory / ("%s.json" % suite)
            if path.exists():
                pairs.append((suite, str(path)))
        if not pairs:
            print("no <suite>.json records under %s" % directory,
                  file=sys.stderr)
            return 1
        worst = 0
        for suite, path in pairs:
            worst = max(worst, _gate_one(suite, args, path))
        return worst
    if args.all:
        worst = 0
        for suite in SUITES:
            if latest_result(args.history, suite) is None:
                print("gate[%s]: skipped (no baseline archived)" % suite)
                continue
            worst = max(worst, _gate_one(suite, args, None))
        return worst
    if not args.suite:
        print("gate: pass --suite, --all, or --current-dir",
              file=sys.stderr)
        return 2
    return _gate_one(args.suite, args, args.current)


def cmd_trend(args: argparse.Namespace) -> int:
    if args.format == "html":
        page = trend_html(
            args.history, suite=args.suite, metric_filter=args.metric
        )
        if args.out:
            Path(args.out).write_text(page)
            print("wrote %s" % args.out)
        else:
            print(page)
        return 0
    table = trend_ascii(
        args.history,
        suite=args.suite,
        metric_filter=args.metric,
        gated_only=args.gated_only,
    )
    if args.out:
        Path(args.out).write_text(table + "\n")
        print("wrote %s" % args.out)
    else:
        print(table)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("suites: %s" % ", ".join(SUITES))
    commits = list_commits(args.history)
    if commits:
        print("history (%s): %d entries, oldest first:"
              % (args.history, len(commits)))
        for commit in commits:
            entry = Path(args.history) / commit
            suites = sorted(
                p.stem for p in entry.glob("*.json")
            ) if entry.is_dir() else []
            print("  %s  (%s)" % (commit, ", ".join(suites) or "empty"))
    else:
        print("history (%s): empty" % args.history)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        help="archive directory (default benchmarks/history)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    run = subs.add_parser("run", help="measure a suite, emit schema records")
    run.add_argument("--suite", choices=SUITES + ("all",), required=True)
    run.add_argument("--scale", type=int, default=None,
                     help="override the suite's default scale")
    run.add_argument("--out", default=None,
                     help="output file (or directory with --suite all)")
    run.add_argument("--archive", action="store_true",
                     help="also file under benchmarks/history/<commit>/")
    run.set_defaults(fn=cmd_run)

    migrate = subs.add_parser(
        "migrate", help="convert legacy BENCH_*.json into the history"
    )
    migrate.add_argument("--root", default=".",
                         help="repo root holding the legacy files")
    migrate.add_argument("--commit", default=None,
                         help="commit label for the seed entry")
    migrate.set_defaults(fn=cmd_migrate)

    comp = subs.add_parser("compare", help="diff two record files")
    comp.add_argument("baseline")
    comp.add_argument("current")
    comp.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    comp.add_argument("--verbose", action="store_true",
                      help="show in-band metrics too")
    comp.set_defaults(fn=cmd_compare)

    gate = subs.add_parser(
        "gate", help="fail on out-of-band regressions vs the baseline"
    )
    gate.add_argument("--suite", choices=SUITES, default=None)
    gate.add_argument("--all", action="store_true",
                      help="gate every suite with an archived baseline")
    gate.add_argument("--baseline", default=None,
                      help="explicit baseline records file "
                      "(default: newest archived entry)")
    gate.add_argument("--current", default=None,
                      help="records file from a prior measurement; "
                      "omitted = measure now at the baseline's config")
    gate.add_argument("--current-dir", default=None,
                      help="directory of <suite>.json records; gates "
                      "each against its archived baseline")
    gate.add_argument("--save-current", default=None,
                      help="write the freshly measured records here")
    gate.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    gate.add_argument("--verbose", action="store_true")
    gate.set_defaults(fn=cmd_gate)

    trend = subs.add_parser("trend", help="history table (ASCII or HTML)")
    trend.add_argument("--suite", choices=SUITES, default=None)
    trend.add_argument("--metric", default=None,
                       help="substring filter on metric names")
    trend.add_argument("--format", choices=("ascii", "html"),
                       default="ascii")
    trend.add_argument("--gated-only", action="store_true",
                       help="hide info-direction series")
    trend.add_argument("--out", default=None)
    trend.set_defaults(fn=cmd_trend)

    lst = subs.add_parser("list", help="suites and archived history")
    lst.set_defaults(fn=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (SchemaError, FileNotFoundError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # e.g. `trend | head`; the reader closed early, nothing failed.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
