"""Calibration verification: measured vs paper, programmatically.

`repro/hw/costs.py` is the repository's only tuning surface; this
module re-measures every Table 2 row and reports relative deviation
from the paper's "Ours" columns, so a change to the library code that
silently shifts a metric shows up immediately (the calibration tests
in ``benchmarks/`` gate on these numbers).

    python -m repro.bench.calibrate
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.metrics import MEASUREMENTS
from repro.bench.table2 import PAPER_TABLE2


@dataclass(frozen=True)
class CalibrationPoint:
    """One (row, machine) check."""

    key: str
    model: str
    paper_us: float
    measured_us: float

    @property
    def deviation(self) -> float:
        """Signed relative deviation (0.1 = 10 % above the paper)."""
        return self.measured_us / self.paper_us - 1.0

    def within(self, tolerance: float) -> bool:
        return abs(self.deviation) <= tolerance

    def __str__(self) -> str:
        return "%-26s %-9s paper %7.1f  measured %7.1f  (%+5.1f%%)" % (
            self.key,
            self.model,
            self.paper_us,
            self.measured_us,
            self.deviation * 100,
        )


def calibration_points(
    models: Optional[List[str]] = None,
) -> List[CalibrationPoint]:
    """Measure every row that has a paper value on the given models."""
    points: List[CalibrationPoint] = []
    for row in PAPER_TABLE2:
        targets: Dict[str, Optional[float]] = {
            "sparc-1+": row.ours_1plus,
            "sparc-ipx": row.ours_ipx,
        }
        for model, paper_us in targets.items():
            if paper_us is None:
                continue
            if models is not None and model not in models:
                continue
            measured = MEASUREMENTS[row.key](model)
            points.append(
                CalibrationPoint(row.key, model, paper_us, measured)
            )
    return points


def worst_deviation(points: List[CalibrationPoint]) -> float:
    return max(abs(p.deviation) for p in points)


def report(points: Optional[List[CalibrationPoint]] = None) -> str:
    points = points if points is not None else calibration_points()
    lines = [str(p) for p in points]
    lines.append(
        "worst deviation: %.1f%%" % (worst_deviation(points) * 100)
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(report())
