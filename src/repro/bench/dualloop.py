"""Dual-loop timing analysis over the virtual clock.

The paper's measurements "were taken ... using dual loop timing
analysis": time a loop executing the operation, time an identical loop
executing nothing, subtract, divide by the iteration count.  On the
virtual clock this is exact rather than statistical, but we keep the
methodology (including a small per-iteration loop overhead that the
subtraction cancels) so the harness matches the paper's procedure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.world import World

#: Simulated cycles of loop bookkeeping per iteration (cancelled by
#: the empty-loop subtraction, exactly as in the paper's methodology).
LOOP_OVERHEAD_CYCLES = 2


class DualLoopTimer:
    """Collects start/stop samples against a world's clock."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._start: Optional[int] = None
        self.samples: List[int] = []

    def start(self) -> None:
        self._start = self.world.now

    def stop(self) -> None:
        if self._start is None:
            raise RuntimeError("stop() without start()")
        self.samples.append(self.world.now - self._start)
        self._start = None

    def mark(self) -> int:
        """Raw timestamp (cycles) for interval arithmetic."""
        return self.world.now

    def record_interval(self, start_cycles: int, end_cycles: int) -> None:
        if end_cycles < start_cycles:
            raise ValueError("interval ends before it starts")
        self.samples.append(end_cycles - start_cycles)

    # -- reductions -----------------------------------------------------------

    def total_cycles(self) -> int:
        return sum(self.samples)

    def mean_us(self) -> float:
        if not self.samples:
            raise RuntimeError("no samples collected")
        return self.world.us(self.total_cycles()) / len(self.samples)

    def per_op_us(self, loop_samples: int, ops_per_sample: int) -> float:
        """Dual-loop reduction: subtract the empty-loop overhead."""
        if not self.samples:
            raise RuntimeError("no samples collected")
        overhead = LOOP_OVERHEAD_CYCLES * ops_per_sample
        cycles = sum(max(s - overhead, 0) for s in self.samples)
        del loop_samples
        return self.world.us(cycles) / (len(self.samples) * ops_per_sample)


def loop_body_overhead(pt):
    """The per-iteration charge both loops of a dual-loop share."""
    return pt.work(LOOP_OVERHEAD_CYCLES)
