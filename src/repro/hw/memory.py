"""Simulated memory: an ``sbrk``-backed heap and thread stacks.

The paper notes that thread creation/termination "involves allocation /
deallocation of heap space which sporadically may result in kernel calls
to ``sbrk``" and that allocation accounts for ~70 % of creation time --
motivating the TCB/stack pool (see :mod:`repro.core.pool` and the
pool-ablation benchmark).  This module models that cost structure: the
heap hands out blocks from an arena; when the arena is exhausted it
calls the (simulated, expensive) ``sbrk`` syscall to grow.

Stacks model a stack pointer with a redzone so the library can detect
overflow of a thread's stack -- the failure the paper's "no unlimited
stack growth" design objective protects against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.hw import costs
from repro.hw.clock import VirtualClock
from repro.hw.costs import CostModel


class MemoryError_(Exception):
    """Out of simulated memory."""


class StackOverflow(Exception):
    """A simulated thread stack grew past its redzone."""


class Heap:
    """A bump-with-freelist heap over an ``sbrk``-grown arena.

    Parameters
    ----------
    clock, model:
        Charge allocation costs.
    arena:
        Initial arena size in bytes.
    limit:
        Hard ceiling on total arena size (``sbrk`` fails past this).
    sbrk:
        Callback performing the simulated ``sbrk`` syscall (charged by
        the UNIX kernel); receives the grow amount.  When None, growth
        is charged locally at syscall cost.
    """

    def __init__(
        self,
        clock: VirtualClock,
        model: CostModel,
        arena: int = 1 << 20,
        limit: int = 1 << 28,
        sbrk: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._clock = clock
        self._model = model
        self._arena = arena
        self._limit = limit
        self._brk = 0  # high-water mark inside the arena
        self._free: Dict[int, list] = {}  # size -> [addresses]
        self._sizes: Dict[int, int] = {}  # address -> size
        self._next_addr = 0x1000
        self._sbrk = sbrk
        self.sbrk_calls = 0
        self.allocated_bytes = 0

    @property
    def arena_size(self) -> int:
        return self._arena

    @property
    def live_bytes(self) -> int:
        return self.allocated_bytes

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a simulated address."""
        if size <= 0:
            raise ValueError("allocation size must be positive: %r" % size)
        self._clock.advance(self._model.cost(costs.HEAP_ALLOC))
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            while self._brk + size > self._arena:
                self._grow(max(size, self._arena))
            self._brk += size
            addr = self._next_addr
            self._next_addr += size
        self._sizes[addr] = size
        self.allocated_bytes += size
        return addr

    def free(self, addr: int) -> None:
        """Release a block previously returned by :meth:`malloc`."""
        self._clock.advance(self._model.cost(costs.HEAP_FREE))
        try:
            size = self._sizes.pop(addr)
        except KeyError:
            raise MemoryError_("free of unallocated address %#x" % addr)
        self.allocated_bytes -= size
        self._free.setdefault(size, []).append(addr)

    def _grow(self, amount: int) -> None:
        if self._arena + amount > self._limit:
            raise MemoryError_(
                "heap limit exceeded: %d + %d > %d"
                % (self._arena, amount, self._limit)
            )
        self.sbrk_calls += 1
        if self._sbrk is not None:
            self._sbrk(amount)
        else:
            self._clock.advance(self._model.cost(costs.SYSCALL))
            self._clock.advance(self._model.cost(costs.SBRK_WORK))
        self._arena += amount


class Stack:
    """A downward-growing thread stack with a redzone.

    Frame pushes move the stack pointer down; crossing into the redzone
    raises :class:`StackOverflow`.  The Pthreads library sizes these
    from the thread attribute's ``stacksize``.
    """

    def __init__(self, base: int, size: int, redzone: int = 256) -> None:
        if size <= redzone:
            raise ValueError(
                "stack size %d not larger than redzone %d" % (size, redzone)
            )
        self.base = base  # numerically highest address
        self.size = size
        self.redzone = redzone
        self.sp = base  # current stack pointer
        self.high_water = 0  # deepest usage seen, in bytes

    @property
    def used(self) -> int:
        return self.base - self.sp

    @property
    def remaining(self) -> int:
        return self.size - self.redzone - self.used

    def push(self, nbytes: int, redzone_ok: bool = False) -> int:
        """Push a frame of ``nbytes``; returns the new stack pointer.

        ``redzone_ok`` lets signal-wrapper frames borrow the redzone
        (the library's stand-in for a signal stack), so a handler can
        still run after user code exhausted its stack.
        """
        if nbytes < 0:
            raise ValueError("frame size must be >= 0: %r" % nbytes)
        new_sp = self.sp - nbytes
        limit = self.size if redzone_ok else self.size - self.redzone
        if self.base - new_sp > limit:
            raise StackOverflow(
                "stack overflow: frame of %d bytes leaves sp %d bytes past "
                "%s (size=%d)"
                % (
                    nbytes,
                    self.base - new_sp,
                    "the stack end" if redzone_ok else "the redzone",
                    self.size,
                )
            )
        self.sp = new_sp
        self.high_water = max(self.high_water, self.used)
        return self.sp

    def pop(self, nbytes: int) -> int:
        """Pop a frame of ``nbytes``; returns the new stack pointer."""
        new_sp = self.sp + nbytes
        if new_sp > self.base:
            raise MemoryError_("stack pop past base")
        self.sp = new_sp
        return self.sp

    def reset(self) -> None:
        """Reset to empty (used when recycling a pooled stack)."""
        self.sp = self.base
        self.high_water = 0

    def __repr__(self) -> str:
        return "Stack(base=%#x, size=%d, used=%d)" % (
            self.base,
            self.size,
            self.used,
        )


# ---------------------------------------------------------------------------
# SMP cache coherence (see docs/SMP.md).
# ---------------------------------------------------------------------------


class CacheLine:
    """Directory state for one cache line shared between simulated CPUs.

    A line is either *exclusively owned* (``owner`` is a CPU index,
    ``sharers`` empty -- MESI M/E) or *shared* (``owner`` is None,
    ``sharers`` holds the CPU indices with a valid copy -- MESI S), or
    cold (neither).  ``version`` bumps on every write so spinners can
    tell "the word I am watching changed".  ``busy_until`` serializes
    exclusive transfers: the line can move to at most one new owner per
    transfer window, which is what makes a test-and-set storm degrade
    linearly with contenders, as on real coherence fabrics.
    """

    __slots__ = ("name", "owner", "sharers", "version", "busy_until",
                 "bounces")

    def __init__(self, name: str) -> None:
        self.name = name
        self.owner: Optional[int] = None
        self.sharers: set = set()
        self.version = 0
        self.busy_until = 0
        self.bounces = 0

    def holders(self) -> set:
        out = set(self.sharers)
        if self.owner is not None:
            out.add(self.owner)
        return out

    def __repr__(self) -> str:
        return "CacheLine(%s, owner=%r, sharers=%r, v=%d)" % (
            self.name, self.owner, sorted(self.sharers), self.version,
        )


class CacheDirectory:
    """Tracks cache-line ownership across N CPUs and prices transfers.

    The directory is the single source of inter-CPU contention cost:
    an access that hits the accessor's own cache costs nothing extra;
    pulling the line from another CPU costs a transfer (near or far by
    chip topology) *plus* any wait for an in-flight transfer of the
    same line (``busy_until``).  Shared (read) copies are cheap to join
    and do not serialize -- only exclusive moves bounce the line.

    ``table`` is a flat cost table (``CostModel.table()``).  Topology:
    CPUs ``[k*cpus_per_chip, (k+1)*cpus_per_chip)`` share a chip.
    """

    def __init__(
        self,
        ncpus: int,
        table: Dict[str, int],
        cpus_per_chip: int = 16,
    ) -> None:
        if ncpus < 1:
            raise ValueError("need at least one CPU: %r" % ncpus)
        if cpus_per_chip < 1:
            raise ValueError("cpus_per_chip must be >= 1: %r" % cpus_per_chip)
        self.ncpus = ncpus
        self.cpus_per_chip = cpus_per_chip
        self._near = table[costs.LINE_TRANSFER_NEAR]
        self._far = table[costs.LINE_TRANSFER_FAR]
        self._join = table[costs.LINE_SHARED_JOIN]
        self._lines: Dict[str, CacheLine] = {}
        self.transfers_near = 0
        self.transfers_far = 0
        self.shared_joins = 0
        self.bounces = 0

    def line(self, name: str) -> CacheLine:
        """Get or create the directory entry for ``name``."""
        entry = self._lines.get(name)
        if entry is None:
            entry = self._lines[name] = CacheLine(name)
        return entry

    def lines(self) -> Dict[str, CacheLine]:
        return dict(self._lines)

    def near(self, a: int, b: int) -> bool:
        """Are CPUs ``a`` and ``b`` on the same chip?"""
        per = self.cpus_per_chip
        return a // per == b // per

    def _transfer_cost(self, cpu: int, source: int) -> int:
        if self.near(cpu, source):
            self.transfers_near += 1
            return self._near
        self.transfers_far += 1
        return self._far

    def _nearest_holder(self, cpu: int, line: CacheLine) -> int:
        # Deterministic: prefer an on-chip holder, tie-break lowest index.
        holders = sorted(line.holders())
        for holder in holders:
            if self.near(cpu, holder):
                return holder
        return holders[0]

    def read(self, cpu: int, line: CacheLine, now: int) -> int:
        """Load from ``line`` on ``cpu`` at local time ``now``.

        Returns the *extra* cycles the access costs beyond the base
        instruction (0 on a local hit), and updates directory state.
        """
        if line.owner == cpu or cpu in line.sharers:
            return 0
        if line.owner is None:
            if not line.sharers:  # cold: fill from memory, no contention
                line.sharers.add(cpu)
                return 0
            # Join an existing sharer set: unserialized, cheap.
            source = self._nearest_holder(cpu, line)
            line.sharers.add(cpu)
            self.shared_joins += 1
            return self._join if self.near(cpu, source) else self._far
        # Modified elsewhere: one serialized transfer demotes it to shared.
        wait = line.busy_until - now
        if wait < 0:
            wait = 0
        cost = self._transfer_cost(cpu, line.owner)
        line.bounces += 1
        self.bounces += 1
        line.busy_until = now + wait + cost
        line.sharers = {line.owner, cpu}
        line.owner = None
        return wait + cost

    def write(self, cpu: int, line: CacheLine, now: int) -> int:
        """Store to ``line`` on ``cpu`` at local time ``now``.

        Returns the extra cycles (0 when ``cpu`` already owns the
        line); moves the line to exclusive ownership by ``cpu`` and
        bumps its version.
        """
        if line.owner == cpu:
            line.version += 1
            return 0
        others = line.holders()
        others.discard(cpu)
        if not others:
            # Cold line, or an upgrade from being the only sharer.
            line.owner = cpu
            line.sharers = set()
            line.version += 1
            return 0
        wait = line.busy_until - now
        if wait < 0:
            wait = 0
        source = (
            line.owner if line.owner is not None
            else self._nearest_holder(cpu, line)
        )
        cost = self._transfer_cost(cpu, source)
        line.bounces += 1
        self.bounces += 1
        line.busy_until = now + wait + cost
        line.owner = cpu
        line.sharers = set()
        line.version += 1
        return wait + cost

    def counters(self) -> Dict[str, int]:
        return {
            "smp.line_bounces": self.bounces,
            "smp.line_transfers_near": self.transfers_near,
            "smp.line_transfers_far": self.transfers_far,
            "smp.line_shared_joins": self.shared_joins,
        }

    def signature(self) -> tuple:
        """Stable summary for world digests (see ``World.state_digest``)."""
        return tuple(
            (name, entry.owner, tuple(sorted(entry.sharers)),
             entry.version, entry.busy_until)
            for name, entry in sorted(self._lines.items())
        )

    def __repr__(self) -> str:
        return "CacheDirectory(ncpus=%d, lines=%d, bounces=%d)" % (
            self.ncpus, len(self._lines), self.bounces,
        )
