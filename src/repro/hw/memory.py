"""Simulated memory: an ``sbrk``-backed heap and thread stacks.

The paper notes that thread creation/termination "involves allocation /
deallocation of heap space which sporadically may result in kernel calls
to ``sbrk``" and that allocation accounts for ~70 % of creation time --
motivating the TCB/stack pool (see :mod:`repro.core.pool` and the
pool-ablation benchmark).  This module models that cost structure: the
heap hands out blocks from an arena; when the arena is exhausted it
calls the (simulated, expensive) ``sbrk`` syscall to grow.

Stacks model a stack pointer with a redzone so the library can detect
overflow of a thread's stack -- the failure the paper's "no unlimited
stack growth" design objective protects against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.hw import costs
from repro.hw.clock import VirtualClock
from repro.hw.costs import CostModel


class MemoryError_(Exception):
    """Out of simulated memory."""


class StackOverflow(Exception):
    """A simulated thread stack grew past its redzone."""


class Heap:
    """A bump-with-freelist heap over an ``sbrk``-grown arena.

    Parameters
    ----------
    clock, model:
        Charge allocation costs.
    arena:
        Initial arena size in bytes.
    limit:
        Hard ceiling on total arena size (``sbrk`` fails past this).
    sbrk:
        Callback performing the simulated ``sbrk`` syscall (charged by
        the UNIX kernel); receives the grow amount.  When None, growth
        is charged locally at syscall cost.
    """

    def __init__(
        self,
        clock: VirtualClock,
        model: CostModel,
        arena: int = 1 << 20,
        limit: int = 1 << 28,
        sbrk: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._clock = clock
        self._model = model
        self._arena = arena
        self._limit = limit
        self._brk = 0  # high-water mark inside the arena
        self._free: Dict[int, list] = {}  # size -> [addresses]
        self._sizes: Dict[int, int] = {}  # address -> size
        self._next_addr = 0x1000
        self._sbrk = sbrk
        self.sbrk_calls = 0
        self.allocated_bytes = 0

    @property
    def arena_size(self) -> int:
        return self._arena

    @property
    def live_bytes(self) -> int:
        return self.allocated_bytes

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a simulated address."""
        if size <= 0:
            raise ValueError("allocation size must be positive: %r" % size)
        self._clock.advance(self._model.cost(costs.HEAP_ALLOC))
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            while self._brk + size > self._arena:
                self._grow(max(size, self._arena))
            self._brk += size
            addr = self._next_addr
            self._next_addr += size
        self._sizes[addr] = size
        self.allocated_bytes += size
        return addr

    def free(self, addr: int) -> None:
        """Release a block previously returned by :meth:`malloc`."""
        self._clock.advance(self._model.cost(costs.HEAP_FREE))
        try:
            size = self._sizes.pop(addr)
        except KeyError:
            raise MemoryError_("free of unallocated address %#x" % addr)
        self.allocated_bytes -= size
        self._free.setdefault(size, []).append(addr)

    def _grow(self, amount: int) -> None:
        if self._arena + amount > self._limit:
            raise MemoryError_(
                "heap limit exceeded: %d + %d > %d"
                % (self._arena, amount, self._limit)
            )
        self.sbrk_calls += 1
        if self._sbrk is not None:
            self._sbrk(amount)
        else:
            self._clock.advance(self._model.cost(costs.SYSCALL))
            self._clock.advance(self._model.cost(costs.SBRK_WORK))
        self._arena += amount


class Stack:
    """A downward-growing thread stack with a redzone.

    Frame pushes move the stack pointer down; crossing into the redzone
    raises :class:`StackOverflow`.  The Pthreads library sizes these
    from the thread attribute's ``stacksize``.
    """

    def __init__(self, base: int, size: int, redzone: int = 256) -> None:
        if size <= redzone:
            raise ValueError(
                "stack size %d not larger than redzone %d" % (size, redzone)
            )
        self.base = base  # numerically highest address
        self.size = size
        self.redzone = redzone
        self.sp = base  # current stack pointer
        self.high_water = 0  # deepest usage seen, in bytes

    @property
    def used(self) -> int:
        return self.base - self.sp

    @property
    def remaining(self) -> int:
        return self.size - self.redzone - self.used

    def push(self, nbytes: int, redzone_ok: bool = False) -> int:
        """Push a frame of ``nbytes``; returns the new stack pointer.

        ``redzone_ok`` lets signal-wrapper frames borrow the redzone
        (the library's stand-in for a signal stack), so a handler can
        still run after user code exhausted its stack.
        """
        if nbytes < 0:
            raise ValueError("frame size must be >= 0: %r" % nbytes)
        new_sp = self.sp - nbytes
        limit = self.size if redzone_ok else self.size - self.redzone
        if self.base - new_sp > limit:
            raise StackOverflow(
                "stack overflow: frame of %d bytes leaves sp %d bytes past "
                "%s (size=%d)"
                % (
                    nbytes,
                    self.base - new_sp,
                    "the stack end" if redzone_ok else "the redzone",
                    self.size,
                )
            )
        self.sp = new_sp
        self.high_water = max(self.high_water, self.used)
        return self.sp

    def pop(self, nbytes: int) -> int:
        """Pop a frame of ``nbytes``; returns the new stack pointer."""
        new_sp = self.sp + nbytes
        if new_sp > self.base:
            raise MemoryError_("stack pop past base")
        self.sp = new_sp
        return self.sp

    def reset(self) -> None:
        """Reset to empty (used when recycling a pooled stack)."""
        self.sp = self.base
        self.high_water = 0

    def __repr__(self) -> str:
        return "Stack(base=%#x, size=%d, used=%d)" % (
            self.base,
            self.size,
            self.used,
        )
