"""The virtual cycle clock.

Everything in the reproduction is timed against this clock.  It counts
CPU cycles; the :class:`~repro.hw.costs.CostModel` of the simulated
machine converts cycles to microseconds, which is the unit the paper's
Table 2 reports.

The clock also supports *watchers*: callbacks fired whenever the clock
advances, used by the event queue to deliver timer expirations and
external signals at the correct virtual instant (splitting long
computation bursts exactly as a hardware interrupt would).
"""

from __future__ import annotations

from typing import Callable, List

Watcher = Callable[[int, int], None]


class VirtualClock:
    """A monotonically increasing cycle counter.

    ``cycles`` is a plain attribute (executor hot paths read it tens of
    times per step; a property would dominate); treat it as read-only
    outside this class and advance via :meth:`advance`.

    Parameters
    ----------
    start:
        Initial cycle count (defaults to 0).
    """

    __slots__ = ("cycles", "_watchers")

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start in the past: %r" % (start,))
        self.cycles = start
        self._watchers: List[Watcher] = []

    def advance(self, cycles: int) -> None:
        """Move the clock forward by ``cycles`` (must be >= 0)."""
        if cycles <= 0:
            if cycles == 0:
                return
            raise ValueError("cannot advance clock backwards: %r" % (cycles,))
        before = self.cycles
        self.cycles = after = before + cycles
        if self._watchers:
            for watcher in self._watchers:
                watcher(before, after)

    def advance_to(self, cycles: int) -> None:
        """Move the clock forward to an absolute instant (>= now)."""
        if cycles < self.cycles:
            raise ValueError(
                "cannot rewind clock from %d to %d" % (self.cycles, cycles)
            )
        self.advance(cycles - self.cycles)

    def add_watcher(self, watcher: Watcher) -> None:
        """Register ``watcher(before, after)`` to run on every advance."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Watcher) -> None:
        self._watchers.remove(watcher)

    def __repr__(self) -> str:
        return "VirtualClock(cycles=%d)" % self.cycles
