"""The virtual cycle clock.

Everything in the reproduction is timed against this clock.  It counts
CPU cycles; the :class:`~repro.hw.costs.CostModel` of the simulated
machine converts cycles to microseconds, which is the unit the paper's
Table 2 reports.

The clock also supports *watchers*: callbacks fired whenever the clock
advances, used by the event queue to deliver timer expirations and
external signals at the correct virtual instant (splitting long
computation bursts exactly as a hardware interrupt would).
"""

from __future__ import annotations

from typing import Callable, List

Watcher = Callable[[int, int], None]


class VirtualClock:
    """A monotonically increasing cycle counter.

    Parameters
    ----------
    start:
        Initial cycle count (defaults to 0).
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start in the past: %r" % (start,))
        self._cycles = start
        self._watchers: List[Watcher] = []

    @property
    def cycles(self) -> int:
        """Current virtual time in cycles."""
        return self._cycles

    def advance(self, cycles: int) -> None:
        """Move the clock forward by ``cycles`` (must be >= 0)."""
        if cycles < 0:
            raise ValueError("cannot advance clock backwards: %r" % (cycles,))
        if cycles == 0:
            return
        before = self._cycles
        self._cycles = before + cycles
        for watcher in self._watchers:
            watcher(before, self._cycles)

    def advance_to(self, cycles: int) -> None:
        """Move the clock forward to an absolute instant (>= now)."""
        if cycles < self._cycles:
            raise ValueError(
                "cannot rewind clock from %d to %d" % (self._cycles, cycles)
            )
        self.advance(cycles - self._cycles)

    def add_watcher(self, watcher: Watcher) -> None:
        """Register ``watcher(before, after)`` to run on every advance."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Watcher) -> None:
        self._watchers.remove(watcher)

    def __repr__(self) -> str:
        return "VirtualClock(cycles=%d)" % self._cycles
