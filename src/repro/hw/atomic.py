"""Atomic instructions and restartable atomic sequences.

The paper's mutex fast path (Figure 4) is a seven-instruction sequence:
an ``ldstub`` test-and-set followed by recording the owner, wrapped in a
*restartable atomic sequence* so that a signal arriving between the
test-and-set and the owner store restarts the whole sequence -- which
guarantees every locked mutex has an owner at every instant (the
property priority inheritance depends on).

This module provides:

- :func:`ldstub` / :func:`compare_and_swap` on :class:`AtomicCell`;
- :class:`RestartableSequence`, which registers the sequence with the
  signal-delivery machinery so interruption mid-sequence causes a
  restart (observable through ``restarts`` and exercised by fault-
  injection tests).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TypeVar

from repro.hw import costs
from repro.hw.clock import VirtualClock
from repro.hw.costs import CostModel
from repro.hw.memory import CacheDirectory, CacheLine

T = TypeVar("T")


class AtomicCell:
    """One word of memory accessed with atomic instructions."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "AtomicCell(%r)" % (self.value,)


class SharedCell(AtomicCell):
    """An :class:`AtomicCell` that lives on a named cache line.

    Multiprocessor accessors (the ``smp_*`` functions below and
    :class:`repro.sim.smp.Cpu`) consult the line's directory entry to
    price coherence traffic; the single-CPU paths never look at it, so
    a ``SharedCell`` behaves exactly like an ``AtomicCell`` there.
    """

    __slots__ = ("line",)

    def __init__(self, line: CacheLine, value: int = 0) -> None:
        super().__init__(value)
        self.line = line

    def __repr__(self) -> str:
        return "SharedCell(%r, line=%s)" % (self.value, self.line.name)


def ldstub(clock: VirtualClock, model: CostModel, cell: AtomicCell) -> int:
    """Atomic load-store-unsigned-byte: return old value, store 0xFF."""
    clock.advance(model.cost(costs.LDSTUB))
    old = cell.value
    cell.value = 0xFF
    return old


def compare_and_swap(
    clock: VirtualClock,
    model: CostModel,
    cell: AtomicCell,
    expected: int,
    new: int,
) -> bool:
    """The compare-and-swap the paper argues SPARC should have had.

    Atomically: if the cell holds ``expected``, store ``new`` and
    return True; otherwise leave it and return False.  Costs two more
    cycles than ``ldstub`` (the comparison), per the paper's analysis.
    """
    clock.advance(model.cost(costs.CAS))
    if cell.value == expected:
        cell.value = new
        return True
    return False


# ---------------------------------------------------------------------------
# Multiprocessor atomics: the same instructions, priced for contention.
#
# Each op takes the accessing CPU's *own* clock plus the shared cache
# directory.  The directory returns the coherence surcharge -- zero on
# a cache hit, a (possibly queued) line transfer otherwise -- so an
# ldstub on a line that just bounced to another CPU automatically
# costs a full transfer window, which is the physical mechanism behind
# test-and-set's collapse under contention.  Atomicity needs no extra
# machinery: the simulator executes one op at a time, and the
# directory's busy-window serialization decides who pays what.
# ---------------------------------------------------------------------------


def smp_load(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
) -> int:
    """Ordinary load of a shared word on ``cpu``."""
    extra = directory.read(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.INSN] + extra)
    return cell.value


def smp_store(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
    value: int,
) -> None:
    """Ordinary store to a shared word on ``cpu``."""
    extra = directory.write(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.INSN] + extra)
    cell.value = value


def smp_ldstub(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
) -> int:
    """Test-and-set on a shared byte: old value out, 0xFF stored.

    Always a write for coherence purposes -- even a failing probe
    yanks the line exclusive, which is why pure spin-on-ldstub
    saturates the fabric.
    """
    extra = directory.write(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.LDSTUB] + extra)
    old = cell.value
    cell.value = 0xFF
    return old


def smp_compare_and_swap(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
    expected: int,
    new: int,
) -> bool:
    """Compare-and-swap on a shared word (coherence-priced)."""
    extra = directory.write(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.CAS] + extra)
    if cell.value == expected:
        cell.value = new
        return True
    return False


def smp_swap(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
    value: int,
) -> int:
    """Atomic exchange (MCS tail updates); priced like a CAS."""
    extra = directory.write(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.CAS] + extra)
    old = cell.value
    cell.value = value
    return old


def smp_fetch_add(
    clock: VirtualClock,
    table: dict,
    directory: CacheDirectory,
    cpu: int,
    cell: SharedCell,
    delta: int,
) -> int:
    """Atomic fetch-and-add (ticket-lock arrivals); priced like a CAS."""
    extra = directory.write(cpu, cell.line, clock.cycles)
    clock.advance(table[costs.CAS] + extra)
    old = cell.value
    cell.value = old + delta
    return old


class RestartableSequence:
    """A short instruction sequence that restarts if interrupted.

    Restartable atomic sequences are made atomic *by the signal
    handler*: if the interrupted program counter lies inside a
    registered sequence, the handler rewinds it to the sequence start.
    In the simulator the sequence body is a Python callable executed
    step-wise; an injected interruption callback (installed by tests or
    by the signal machinery) can fire between steps, triggering the
    restart exactly as the augmented handler would.

    Parameters
    ----------
    clock, model:
        Charge one instruction per step.
    name:
        Diagnostic label.
    """

    def __init__(
        self, clock: VirtualClock, model: CostModel, name: str = "ras"
    ) -> None:
        self._clock = clock
        self._model = model
        #: One-instruction charge, resolved once (the per-step lookup
        #: would otherwise dominate the mutex fast path).
        self._insn = model.cost(costs.INSN)
        self.name = name
        self.restarts = 0
        self.roll_forwards = 0
        self.runs = 0
        #: Test/fault-injection hook: called before every step with
        #: ``(run_index, step_index)``; returning True interrupts the
        #: sequence there.
        self.interrupt_hook: Optional[Callable[[int, int], bool]] = None

    def run(
        self,
        steps: List[Callable[[], Optional[T]]],
        commit_index: Optional[int] = None,
    ) -> Optional[T]:
        """Execute ``steps`` atomically against interruption.

        Each step is charged one instruction; the final step's return
        value is the sequence's result.  An interruption before
        ``commit_index`` restarts from step 0 (the augmented handler
        rewinds the PC -- steps there must be side-effect free).  An
        interruption at or past ``commit_index`` *rolls forward*: the
        handler completes the remaining stores on the thread's behalf.
        This is how Figure 4's sequence guarantees "an owner associated
        with every locked mutex at any given time" even though the
        ``ldstub`` itself is irreversible: everything after the
        test-and-set is completed, never re-executed.  ``None`` means
        every step is restartable (pure reads until the last store).
        """
        if not steps:
            raise ValueError("restartable sequence needs at least one step")
        if self.interrupt_hook is None:
            # No interruption source installed: the sequence cannot
            # restart, so run it straight through (same charges, same
            # step order as the general loop below).
            self.runs += 1
            clock = self._clock
            insn = self._insn
            result = None
            for step in steps:
                clock.advance(insn)
                result = step()
            return result
        attempt = 0
        while True:
            self.runs += 1
            result: Optional[T] = None
            interrupted = False
            for index, step in enumerate(steps):
                hook = self.interrupt_hook
                if hook is not None and hook(attempt, index):
                    if commit_index is not None and index >= commit_index:
                        # Roll forward: finish the sequence, then let
                        # the signal be handled.
                        self.roll_forwards += 1
                    else:
                        self.restarts += 1
                        interrupted = True
                        break
                self._clock.advance(self._model.cost(costs.INSN))
                result = step()
            if not interrupted:
                return result
            attempt += 1

    def __repr__(self) -> str:
        return "RestartableSequence(%r, runs=%d, restarts=%d)" % (
            self.name,
            self.runs,
            self.restarts,
        )
