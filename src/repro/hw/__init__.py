"""Simulated SPARC-like hardware substrate.

The paper's library runs on Sun SPARC hardware (a SPARC 1+ and a SPARC
IPX).  This package provides the hardware model the reproduction runs on:

- :mod:`repro.hw.clock` -- a virtual cycle clock, the time base for every
  measurement in the repository.
- :mod:`repro.hw.costs` -- per-CPU-model cycle cost tables (the
  calibration surface described in DESIGN.md section 5).
- :mod:`repro.hw.registers` -- SPARC register windows with overflow /
  underflow traps and the ``ST_FLUSH_WINDOWS`` trap used by context
  switches.
- :mod:`repro.hw.atomic` -- ``ldstub`` (test-and-set), compare-and-swap,
  and restartable atomic sequences (Figure 4 of the paper).
- :mod:`repro.hw.memory` -- an ``sbrk``-backed heap and thread stacks
  with overflow detection.
"""

from repro.hw.atomic import (
    AtomicCell,
    RestartableSequence,
    compare_and_swap,
    ldstub,
)
from repro.hw.clock import VirtualClock
from repro.hw.costs import SPARC_1PLUS, SPARC_IPX, CostModel, cost_model
from repro.hw.memory import Heap, MemoryError_, Stack, StackOverflow
from repro.hw.registers import RegisterWindows

__all__ = [
    "AtomicCell",
    "CostModel",
    "Heap",
    "MemoryError_",
    "RegisterWindows",
    "RestartableSequence",
    "SPARC_1PLUS",
    "SPARC_IPX",
    "Stack",
    "StackOverflow",
    "VirtualClock",
    "compare_and_swap",
    "cost_model",
    "ldstub",
]
