"""Cycle cost models for the simulated CPUs.

The paper evaluates its library on two machines: a Sun SPARC 1+
(25 MHz) and a Sun SPARC IPX (40 MHz).  This module is the *only*
calibration surface of the reproduction: every primitive operation in
the simulator charges one of the named costs below, and the two model
tables are tuned so that the code paths of the library reproduce the
paper's Table 2 "Ours" columns.  The structure of each metric (which
primitives execute, how many times) is fixed by the library code itself
-- only the primitive magnitudes live here.

Cost keys are module-level string constants so that typos fail loudly:
:meth:`CostModel.cost` raises ``KeyError`` for unknown keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

# ---------------------------------------------------------------------------
# Cost keys.  Grouped by subsystem; each is charged by exactly the code
# path named in the comment.
# ---------------------------------------------------------------------------

# Raw instruction-level primitives.
INSN = "insn"  # one ordinary instruction
CALL = "call"  # call + register-window save
RET = "ret"  # ret + restore
LDSTUB = "ldstub"  # atomic load-store-unsigned-byte (test-and-set)
CAS = "cas"  # hypothetical compare-and-swap (paper's proposal)

# Register-window traps (dominate context-switch time on SPARC).
# The heavy pair is what a context switch pays: ST_FLUSH_WINDOWS spills
# *all* active windows, and the incoming thread's working set must be
# refilled (charged once at switch-in).  The light pair is the ordinary
# call-path single-window spill/fill.
FLUSH_WINDOWS_TRAP = "flush_windows_trap"  # ST_FLUSH_WINDOWS kernel trap
WINDOW_UNDERFLOW_TRAP = "window_underflow_trap"  # bulk refill at switch-in
WINDOW_OVERFLOW_TRAP = "window_overflow_trap"  # single-window spill (save)
WINDOW_FILL_TRAP = "window_fill_trap"  # single-window fill (restore)
WINDOW_REGS = "window_regs"  # moving ins/outs/locals on a switch

# UNIX kernel interface.
SYSCALL = "syscall"  # enter + exit the UNIX kernel
GETPID_WORK = "getpid_work"  # in-kernel work of getpid
SIGSETMASK_WORK = "sigsetmask_work"  # in-kernel work of sigsetmask
SIGACTION_WORK = "sigaction_work"
SETITIMER_WORK = "setitimer_work"
KILL_WORK = "kill_work"  # in-kernel signal generation
SBRK_WORK = "sbrk_work"  # in-kernel heap extension
UNIX_SIGNAL_DELIVER = "unix_signal_deliver"  # push interrupt frame, run handler
UNIX_SIGRETURN = "unix_sigreturn"  # pop interrupt frame, restore global state
PROC_SWITCH = "proc_switch"  # full UNIX process context switch

# Simulated networking (charged by the unix/net.py socket services).
SOCKET_WORK = "socket_work"  # in-kernel work of socket()
BIND_WORK = "bind_work"  # bind/listen bookkeeping
ACCEPT_WORK = "accept_work"  # dequeue one connection from the accept queue
CONNECT_WORK = "connect_work"  # connection setup bookkeeping
SEND_WORK = "send_work"  # copy into the socket tx path
RECV_WORK = "recv_work"  # copy out of the socket rx buffer
SELECT_WORK = "select_work"  # select/poll fixed entry cost
SELECT_PER_FD = "select_per_fd"  # per-descriptor readiness probe
NET_DELIVER = "net_deliver"  # in-kernel packet arrival bookkeeping
# Epoll-style interest lists: the kernel keeps the registration, so a
# wait scans only the ready set (O(ready)) instead of probing every
# watched descriptor (select's O(n) SELECT_PER_FD loop).
EPOLL_WORK = "epoll_work"  # epoll_create: allocate the interest list
EPOLL_CTL_WORK = "epoll_ctl_work"  # add/remove one registration
EPOLL_WAIT_WORK = "epoll_wait_work"  # epoll_wait fixed entry cost
EPOLL_PER_READY = "epoll_per_ready"  # per *ready* descriptor reported

# Memory allocation.
HEAP_ALLOC = "heap_alloc"  # malloc-level allocation (no sbrk)
HEAP_FREE = "heap_free"
POOL_POP = "pool_pop"  # take a pre-cached TCB/stack from the pool
POOL_PUSH = "pool_push"
# A cache-missed stack is cold memory: the first pushes onto it take
# zero-fill page faults (~50-90us each on SunOS 4.x SPARCstations, per
# contemporary lmbench-style measurements), a handful of pages for a
# 64KB stack's initial working set.  Cached stacks are resident -- not
# re-faulting them is exactly why the library keeps the TCB/stack
# cache -- so this is charged only on the miss path.
STACK_FAULT_IN = "stack_fault_in"
TCB_INIT = "tcb_init"  # initialise a thread control block
STACK_SETUP = "stack_setup"  # prepare a fresh thread stack

# Pthreads library kernel (the monolithic monitor).
ENTER_KERNEL = "enter_kernel"  # set the kernel flag, bookkeeping
LEAVE_KERNEL = "leave_kernel"  # clear flag / check dispatcher flag
DISPATCH_SELECT = "dispatch_select"  # pick the next ready thread
DISPATCH_OVERHEAD = "dispatch_overhead"  # flag clears, deferred-signal check
READY_ENQUEUE = "ready_enqueue"
READY_DEQUEUE = "ready_dequeue"
ERRNO_SWITCH = "errno_switch"  # save/restore UNIX errno across a switch

# Synchronization.
MUTEX_FAST_LOCK = "mutex_fast_lock"  # Figure 4 atomic sequence + checks
MUTEX_FAST_UNLOCK = "mutex_fast_unlock"
MUTEX_SLOW_EXTRA = "mutex_slow_extra"  # blocking path bookkeeping
MUTEX_TRANSFER = "mutex_transfer"  # hand mutex to highest-prio waiter
PROTOCOL_CHECK = "protocol_check"  # mutex attribute / protocol dispatch
PRIO_ADJUST = "prio_adjust"  # inheritance/ceiling priority move
COND_WAIT_SETUP = "cond_wait_setup"  # enqueue on condvar, atomic unlock
COND_SIGNAL_WORK = "cond_signal_work"  # pick highest-prio waiter, ready it
SEM_OVERHEAD = "sem_overhead"  # semaphore layer on mutex+cond

# Signals at the Pthreads level.
SIG_RECIPIENT_RULES = "sig_recipient_rules"  # 6-rule delivery-model walk
SIG_ACTION_RULES = "sig_action_rules"  # 7-rule action selection
FAKE_CALL_SETUP = "fake_call_setup"  # push wrapper frame, fix pc/sp
WRAPPER_OVERHEAD = "wrapper_overhead"  # errno save, mutex reacquire checks
SIG_LOG_IN_KERNEL = "sig_log_in_kernel"  # record a deferred signal
SIG_MASK_OP = "sig_mask_op"  # per-thread mask manipulation

# setjmp / longjmp (SunOS setjmp flushes register windows).
SETJMP_SAVE = "setjmp_save"  # saving the jump buffer (minus the trap)
LONGJMP_RESTORE = "longjmp_restore"

# Multiprocessor coherence and cross-CPU signalling (see docs/SMP.md).
# Calibrated against the SPARC T3-4 characterization: on-chip
# cache-to-cache transfers are an order of magnitude cheaper than
# cross-chip ones, and interprocessor interrupts cost microseconds
# end to end.  Charged by repro.hw.memory.CacheDirectory and
# repro.sim.smp.
LINE_TRANSFER_NEAR = "line_transfer_near"  # cache line moves, same chip
LINE_TRANSFER_FAR = "line_transfer_far"  # cache line moves, cross chip
LINE_SHARED_JOIN = "line_shared_join"  # join an existing sharer set (read)
SPIN_READ = "spin_read"  # one spin-loop load + compare on a cached line
IPI_SEND = "ipi_send"  # trap into the kernel, write the mondo/cross-call
IPI_RECEIVE = "ipi_receive"  # interrupt entry + handler on the target CPU
IPI_LATENCY = "ipi_latency"  # wire time: send to interrupt assertion
SMP_MIGRATE = "smp_migrate"  # pull a task from another CPU's run queue
SMP_DISPATCH = "smp_dispatch"  # per-CPU scheduler picks its next task

# Misc library operations.
CREATE_MISC = "create_misc"  # pthread_create bookkeeping
JOIN_WORK = "join_work"
EXIT_WORK = "exit_work"
DETACH_WORK = "detach_work"
CANCEL_WORK = "cancel_work"
TSD_OP = "tsd_op"  # thread-specific data get/set
ONCE_OP = "once_op"
CLEANUP_OP = "cleanup_op"
ATTR_OP = "attr_op"
TIMER_TICK = "timer_tick"  # library-side timer bookkeeping


#: Baseline cycle costs.  Individual CPU models override entries.
_DEFAULT_CYCLES: Dict[str, int] = {
    INSN: 1,
    CALL: 2,
    RET: 2,
    LDSTUB: 3,
    CAS: 5,
    FLUSH_WINDOWS_TRAP: 560,
    WINDOW_UNDERFLOW_TRAP: 500,
    WINDOW_OVERFLOW_TRAP: 120,
    WINDOW_FILL_TRAP: 120,
    WINDOW_REGS: 40,
    SYSCALL: 700,
    GETPID_WORK: 20,
    SIGSETMASK_WORK: 24,
    SIGACTION_WORK: 60,
    SETITIMER_WORK: 80,
    KILL_WORK: 120,
    SBRK_WORK: 400,
    SOCKET_WORK: 180,
    BIND_WORK: 60,
    ACCEPT_WORK: 90,
    CONNECT_WORK: 140,
    SEND_WORK: 80,
    RECV_WORK: 80,
    SELECT_WORK: 120,
    SELECT_PER_FD: 12,
    NET_DELIVER: 40,
    EPOLL_WORK: 150,
    EPOLL_CTL_WORK: 70,
    EPOLL_WAIT_WORK: 110,
    EPOLL_PER_READY: 8,
    UNIX_SIGNAL_DELIVER: 6160,
    UNIX_SIGRETURN: 1100,
    PROC_SWITCH: 4900,
    HEAP_ALLOC: 500,
    HEAP_FREE: 180,
    POOL_POP: 20,
    POOL_PUSH: 16,
    STACK_FAULT_IN: 8000,  # ~4 zero-fill faults at ~50us on the IPX
    TCB_INIT: 180,
    STACK_SETUP: 90,
    ENTER_KERNEL: 8,
    LEAVE_KERNEL: 8,
    DISPATCH_SELECT: 80,
    DISPATCH_OVERHEAD: 300,
    READY_ENQUEUE: 30,
    READY_DEQUEUE: 30,
    ERRNO_SWITCH: 12,
    MUTEX_FAST_LOCK: 14,
    MUTEX_FAST_UNLOCK: 10,
    MUTEX_SLOW_EXTRA: 220,
    MUTEX_TRANSFER: 500,
    PROTOCOL_CHECK: 3,
    PRIO_ADJUST: 60,
    COND_WAIT_SETUP: 60,
    COND_SIGNAL_WORK: 60,
    SEM_OVERHEAD: 12,
    SIG_RECIPIENT_RULES: 80,
    SIG_ACTION_RULES: 80,
    FAKE_CALL_SETUP: 200,
    WRAPPER_OVERHEAD: 120,
    SIG_LOG_IN_KERNEL: 20,
    SIG_MASK_OP: 14,
    # SMP defaults follow the T3-4 shape: ~40ns for an on-chip
    # cache-to-cache transfer, ~290ns cross-chip, and a few
    # microseconds for an IPI round trip (send trap + wire latency +
    # interrupt entry).  Expressed in cycles of the modelled clock.
    LINE_TRANSFER_NEAR: 70,
    LINE_TRANSFER_FAR: 480,
    LINE_SHARED_JOIN: 30,
    SPIN_READ: 4,
    IPI_SEND: 350,
    IPI_RECEIVE: 800,
    IPI_LATENCY: 3000,
    SMP_MIGRATE: 600,
    SMP_DISPATCH: 40,
    SETJMP_SAVE: 40,
    LONGJMP_RESTORE: 120,
    CREATE_MISC: 120,
    JOIN_WORK: 90,
    EXIT_WORK: 140,
    DETACH_WORK: 50,
    CANCEL_WORK: 90,
    TSD_OP: 18,
    ONCE_OP: 14,
    CLEANUP_OP: 20,
    ATTR_OP: 10,
    TIMER_TICK: 60,
}


@dataclass(frozen=True)
class CostModel:
    """A named CPU model: clock rate plus a cycle cost table."""

    name: str
    mhz: float
    overrides: Mapping[str, int] = field(default_factory=dict)

    def cost(self, key: str) -> int:
        """Cycle cost of the primitive ``key`` on this model."""
        if key in self.overrides:
            return self.overrides[key]
        return _DEFAULT_CYCLES[key]

    def table(self) -> Dict[str, int]:
        """The full key->cycles table with overrides applied.

        Hot paths (``World.spend``) use this flat dict instead of
        paying the two-stage ``cost`` lookup per charge.
        """
        merged = dict(_DEFAULT_CYCLES)
        merged.update(self.overrides)
        return merged

    def us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds on this model."""
        return cycles / self.mhz

    def cycles_for_us(self, us: float) -> int:
        """Cycles that elapse in ``us`` microseconds on this model."""
        return int(round(us * self.mhz))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Sun SPARC 1+ at 25 MHz.  Slower memory system: traps, allocation and
#: TCB initialisation are relatively more expensive than on the IPX.
SPARC_1PLUS = CostModel(
    name="sparc-1+",
    mhz=25.0,
    overrides={
        FLUSH_WINDOWS_TRAP: 560,
        WINDOW_UNDERFLOW_TRAP: 500,
        SETJMP_SAVE: 44,
        LONGJMP_RESTORE: 130,
        TCB_INIT: 300,
        STACK_SETUP: 130,
        STACK_FAULT_IN: 9000,  # slower memory system: pricier faults
        HEAP_ALLOC: 640,
        CREATE_MISC: 140,
        COND_WAIT_SETUP: 120,
        COND_SIGNAL_WORK: 110,
        SEM_OVERHEAD: 30,
        DISPATCH_OVERHEAD: 340,
    },
)

#: Sun SPARC IPX at 40 MHz.
SPARC_IPX = CostModel(
    name="sparc-ipx",
    mhz=40.0,
    overrides={
        FLUSH_WINDOWS_TRAP: 520,
        WINDOW_UNDERFLOW_TRAP: 460,
    },
)

#: A many-core SPARC in the T3-4 mould, used by the SMP lock-zoo
#: benchmarks.  Atomics are pricier than on the scalar SPARCs (deeper
#: pipeline, the op must reach the L2 coherence point) and cross-chip
#: coherence is far slower than on-chip, per the T3-4 characterization.
NIAGARA_T3 = CostModel(
    name="niagara-t3",
    mhz=1650.0,
    overrides={
        LDSTUB: 6,
        CAS: 8,
        LINE_TRANSFER_NEAR: 70,
        LINE_TRANSFER_FAR: 480,
        IPI_LATENCY: 3300,  # ~2us of wire + queueing at 1.65 GHz
    },
)

_MODELS: Dict[str, CostModel] = {
    SPARC_1PLUS.name: SPARC_1PLUS,
    SPARC_IPX.name: SPARC_IPX,
    NIAGARA_T3.name: NIAGARA_T3,
    # Convenience aliases.
    "sparc1+": SPARC_1PLUS,
    "ipx": SPARC_IPX,
    "t3": NIAGARA_T3,
}


def cost_model(name: str) -> CostModel:
    """Look up a CPU model by name (``"sparc-1+"`` or ``"sparc-ipx"``)."""
    try:
        return _MODELS[name.lower()]
    except KeyError:
        raise KeyError(
            "unknown CPU model %r (have: %s)"
            % (name, ", ".join(sorted(_MODELS)))
        ) from None


def all_cost_keys() -> Dict[str, int]:
    """The full default cost table (for introspection and tests)."""
    return dict(_DEFAULT_CYCLES)
