"""SPARC register windows.

The SPARC keeps a small circular buffer of register windows (typically 7
or 8 usable).  ``save`` on a call rotates to a fresh window; ``restore``
on return rotates back.  When the buffer is exhausted a *window
overflow* trap spills the oldest window to the stack; returning into a
spilled window causes a *window underflow* trap that reloads it.

The paper's context switch is dominated by two of these traps: the
``ST_FLUSH_WINDOWS`` trap that spills *all* active windows of the
outgoing thread, and the underflow trap taken when the incoming thread's
``restore`` executes.  This module models window occupancy so those
traps are charged when (and only when) the real hardware would take
them.
"""

from __future__ import annotations

from repro.hw import costs
from repro.hw.clock import VirtualClock
from repro.hw.costs import CostModel


class RegisterWindows:
    """Occupancy model for one CPU's register-window file.

    Parameters
    ----------
    clock:
        The virtual clock to charge trap costs against.
    model:
        The CPU cost model.
    nwindows:
        Hardware window count.  One window is reserved for the trap
        handler, so ``nwindows - 1`` are usable, as on real SPARCs.
    """

    def __init__(
        self, clock: VirtualClock, model: CostModel, nwindows: int = 8
    ) -> None:
        if nwindows < 2:
            raise ValueError("need at least 2 register windows")
        self._clock = clock
        self._model = model
        # Trap/call costs resolved once: save/restore run on every
        # simulated frame push/pop, flush/switch_in on every context
        # switch -- the two-stage CostModel.cost lookup would dominate.
        self._c_call = model.cost(costs.CALL)
        self._c_ret = model.cost(costs.RET)
        self._c_overflow = model.cost(costs.WINDOW_OVERFLOW_TRAP)
        self._c_fill = model.cost(costs.WINDOW_FILL_TRAP)
        self._c_flush = model.cost(costs.FLUSH_WINDOWS_TRAP)
        self._c_underflow = model.cost(costs.WINDOW_UNDERFLOW_TRAP)
        self._c_regs = model.cost(costs.WINDOW_REGS)
        self._usable = nwindows - 1
        self._active = 1  # the window of the currently executing frame
        self.overflow_traps = 0
        self.underflow_traps = 0
        self.flush_traps = 0

    @property
    def active(self) -> int:
        """Number of register windows currently holding live frames."""
        return self._active

    def save(self) -> None:
        """Execute a ``save`` (function call).  May overflow-trap.

        With watchers attached the charges stay separate ``advance``
        calls (each watcher callback sees the same before/after pairs
        as always); the watcher-free common case fuses them into one
        attribute bump.
        """
        clock = self._clock
        if clock._watchers:
            if self._active == self._usable:
                self.overflow_traps += 1
                clock.advance(self._c_overflow)
            else:
                self._active += 1
            clock.advance(self._c_call)
            return
        if self._active == self._usable:
            self.overflow_traps += 1
            clock.cycles += self._c_overflow + self._c_call
        else:
            self._active += 1
            clock.cycles += self._c_call

    def restore(self) -> None:
        """Execute a ``restore`` (function return).  May fill-trap.

        An ordinary call-path underflow fills a single window -- far
        cheaper than the bulk refill a context switch pays.
        """
        clock = self._clock
        if clock._watchers:
            if self._active <= 1:
                self.underflow_traps += 1
                clock.advance(self._c_fill)
            else:
                self._active -= 1
            clock.advance(self._c_ret)
            return
        if self._active <= 1:
            self.underflow_traps += 1
            clock.cycles += self._c_fill + self._c_ret
        else:
            self._active -= 1
            clock.cycles += self._c_ret

    def flush(self) -> None:
        """``ST_FLUSH_WINDOWS``: spill every active window to the stack.

        This is the trap the outgoing thread takes on a context switch
        (and that SunOS ``setjmp`` takes, which is why a setjmp/longjmp
        pair approximates a context switch in Table 2).
        """
        self.flush_traps += 1
        clock = self._clock
        if clock._watchers:
            clock.advance(self._c_flush)
        else:
            clock.cycles += self._c_flush
        self._active = 1

    def switch_in(self) -> None:
        """Load the incoming thread's top frame (``restore`` underflow)."""
        self.underflow_traps += 1
        clock = self._clock
        if clock._watchers:
            clock.advance(self._c_underflow)
            clock.advance(self._c_regs)
        else:
            clock.cycles += self._c_underflow + self._c_regs
        self._active = 1

    def __repr__(self) -> str:
        return "RegisterWindows(active=%d/%d, flush=%d, under=%d, over=%d)" % (
            self._active,
            self._usable,
            self.flush_traps,
            self.underflow_traps,
            self.overflow_traps,
        )
