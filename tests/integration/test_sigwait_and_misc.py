"""sigwait, lazy threads, deadlock detection, stack overflow, faults."""

import pytest

from repro.core.attr import ThreadAttr
from repro.core.errors import EINVAL, OK
from repro.sim.world import DeadlockError
from repro.unix.sigset import SIGUSR1, SIGUSR2, SigSet
from tests.conftest import make_runtime, run_program


class TestSigwait:
    def test_sigwait_consumes_directed_signal(self):
        out = {}

        def waiter(pt):
            out["r"] = yield pt.sigwait(SigSet([SIGUSR1, SIGUSR2]))

        def main(pt):
            t = yield pt.create(waiter, name="waiter")
            yield pt.delay_us(100)
            yield pt.kill(t, SIGUSR2)
            yield pt.join(t)

        run_program(main)
        assert out["r"] == (OK, SIGUSR2)

    def test_sigwait_returns_already_pending_signal(self):
        out = {}

        def main(pt):
            me = yield pt.self_id()
            from repro.core.signals import SIG_BLOCK

            yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR1]))
            yield pt.kill(me, SIGUSR1)  # pends on the thread
            out["r"] = yield pt.sigwait(SigSet([SIGUSR1]))

        run_program(main)
        assert out["r"] == (OK, SIGUSR1)

    def test_sigwait_empty_set_rejected(self):
        out = {}

        def main(pt):
            out["r"] = yield pt.sigwait(SigSet())

        run_program(main)
        assert out["r"] == (EINVAL, 0)

    def test_sigwait_catches_external_signal(self):
        out = {}

        def waiter(pt):
            out["r"] = yield pt.sigwait(SigSet([SIGUSR1]))

        def main(pt):
            from repro.core.signals import SIG_BLOCK

            yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR1]))
            t = yield pt.create(waiter, name="waiter")
            yield pt.join(t)

        rt = make_runtime()
        rt.main(main)
        rt.world.schedule_in(
            rt.world.cycles_for_us(1_000),
            lambda: rt.unix.kill(rt.proc, SIGUSR1),
            name="ext",
        )
        rt.run()
        assert out["r"] == (OK, SIGUSR1)

    def test_sigwait_set_is_remasked_on_return(self):
        """Action rule 3: "signals specified in the call to sigwait are
        masked for the thread" when it wakes."""
        out = {}

        def waiter(pt):
            yield pt.sigwait(SigSet([SIGUSR1]))
            me = yield pt.self_id()
            out["masked_after"] = SIGUSR1 in me.sigmask

        def main(pt):
            t = yield pt.create(waiter, name="waiter")
            yield pt.delay_us(100)
            yield pt.kill(t, SIGUSR1)
            yield pt.join(t)

        run_program(main)
        assert out["masked_after"]


class TestLazyThreads:
    def test_lazy_thread_allocates_nothing_until_needed(self):
        def body(pt):
            yield pt.work(1)

        def main(pt):
            t = yield pt.create(body, attr=ThreadAttr(lazy=True))
            assert t.stack is None  # no resources yet
            yield pt.work(10_000)
            assert t.stack is None  # still dormant
            err, _ = yield pt.join(t)  # synchronisation activates it
            assert err == OK

        run_program(main)

    def test_explicit_activation(self):
        log = []

        def body(pt):
            log.append("ran")
            yield pt.work(1)

        def main(pt):
            t = yield pt.create(body, attr=ThreadAttr(lazy=True))
            yield pt.activate(t)
            yield pt.join(t)

        run_program(main)
        assert log == ["ran"]

    def test_unactivated_lazy_thread_never_runs(self):
        log = []

        def body(pt):
            log.append("ran")
            yield pt.work(1)

        def main(pt):
            yield pt.create(body, attr=ThreadAttr(lazy=True))
            yield pt.work(10_000)

        run_program(main)
        assert log == []


class TestFailureModes:
    def test_deadlock_detected_and_reported(self):
        def a_body(pt, m1, m2):
            yield pt.mutex_lock(m1)
            yield pt.delay_us(100)
            yield pt.mutex_lock(m2)

        def b_body(pt, m1, m2):
            yield pt.mutex_lock(m2)
            yield pt.delay_us(100)
            yield pt.mutex_lock(m1)

        def main(pt):
            m1 = yield pt.mutex_init()
            m2 = yield pt.mutex_init()
            ta = yield pt.create(a_body, m1, m2, name="A")
            tb = yield pt.create(b_body, m1, m2, name="B")
            yield pt.join(ta)
            yield pt.join(tb)

        with pytest.raises(DeadlockError) as info:
            run_program(main)
        message = str(info.value)
        assert "mutex" in message

    def test_stack_overflow_raises_synchronous_sigsegv(self):
        """Runaway recursion faults; without a user action the default
        action terminates the process -- with one, the thread recovers
        (the Ada runtime maps this to STORAGE_ERROR)."""
        from repro.unix.sigset import SIGSEGV

        def recurse(pt, n):
            if n == 0:
                return 0
            yield pt.call(recurse, n - 1)

        def main(pt):
            yield pt.call(recurse, 10_000)

        rt = run_program(main)
        assert rt.terminated_by == SIGSEGV

    def test_ada_catches_storage_error_on_deep_recursion(self):
        from repro.ada import AdaRuntime, STORAGE_ERROR

        out = {}

        def deep(pt, n):
            yield pt.call(deep, n + 1)

        def env(ada):
            try:
                yield ada.pt.call(deep, 0)
            except STORAGE_ERROR:
                out["caught"] = True
            yield ada.pt.work(10)
            out["continued"] = True

        art = AdaRuntime()
        art.main_task(env)
        art.run()
        assert out == {"caught": True, "continued": True}

    def test_unhandled_fault_terminates_process(self):
        from repro.unix.sigset import SIGSEGV

        def main(pt):
            yield pt.raise_fault(SIGSEGV)

        rt = run_program(main)
        assert rt.terminated_by == SIGSEGV

    def test_python_bug_in_thread_code_is_a_program_crash(self):
        from repro.sim.frames import ProgramCrash

        def main(pt):
            yield pt.work(1)
            raise RuntimeError("user bug")

        with pytest.raises(ProgramCrash):
            run_program(main)
