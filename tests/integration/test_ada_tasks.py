"""Ada tasking basics: spawn, masters, delays, abort."""

import pytest

from repro.ada import AdaRuntime, TaskAborted
from repro.ada.tasks import AdaTask
from repro.core.config import PTHREAD_CANCELED


def _run(env_body, **kwargs):
    art = AdaRuntime(**kwargs)
    art.main_task(env_body)
    art.run()
    return art


def test_spawn_and_result():
    out = {}

    def worker(ada, n):
        yield ada.pt.work(100)
        return n * 3

    def env(ada):
        t = yield ada.spawn(worker, 14)
        yield ada.await_dependents()
        out["result"] = t.result

    _run(env)
    assert out["result"] == 42


def test_master_awaits_dependents_implicitly():
    """A task body completing does not finish the task until its
    dependents complete (the master rule, applied by the shell)."""
    log = []

    def slow_child(ada):
        yield ada.delay(0.001)
        log.append("child-done")

    def parent(ada):
        yield ada.spawn(slow_child, name="child")
        log.append("parent-body-done")
        # no explicit await: the shell must wait anyway

    def env(ada):
        p = yield ada.spawn(parent, name="parent")
        yield ada.pt.join(p.tcb)
        log.append("parent-joined")

    _run(env)
    assert log == ["parent-body-done", "child-done", "parent-joined"]


def test_delay_advances_time():
    out = {}

    def env(ada):
        start = ada.pt.runtime.world.now_us
        yield ada.delay(0.002)  # 2 ms
        out["elapsed"] = ada.pt.runtime.world.now_us - start

    _run(env)
    assert out["elapsed"] >= 2_000


def test_abort_kills_task_and_its_dependents():
    log = []

    def grandchild(ada):
        yield ada.delay(10.0)
        log.append("grandchild-finished")  # must not happen

    def child(ada):
        yield ada.spawn(grandchild, name="grandchild")
        yield ada.delay(10.0)
        log.append("child-finished")  # must not happen

    def env(ada):
        c = yield ada.spawn(child, name="child")
        yield ada.delay(0.001)
        yield ada.abort(c)
        err, value = yield ada.pt.join(c.tcb)
        log.append(("aborted", value is PTHREAD_CANCELED))

    art = _run(env)
    assert ("aborted", True) in log
    assert "child-finished" not in log
    assert "grandchild-finished" not in log
    # Every thread is gone: the runtime wound down cleanly.
    assert not art.rt.live_threads()


def test_aborted_task_is_completed_for_callers():
    from repro.ada.exceptions import TaskingError

    out = {}

    def server(ada):
        yield ada.delay(10.0)  # never accepts

    def env(ada):
        s = yield ada.spawn(server, name="server")
        yield ada.delay(0.001)
        yield ada.abort(s)
        yield ada.delay(0.001)
        try:
            yield ada.entry_call(s, "ping")
            out["raised"] = False
        except TaskingError:
            out["raised"] = True

    _run(env)
    assert out["raised"]


def test_task_priorities_map_to_thread_priorities():
    order = []

    def worker(ada, tag):
        yield ada.pt.work(1_000)
        order.append(tag)

    def env(ada):
        yield ada.spawn(worker, "low", priority=10, name="low")
        yield ada.spawn(worker, "high", priority=90, name="high")
        yield ada.await_dependents()

    _run(env)
    assert order == ["high", "low"]


def test_unhandled_exception_completes_task_silently():
    """Ada: an unhandled exception in a task body completes the task;
    it does not propagate to other tasks."""
    from repro.ada.exceptions import ConstraintError

    out = {}

    def bad(ada):
        yield ada.pt.work(1)
        raise ConstraintError("boom")

    def env(ada):
        t = yield ada.spawn(bad, name="bad")
        yield ada.pt.join(t.tcb)
        out["env_survived"] = True

    _run(env)
    assert out["env_survived"]
