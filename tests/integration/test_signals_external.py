"""External signals: UNIX delivery, demultiplexing, the two-sigsetmask
budget, pending on the process (delivery-model rule 6)."""

from repro.core.signals import SIG_BLOCK, SIG_UNBLOCK
from repro.unix.sigset import SIGUSR1, SIGUSR2, SigSet
from tests.conftest import make_runtime


def _external(rt, sig, at_us):
    rt.world.schedule_in(
        rt.world.cycles_for_us(at_us),
        lambda: rt.unix.kill(rt.proc, sig),
        name="external-%d" % sig,
    )


def test_external_signal_demultiplexed_to_unmasked_thread():
    hits = []

    def handler(pt, sig):
        me = yield pt.self_id()
        hits.append(me.name)

    def receiver(pt):
        yield pt.work(200_000)

    def main(pt):
        from repro.core.attr import ThreadAttr

        yield pt.sigaction(SIGUSR1, handler)
        # Main masks the signal; only the receiver is eligible
        # (rule 5's linear search).
        yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR1]))
        r = yield pt.create(
            receiver, attr=ThreadAttr(priority=40), name="receiver"
        )
        yield pt.join(r)

    rt = make_runtime()
    rt.main(main, priority=50)
    _external(rt, SIGUSR1, at_us=2_000)
    rt.run()
    assert hits == ["receiver"]


def test_two_sigsetmask_calls_per_external_signal():
    """The paper: "this implementation uses two calls to sigsetmask for
    each signal received by the process"."""

    def handler(pt, sig):
        yield pt.work(1)

    def main(pt):
        yield pt.sigaction(SIGUSR1, handler)
        yield pt.work(400_000)

    rt = make_runtime()
    rt.main(main)
    for i in range(3):
        _external(rt, SIGUSR1, at_us=1_500 * (i + 1))
    before = rt.unix.syscall_counts["sigsetmask"]
    rt.run()
    per_signal = (rt.unix.syscall_counts["sigsetmask"] - before) / 3
    assert per_signal == 2


def test_signal_with_no_eligible_thread_pends_on_process():
    hits = []

    def handler(pt, sig):
        hits.append("ran")
        yield pt.work(1)

    def main(pt):
        yield pt.sigaction(SIGUSR2, handler)
        yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR2]))
        yield pt.work(100_000)  # signal arrives: nobody can take it
        assert not hits
        assert pt.runtime.process_pending
        yield pt.sigmask(SIG_UNBLOCK, SigSet([SIGUSR2]))
        # Unmasking makes us eligible: rule 6's pend is drained.

    rt = make_runtime()
    rt.main(main)
    _external(rt, SIGUSR2, at_us=1_500)
    rt.run()
    assert hits == ["ran"]
    assert not rt.process_pending


def test_interrupted_thread_resumes_through_sigreturn():
    """The interrupted thread returns from the universal handler frame
    when redispatched: the interrupt-frame list must drain."""

    def handler(pt, sig):
        yield pt.work(5)

    def main(pt):
        yield pt.sigaction(SIGUSR1, handler)
        yield pt.work(200_000)

    rt = make_runtime()
    rt.main(main)
    _external(rt, SIGUSR1, at_us=2_000)
    rt.run()
    for tcb in rt.threads.values():
        assert not tcb.pending_interrupt_frames
    assert not rt.proc.interrupt_frames


def test_signal_burst_counts_lost_signals_at_unix_level():
    """Two identical signals racing the single BSD pending slot: the
    second is lost if the first has not been delivered yet."""

    def main(pt):
        yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR1]))
        yield pt.work(50_000)

    rt = make_runtime()
    rt.main(main)
    # Both posted while the process-level mask blocks delivery... the
    # universal handler is installed for SIGUSR1, but the *thread* mask
    # defers it, so the UNIX slot frees quickly.  Use the raw process
    # mask instead to exercise the UNIX-level slot:
    rt.world.schedule_in(
        rt.world.cycles_for_us(100),
        lambda: rt.proc.signals.set_mask(SigSet([SIGUSR1])),
        name="mask",
    )
    _external(rt, SIGUSR1, at_us=200)
    _external(rt, SIGUSR1, at_us=300)
    rt.world.schedule_in(
        rt.world.cycles_for_us(400),
        lambda: rt.proc.signals.discard_pending(SIGUSR1),
        name="drain",
    )
    rt.world.schedule_in(
        rt.world.cycles_for_us(500),
        lambda: rt.proc.signals.set_mask(SigSet()),
        name="unmask",
    )
    rt.run()
    assert rt.proc.signals.lost_signals == 1
