"""Every shipped example must run clean (they are the user's first
contact with the library, and several double as experiment drivers)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in pathlib.Path("examples").glob("*.py")
)

#: Examples that re-measure Table 2 on both machines are slow-ish; all
#: others must finish fast.
TIMEOUTS = {"table2_report.py": 300}


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, "examples/%s" % example],
        capture_output=True,
        text=True,
        timeout=TIMEOUTS.get(example, 120),
        cwd=str(pathlib.Path("examples").resolve().parent),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates something


def test_example_inventory_is_complete():
    """The README promises these examples; keep them in sync."""
    promised = {
        "quickstart.py",
        "table2_report.py",
        "priority_inversion.py",
        "perverted_debugging.py",
        "ada_dining_philosophers.py",
        "io_server.py",
        "thread_debugger.py",
        "rate_monotonic.py",
    }
    assert promised.issubset(set(EXAMPLES))
