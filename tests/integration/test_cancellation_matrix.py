"""Thread cancellation: the paper's Table 1 action matrix and the
interruption-point rules."""

from repro.core import config as cfg
from repro.core.config import (
    PTHREAD_CANCELED,
    PTHREAD_INTR_ASYNCHRONOUS,
    PTHREAD_INTR_CONTROLLED,
    PTHREAD_INTR_DISABLE,
    PTHREAD_INTR_ENABLE,
)
from repro.core.errors import OK
from tests.conftest import run_program


def test_disabled_pends_until_enabled():
    """Table 1 row 1: disabled -> SIGCANCEL pends until enabled."""
    log = []

    def victim(pt):
        yield pt.setintr(PTHREAD_INTR_DISABLE)
        yield pt.setintrtype(PTHREAD_INTR_ASYNCHRONOUS)
        yield pt.work(20_000)
        log.append("survived-while-disabled")
        yield pt.setintr(PTHREAD_INTR_ENABLE)  # acts here (async type)
        log.append("not-reached")

    def main(pt):
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        yield pt.work(1_000)  # victim is lower priority: still pending
        err, value = yield pt.join(t)
        log.append(("exit", value is PTHREAD_CANCELED))

    run_program(main, priority=90)
    assert "survived-while-disabled" in log
    assert "not-reached" not in log
    assert ("exit", True) in log


def test_controlled_pends_until_interruption_point():
    """Table 1 row 2: enabled+controlled -> pends until an
    interruption point is reached."""
    log = []

    def victim(pt):
        yield pt.work(20_000)  # cancel arrives here: keeps running
        log.append("finished-work")
        yield pt.testintr()  # explicit interruption point: dies here
        log.append("not-reached")

    def main(pt):
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        err, value = yield pt.join(t)
        log.append(value is PTHREAD_CANCELED)

    run_program(main, priority=90)
    assert log == ["finished-work", True]


def test_asynchronous_acts_immediately():
    """Table 1 row 3: enabled+asynchronous -> acted upon immediately."""
    log = []

    def victim(pt):
        yield pt.setintrtype(PTHREAD_INTR_ASYNCHRONOUS)
        yield pt.work(1_000_000)  # killed mid-burst
        log.append("not-reached")

    def main(pt):
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        err, value = yield pt.join(t)
        log.append(value is PTHREAD_CANCELED)

    run_program(main, priority=90)
    assert log == [True]


def test_blocked_in_cond_wait_is_an_interruption_point():
    held = {}

    def cleanup(pt, arg):
        mutex, me = arg
        # POSIX: the mutex is reacquired before cleanup handlers run.
        held["in_cleanup"] = mutex.owner is me
        yield pt.mutex_unlock(mutex)

    def victim(pt, m, cv):
        me = yield pt.self_id()
        yield pt.mutex_lock(m)
        yield pt.cleanup_push(cleanup, (m, me))
        yield pt.cond_wait(cv, m)
        held["not_reached"] = True
        yield pt.mutex_unlock(m)

    def main(pt):
        m = yield pt.mutex_init()
        cv = yield pt.cond_init()
        t = yield pt.create(victim, m, cv, name="victim")
        yield pt.delay_us(200)
        yield pt.cancel(t)
        err, value = yield pt.join(t)
        held["cancelled"] = value is PTHREAD_CANCELED
        held["mutex_free"] = m.owner is None

    run_program(main, priority=90)
    assert held == {
        "in_cleanup": True,
        "cancelled": True,
        "mutex_free": True,
    }


def test_mutex_wait_is_not_an_interruption_point():
    """The paper: "a thread cannot be cancelled while in controlled
    interruptibility when it suspends due to mutex contention"."""
    log = []

    def victim(pt, m):
        yield pt.mutex_lock(m)  # blocks; cancel pends here
        log.append("got-mutex")
        yield pt.mutex_unlock(m)
        yield pt.testintr()  # first interruption point after
        log.append("not-reached")

    def main(pt):
        m = yield pt.mutex_init()
        yield pt.mutex_lock(m)
        t = yield pt.create(victim, m, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        yield pt.work(2_000)
        yield pt.mutex_unlock(m)
        err, value = yield pt.join(t)
        log.append(value is PTHREAD_CANCELED)

    run_program(main, priority=90)
    assert log == ["got-mutex", True]


def test_cancel_at_interruption_point_entry():
    """A pending controlled cancel fires when the thread *enters* an
    interruption point, before blocking."""
    log = []

    def victim(pt):
        yield pt.work(10_000)
        log.append("pre-sleep")
        yield pt.delay_us(1_000_000)  # never actually sleeps
        log.append("not-reached")

    def main(pt):
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        err, value = yield pt.join(t)
        log.append(value is PTHREAD_CANCELED)

    run_program(main, priority=90)
    assert log == ["pre-sleep", True]


def test_cancelled_thread_runs_cleanup_handlers_in_lifo_order():
    log = []

    def cleanup(pt, tag):
        log.append(tag)
        yield pt.work(1)

    def victim(pt):
        yield pt.cleanup_push(cleanup, "first-pushed")
        yield pt.cleanup_push(cleanup, "second-pushed")
        yield pt.work(20_000)  # the cancel arrives during this burst
        yield pt.testintr()
        log.append("not-reached")

    def main(pt):
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        yield pt.join(t)

    run_program(main, priority=90)
    assert log == ["second-pushed", "first-pushed"]


def test_setintr_setintrtype_report_old_values():
    out = {}

    def main(pt):
        err, old = yield pt.setintr(PTHREAD_INTR_DISABLE)
        out["old_state"] = old
        err, old = yield pt.setintrtype(PTHREAD_INTR_ASYNCHRONOUS)
        out["old_type"] = old
        err, old = yield pt.setintr(PTHREAD_INTR_ENABLE)
        out["old_state2"] = old

    run_program(main)
    assert out == {
        "old_state": PTHREAD_INTR_ENABLE,
        "old_type": PTHREAD_INTR_CONTROLLED,
        "old_state2": PTHREAD_INTR_DISABLE,
    }


def test_testintr_without_pending_cancel_is_noop():
    out = {}

    def main(pt):
        out["r"] = yield pt.testintr()
        out["alive"] = True

    run_program(main)
    assert out == {"r": OK, "alive": True}


def test_cancellation_masks_other_signals_during_exit():
    """Acting on cancellation disables all other signals for the dying
    thread (the paper's rule)."""
    log = []

    def handler(pt, sig):
        log.append("handler-ran")
        yield pt.work(1)

    def cleanup(pt, arg):
        # Signal sent during cleanup must NOT interrupt the dying
        # thread.
        yield pt.work(40_000)
        log.append("cleanup-done")

    def victim(pt):
        yield pt.cleanup_push(cleanup, None)
        yield pt.work(20_000)
        yield pt.testintr()

    def main(pt):
        from repro.unix.sigset import SIGUSR1

        yield pt.sigaction(SIGUSR1, handler)
        t = yield pt.create(victim, name="victim")
        yield pt.delay_us(100)
        yield pt.cancel(t)
        # Let the victim reach its interruption point and start dying
        # inside the (long) cleanup handler, then signal it.
        yield pt.delay_us(700)
        assert t.exiting or t.state.value == "ready"
        yield pt.kill(t, SIGUSR1)  # lands while it is dying
        yield pt.join(t)

    run_program(main, priority=90)
    assert "cleanup-done" in log
    assert "handler-ran" not in log
