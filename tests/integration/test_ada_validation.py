"""A miniature tasking validation suite (ACVC-flavoured).

The paper reports the Ada runtime on Pthreads "passes validation tests
for tasking".  These scenarios are modelled on the classic ACVC
tasking-chapter shapes: producer/consumer through a buffer task,
server families, dependent-termination order, abort during rendezvous,
and delay accuracy.
"""

from repro.ada import AdaRuntime
from repro.ada.exceptions import TaskingError


def _run(env_body):
    art = AdaRuntime()
    art.main_task(env_body)
    art.run()
    return art


def test_c9_buffer_task_producer_consumer():
    """A bounded buffer implemented as a server task with selective
    wait -- the canonical tasking validation program."""
    consumed = []

    def buffer_task(ada):
        queue = []
        done = [False]
        while not (done[0] and not queue):
            accepts = {}

            def put(pt, item):
                queue.append(item)
                yield pt.work(1)

            def stop(pt):
                done[0] = True
                yield pt.work(1)

            if len(queue) < 3:
                accepts["put"] = put
                accepts["stop"] = stop
            if queue:
                def get(pt):
                    yield pt.work(1)
                    return queue.pop(0)

                accepts["get"] = get
            kind, name, value = yield ada.select(accepts)
        return "buffer-done"

    def producer(ada, buf):
        for i in range(6):
            yield ada.entry_call(buf, "put", i)
        yield ada.entry_call(buf, "stop")

    def consumer(ada, buf):
        for _ in range(6):
            item = yield ada.entry_call(buf, "get")
            consumed.append(item)

    def env(ada):
        buf = yield ada.spawn(buffer_task, name="buffer")
        yield ada.spawn(producer, buf, name="producer")
        yield ada.spawn(consumer, buf, name="consumer")
        yield ada.await_dependents()

    _run(env)
    assert consumed == list(range(6))


def test_c9_server_family_round_robin():
    """Several clients rendezvous with one server; every call is
    served exactly once."""
    served = []

    def server(ada, n):
        for _ in range(n):
            def note(pt, who):
                served.append(who)
                yield pt.work(10)

            yield ada.accept("request", note)

    def client(ada, srv, who):
        yield ada.entry_call(srv, "request", who)

    def env(ada):
        srv = yield ada.spawn(server, 5, name="server")
        for i in range(5):
            yield ada.spawn(client, srv, i, name="client-%d" % i)
        yield ada.await_dependents()

    _run(env)
    assert sorted(served) == [0, 1, 2, 3, 4]


def test_c9_dependent_termination_order():
    """A master completes only after all dependents, transitively."""
    order = []

    def leaf(ada, tag, delay_s):
        yield ada.delay(delay_s)
        order.append(tag)

    def mid(ada):
        yield ada.spawn(leaf, "leaf-slow", 0.004, name="leaf-slow")
        yield ada.spawn(leaf, "leaf-fast", 0.001, name="leaf-fast")
        order.append("mid-body")

    def env(ada):
        m = yield ada.spawn(mid, name="mid")
        yield ada.pt.join(m.tcb)
        order.append("mid-gone")

    _run(env)
    assert order == ["mid-body", "leaf-fast", "leaf-slow", "mid-gone"]


def test_c9_abort_during_entry_wait_releases_caller():
    out = {}

    def dead_server(ada):
        yield ada.delay(10.0)

    def caller(ada, srv):
        try:
            yield ada.entry_call(srv, "never")
            out["returned"] = True
        except TaskingError:
            out["tasking_error"] = True

    def env(ada):
        srv = yield ada.spawn(dead_server, name="server")
        c = yield ada.spawn(caller, srv, name="caller")
        yield ada.delay(0.002)
        yield ada.abort(srv)
        yield ada.pt.join(c.tcb)

    _run(env)
    assert out == {"tasking_error": True}


def test_c9_delay_is_lower_bound():
    """delay suspends for *at least* the given time (Ada RM 9.6)."""
    out = {}

    def env(ada):
        world = ada.pt.runtime.world
        for request in (0.001, 0.0025, 0.004):
            start = world.now_us
            yield ada.delay(request)
            out[request] = world.now_us - start

    _run(env)
    for request, got in out.items():
        assert got >= request * 1e6


def test_c9_tasks_share_global_state_safely_via_rendezvous():
    """State mutated only inside accept bodies needs no extra locks."""
    state = {"total": 0}

    def adder_server(ada, expected_calls):
        for _ in range(expected_calls):
            def add(pt, n):
                state["total"] += n
                yield pt.work(5)

            yield ada.accept("add", add)

    def worker(ada, srv, amount):
        for _ in range(4):
            yield ada.entry_call(srv, "add", amount)

    def env(ada):
        srv = yield ada.spawn(adder_server, 12, name="adder")
        for i in range(3):
            yield ada.spawn(worker, srv, i + 1, name="w%d" % i)
        yield ada.await_dependents()

    _run(env)
    assert state["total"] == 4 * (1 + 2 + 3)
