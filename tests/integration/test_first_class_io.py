"""The first-class kernel/user I/O channel (Open Problems proposal)."""

from repro.core.attr import ThreadAttr
from repro.core.errors import OK
from tests.conftest import make_runtime


def test_fc_read_returns_correct_result():
    out = {}

    def reader(pt):
        out["r"] = yield pt.read(3, 4096)

    def main(pt):
        t = yield pt.create(reader)
        yield pt.join(t)

    rt = make_runtime()
    rt.add_io_device("disk0", latency_us=300.0, first_class=True)
    rt.main(main)
    rt.run()
    assert out["r"] == (OK, 4096)


def test_fc_completions_wake_only_their_requester():
    results = []

    def reader(pt, tag, nbytes):
        err, got = yield pt.read(1, nbytes)
        results.append((tag, got))

    def main(pt):
        a = yield pt.create(reader, "a", 111)
        b = yield pt.create(reader, "b", 222)
        yield pt.join(a)
        yield pt.join(b)

    rt = make_runtime()
    rt.add_io_device("disk0", latency_us=400.0, first_class=True)
    rt.main(main)
    rt.run()
    assert sorted(results) == [("a", 111), ("b", 222)]


def test_fc_completion_inside_kernel_is_deferred_to_dispatcher():
    """A completion landing while the kernel flag is set must queue as
    a deferred upcall and drain through the dispatcher (the monitor
    discipline applies to upcalls too)."""
    out = {}

    def reader(pt):
        out["r"] = yield pt.read(1, 64)

    def main(pt):
        rt = pt.runtime
        t = yield pt.create(reader, attr=ThreadAttr(priority=90))
        # Arrange the completion event to land inside a kernel section:
        # schedule it just after the next kernel entry begins.
        target = rt.world.now + rt.world.cycles_for_us(200.0)
        del target
        yield pt.join(t)
        out["restarts"] = rt.dispatcher.signal_restarts

    rt = make_runtime()
    device = rt.add_io_device("disk0", latency_us=150.0, first_class=True)
    del device
    rt.main(main, priority=50)
    rt.run()
    assert out["r"] == (OK, 64)


def test_fc_wake_ignores_stale_requests():
    """If a handler interrupted the I/O wait (EINTR), the late
    completion's upcall must not corrupt the thread's state."""
    from repro.unix.sigset import SIGUSR1

    out = {}

    def handler(pt, sig):
        yield pt.work(1)

    def reader(pt):
        out["io"] = yield pt.read(1, 64)  # interrupted: EINTR
        yield pt.delay_us(40_000)  # stale completion arrives here
        out["slept"] = True

    def main(pt):
        yield pt.sigaction(SIGUSR1, handler)
        t = yield pt.create(reader, name="reader")
        yield pt.delay_us(100)
        yield pt.kill(t, SIGUSR1)
        yield pt.join(t)

    rt = make_runtime()
    rt.add_io_device("disk0", latency_us=20_000.0, first_class=True)
    rt.main(main)
    rt.run()
    from repro.core.errors import EINTR

    assert out["io"] == EINTR
    assert out["slept"]
    assert rt.terminated_by is None
