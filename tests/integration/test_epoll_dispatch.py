"""Thread-level epoll: park, edge-wake with the one fd, equivalence.

The library layer (:mod:`repro.core.netlib`) over the kernel interest
lists: a blocking ``epoll_wait`` suspends only the calling thread and a
readiness edge completes it with exactly the newly ready descriptor --
O(1), never a scan.  The second half pins the architecture contract:
under the identical offered load the epoll dispatcher serves the exact
same request set as the select dispatcher (same replies, same served
bytes), and in the long-lived high-concurrency regime (the sf1
fixture's shape) it does so with higher throughput and lower latency.
"""

import pytest

from repro.core.errors import EBADF, OK
from repro.net.scenario import run_scenario
from tests.conftest import make_runtime


def _listening(pt, port=80, backlog=8):
    lfd = yield pt.socket()
    err = yield pt.bind(lfd, port)
    assert err == OK
    err = yield pt.listen(lfd, backlog)
    assert err == OK
    return lfd


@pytest.mark.parametrize("first_class", [False, True])
def test_blocked_wait_wakes_with_exactly_the_ready_fd(first_class):
    out = {}

    def dispatcher(pt, lfd):
        epfd = yield pt.epoll_create()
        err = yield pt.epoll_ctl(epfd, "add", lfd)
        assert err == OK
        # Nothing has connected yet: this parks the thread.
        err, ready = yield pt.epoll_wait(epfd)
        assert err == OK
        out["ready"] = ready
        out["woke_at"] = pt.runtime.world.now_us
        err, cfd = yield pt.accept(lfd)
        assert err == OK
        yield pt.close(cfd)
        yield pt.close(epfd)

    def client(pt, port):
        yield pt.work(4000)  # connect well after the dispatcher parked
        fd = yield pt.socket()
        err, got = yield pt.connect(fd, port)
        assert (err, got) == (OK, fd)
        err, eof = yield pt.recv(fd)
        assert (err, eof) == (OK, None)
        yield pt.close(fd)

    def main(pt):
        lfd = yield from _listening(pt)
        srv = yield pt.create(dispatcher, lfd)
        cli = yield pt.create(client, 80)
        yield pt.join(srv)
        yield pt.join(cli)
        yield pt.close(lfd)

    rt = make_runtime()
    stack = rt.add_net_stack(latency_us=40.0, first_class=first_class)
    rt.main(main, priority=100)
    rt.run()
    assert out["ready"] == [3]  # the listener, alone -- never a scan
    assert stack.epoll_wakeups == 1
    if first_class:
        assert stack.fc_completions > 0 and stack.sigio_completions == 0
    else:
        assert stack.sigio_completions > 0 and stack.fc_completions == 0


def test_wait_times_out_on_an_idle_interest_list():
    out = {}

    def main(pt):
        lfd = yield from _listening(pt)
        epfd = yield pt.epoll_create()
        err = yield pt.epoll_ctl(epfd, "add", lfd)
        assert err == OK
        before = pt.runtime.world.now_us
        err, ready = yield pt.epoll_wait(epfd, timeout_us=500.0)
        out["result"] = (err, ready)
        out["waited_us"] = pt.runtime.world.now_us - before
        yield pt.close(epfd)
        yield pt.close(lfd)

    rt = make_runtime()
    rt.add_net_stack(latency_us=40.0)
    rt.main(main, priority=100)
    rt.run()
    assert out["result"] == (OK, [])
    assert out["waited_us"] >= 500.0


def test_zero_timeout_wait_polls_without_blocking():
    out = {}

    def main(pt):
        lfd = yield from _listening(pt)
        epfd = yield pt.epoll_create()
        yield pt.epoll_ctl(epfd, "add", lfd)
        out["poll"] = (yield pt.epoll_wait(epfd, timeout_us=0))
        yield pt.close(epfd)
        yield pt.close(lfd)

    rt = make_runtime()
    rt.add_net_stack(latency_us=40.0)
    rt.main(main, priority=100)
    rt.run()
    assert out["poll"] == (OK, [])


def test_error_returns_follow_posix_shapes():
    out = {}

    def main(pt):
        lfd = yield from _listening(pt)
        epfd = yield pt.epoll_create()
        out["ctl_bad_epfd"] = (yield pt.epoll_ctl(lfd, "add", lfd))
        out["ctl_bad_fd"] = (yield pt.epoll_ctl(epfd, "add", 99))
        out["wait_bad_epfd"] = (yield pt.epoll_wait(lfd))
        out["close"] = (yield pt.close(epfd))
        out["wait_closed"] = (yield pt.epoll_wait(epfd))
        yield pt.close(lfd)

    rt = make_runtime()
    rt.add_net_stack(latency_us=40.0)
    rt.main(main, priority=100)
    rt.run()
    assert out["ctl_bad_epfd"] == EBADF  # a socket is not an epoll fd
    assert out["ctl_bad_fd"] == EBADF
    assert out["wait_bad_epfd"] == (EBADF, [])
    assert out["close"] == OK
    assert out["wait_closed"] == (EBADF, [])  # fd gone from the table


def test_connect_close_churn_recycles_fds_cleanly():
    """Sequential clients churn through the same descriptor slot under
    the epoll dispatcher: every connection is served, nothing stale
    wakes the server for a dead socket, and concurrency never exceeds
    one -- the regression shape for recycled-fd readiness leaks."""
    report = run_scenario(
        arch="epoll",
        clients=40,
        requests_per_client=2,
        arrival="uniform",
        mean_gap_us=4000.0,  # far apart: each conn closes before the next
        think_us=50.0,
        service_cycles=200,
        seed=11,
    )
    assert report.replies == 80
    assert report.refused == 0
    assert report.connections_served == 40
    assert report.peak_clients == 1  # pure churn, never overlap
    # 40 adds for the connections + 1 for the listener (the del after
    # the last accept is the 42nd call).
    assert report.epoll_ctl_calls == 42


def test_epoll_serves_the_same_request_set_as_select():
    """Identical load, identical answers: only the timing may differ."""
    shape = dict(
        clients=200, requests_per_client=3, arrival="poisson",
        mean_gap_us=80.0, think_us=500.0, service_cycles=300, seed=7,
    )
    select_report = run_scenario(arch="select", **shape)
    epoll_report = run_scenario(arch="epoll", **shape)
    # Not peak_clients: concurrency overlap is a *timing* artifact (a
    # faster server drains connections before the next arrives).
    for field in (
        "replies", "refused", "requests_served", "connections_served",
    ):
        assert getattr(select_report, field) == getattr(epoll_report, field)
    assert select_report.replies == 600


def test_epoll_beats_select_at_a_thousand_longlived_clients():
    """The sf1 shape: 1000 concurrently connected clients, eight
    request rounds each.  The watched set is large and mostly idle, so
    select pays O(n) per wakeup while epoll pays O(ready): epoll must
    win throughput and both latency percentiles."""
    shape = dict(
        clients=1000, requests_per_client=8, arrival="poisson",
        mean_gap_us=150.0, think_us=200000.0, service_cycles=100,
        backlog=1000, seed=42,
    )
    select_report = run_scenario(arch="select", **shape)
    epoll_report = run_scenario(arch="epoll", **shape)
    assert select_report.replies == epoll_report.replies == 8000
    assert select_report.peak_clients == epoll_report.peak_clients == 1000
    assert epoll_report.throughput_rps >= select_report.throughput_rps
    assert epoll_report.latency_p50_us < select_report.latency_p50_us
    assert epoll_report.latency_p99_us < select_report.latency_p99_us
