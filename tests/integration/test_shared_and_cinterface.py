"""Cross-process shared mutexes and the C-style interface."""

import pytest

from repro.core import cinterface as c
from repro.core.errors import EDEADLK, OK
from repro.core.shared import (
    SharedArena,
    SharedMutex,
    WAKE_SIGNAL,
    shared_mutex_lock,
    shared_mutex_unlock,
)
from repro.sim.world import World
from repro.unix import process as uproc
from repro.unix.kernel import UnixKernel
from repro.unix.signals import SigAction
from tests.conftest import run_program


class TestSharedMutex:
    def _world(self):
        world = World("sparc-ipx")
        kernel = UnixKernel(world)
        arena = SharedArena(world)
        return world, kernel, arena

    def test_two_processes_exclude_each_other(self):
        world, kernel, arena = self._world()
        mutex = SharedMutex(arena)
        state = {"inside": 0, "violations": 0, "entries": 0}

        def body(proc_holder):
            proc = proc_holder[0]
            for _ in range(3):
                yield from shared_mutex_lock(mutex, proc)
                state["inside"] += 1
                if state["inside"] > 1:
                    state["violations"] += 1
                state["entries"] += 1
                yield uproc.work(500)
                state["inside"] -= 1
                yield from shared_mutex_unlock(mutex, proc)
                yield uproc.work(100)

        holders = [[None], [None]]
        procs = []
        for i, holder in enumerate(holders):
            proc = uproc.UnixProcess(
                kernel, body, name="p%d" % i, args=(holder,)
            )
            holder[0] = proc
            kernel.sigaction(
                proc, WAKE_SIGNAL, SigAction(handler=lambda s, c: None)
            )
            arena.attach(proc)
            procs.append(proc)

        sched = uproc.UnixScheduler(world, kernel)
        for proc in procs:
            sched.add(proc)
        # The scheduler must wake paused waiters on unlock kills.
        sched.run()
        assert state["violations"] == 0
        assert state["entries"] == 6
        assert not mutex.locked

    def test_uncontended_shared_lock_needs_no_syscalls(self):
        world, kernel, arena = self._world()
        mutex = SharedMutex(arena)

        def body(proc_holder):
            proc = proc_holder[0]
            yield from shared_mutex_lock(mutex, proc)
            yield uproc.work(10)
            yield from shared_mutex_unlock(mutex, proc)

        holder = [None]
        proc = uproc.UnixProcess(kernel, body, name="solo", args=(holder,))
        holder[0] = proc
        arena.attach(proc)
        baseline = kernel.total_syscalls
        sched = uproc.UnixScheduler(world, kernel)
        sched.add(proc)
        sched.run()
        assert kernel.total_syscalls == baseline  # the paper's fast path

    def test_unattached_process_rejected(self):
        world, kernel, arena = self._world()
        mutex = SharedMutex(arena)
        proc = uproc.UnixProcess(kernel, None, name="stranger")
        with pytest.raises(RuntimeError):
            list(shared_mutex_lock(mutex, proc))

    def test_unlock_by_non_owner_rejected(self):
        world, kernel, arena = self._world()
        mutex = SharedMutex(arena)
        a = uproc.UnixProcess(kernel, None, name="a")
        b = uproc.UnixProcess(kernel, None, name="b")
        arena.attach(a)
        arena.attach(b)
        list(shared_mutex_lock(mutex, a))
        with pytest.raises(RuntimeError):
            list(shared_mutex_unlock(mutex, b))


class TestCInterface:
    def test_full_c_style_program(self):
        out = {}

        def child(pt, n):
            me = yield c.pthread_self(pt)
            out["child_name"] = me.name
            yield c.pthread_exit(pt, n * 2)

        def main(pt):
            m = yield c.pthread_mutex_init(pt)
            cv = yield c.pthread_cond_init(pt)
            assert (yield c.pthread_mutex_lock(pt, m)) == OK
            assert (yield c.pthread_mutex_lock(pt, m)) == EDEADLK
            assert (yield c.pthread_mutex_unlock(pt, m)) == OK
            t = yield c.pthread_create(pt, child, 21, name="c-child")
            err, value = yield c.pthread_join(pt, t)
            out["join"] = (err, value)
            err, key = yield c.pthread_key_create(pt)
            yield c.pthread_setspecific(pt, key, "tsd")
            out["tsd"] = yield c.pthread_getspecific(pt, key)
            yield c.pthread_cond_destroy(pt, cv)
            yield c.pthread_mutex_destroy(pt, m)

        run_program(main)
        assert out == {
            "child_name": "c-child",
            "join": (OK, 42),
            "tsd": "tsd",
        }

    def test_c_style_cancellation_names(self):
        from repro.core.config import (
            PTHREAD_CANCELED,
            PTHREAD_INTR_DISABLE,
            PTHREAD_INTR_ENABLE,
        )

        log = []

        def victim(pt):
            yield c.pthread_setintr(pt, PTHREAD_INTR_DISABLE)
            yield pt.work(20_000)
            log.append("protected")
            yield c.pthread_setintr(pt, PTHREAD_INTR_ENABLE)
            yield c.pthread_testintr(pt)
            log.append("unreached")

        def main(pt):
            t = yield c.pthread_create(pt, victim, name="victim")
            yield pt.delay_us(100)
            yield c.pthread_cancel(pt, t)
            err, value = yield c.pthread_join(pt, t)
            log.append(value is PTHREAD_CANCELED)

        run_program(main, priority=90)
        assert log == ["protected", True]
