"""Priority-inversion protocols: Figure 5, Table 3 properties, Table 4.

The Figure 5 scenario: low-priority P1 locks a mutex; high-priority P3
preempts and contends; medium-priority P2 is ready.  Without a protocol
P2 starves P3 (inversion).  With inheritance or ceiling, P3 gets the
mutex before P2 runs.
"""

import pytest

from repro.core import config as cfg
from repro.core.attr import MutexAttr, ThreadAttr
from repro.core.errors import EINVAL, OK
from repro.debug.inspector import Timeline
from repro.debug.trace import Tracer
from tests.conftest import make_runtime, run_program


def _figure5(protocol, ceiling=90, config_kwargs=None):
    """Run the Figure 5 scenario; returns (events, runtime, tracer)."""
    events = []
    tracer = Tracer()

    def p1(pt, m):
        yield pt.mutex_lock(m)
        events.append("p1-locked")
        yield pt.work(40_000)
        yield pt.mutex_unlock(m)
        yield pt.work(1_000)
        events.append("p1-done")

    def p2(pt):
        yield pt.work(20_000)
        events.append("p2-done")

    def p3(pt, m):
        events.append("p3-start")
        yield pt.mutex_lock(m)
        events.append("p3-locked")
        yield pt.work(1_000)
        yield pt.mutex_unlock(m)
        events.append("p3-done")

    def main(pt):
        attr = MutexAttr(protocol=protocol, prioceiling=ceiling)
        m = yield pt.mutex_init(attr)
        t1 = yield pt.create(p1, m, attr=ThreadAttr(priority=10), name="P1")
        yield pt.delay_us(50)  # P1 grabs the mutex
        t3 = yield pt.create(p3, m, attr=ThreadAttr(priority=90), name="P3")
        t2 = yield pt.create(p2, attr=ThreadAttr(priority=50), name="P2")
        for t in (t1, t2, t3):
            yield pt.join(t)

    rt = run_program(
        main, priority=120, trace=tracer, **(config_kwargs or {})
    )
    return events, rt, tracer


class TestFigure5:
    def test_no_protocol_inverts(self):
        events, _, __ = _figure5(cfg.PRIO_NONE)
        assert events.index("p2-done") < events.index("p3-locked")

    def test_inheritance_prevents_inversion(self):
        events, _, __ = _figure5(cfg.PRIO_INHERIT)
        assert events.index("p3-locked") < events.index("p2-done")

    def test_ceiling_prevents_inversion(self):
        events, _, __ = _figure5(cfg.PRIO_PROTECT)
        assert events.index("p3-locked") < events.index("p2-done")

    def test_p2_never_runs_while_p3_blocked_under_inheritance(self):
        events, rt, tracer = _figure5(cfg.PRIO_INHERIT)
        timeline = Timeline(tracer, end_time=rt.world.now)
        block = tracer.first("mutex-contention", thread="P3")
        wake = tracer.first("mutex-transfer", to="P3")
        assert block and wake
        assert not timeline.ran_during("P2", block.time, wake.time)

    def test_ceiling_needs_fewer_context_switches(self):
        """The paper: "this protocol tends to require fewer context
        switches than the inheritance protocol"."""
        _, rt_inherit, __ = _figure5(cfg.PRIO_INHERIT)
        _, rt_ceiling, __ = _figure5(cfg.PRIO_PROTECT)
        assert (
            rt_ceiling.dispatcher.context_switches
            <= rt_inherit.dispatcher.context_switches
        )


class TestInheritance:
    def test_owner_boosted_while_contended_and_restored(self):
        prios = {}

        def holder(pt, m, me_box):
            me = yield pt.self_id()
            me_box.append(me)
            yield pt.mutex_lock(m)
            yield pt.work(20_000)
            prios["during"] = me.effective_priority
            yield pt.mutex_unlock(m)
            prios["after"] = me.effective_priority

        def contender(pt, m):
            yield pt.mutex_lock(m)
            yield pt.mutex_unlock(m)

        def main(pt):
            m = yield pt.mutex_init(MutexAttr(protocol=cfg.PRIO_INHERIT))
            box = []
            h = yield pt.create(
                holder, m, box, attr=ThreadAttr(priority=10), name="holder"
            )
            yield pt.delay_us(50)
            c = yield pt.create(
                contender, m, attr=ThreadAttr(priority=80), name="cont"
            )
            yield pt.join(h)
            yield pt.join(c)

        run_program(main, priority=100)
        assert prios["during"] == 80
        assert prios["after"] == 10

    def test_transitive_inheritance_chain(self):
        """T-high blocks on m2 held by T-mid which blocks on m1 held by
        T-low: T-low inherits T-high's priority through the chain."""
        seen = {}

        def low(pt, m1):
            me = yield pt.self_id()
            yield pt.mutex_lock(m1)
            yield pt.work(200_000)  # long critical section (~5 ms)
            seen["low_prio"] = me.effective_priority
            yield pt.mutex_unlock(m1)

        def mid(pt, m1, m2):
            yield pt.mutex_lock(m2)
            yield pt.work(5_000)
            yield pt.mutex_lock(m1)  # blocks on low
            yield pt.mutex_unlock(m1)
            yield pt.mutex_unlock(m2)

        def high(pt, m2):
            yield pt.mutex_lock(m2)  # blocks on mid
            yield pt.mutex_unlock(m2)

        def main(pt):
            attr = MutexAttr(protocol=cfg.PRIO_INHERIT)
            m1 = yield pt.mutex_init(attr)
            m2 = yield pt.mutex_init(attr)
            t_low = yield pt.create(
                low, m1, attr=ThreadAttr(priority=10), name="low"
            )
            yield pt.delay_us(1_000)  # low enters its critical section
            t_mid = yield pt.create(
                mid, m1, m2, attr=ThreadAttr(priority=40), name="mid"
            )
            yield pt.delay_us(1_000)  # mid holds m2, blocks on m1
            t_high = yield pt.create(
                high, m2, attr=ThreadAttr(priority=90), name="high"
            )
            for t in (t_low, t_mid, t_high):
                yield pt.join(t)

        run_program(main, priority=100)
        assert seen["low_prio"] == 90


class TestCeiling:
    def test_lock_boosts_to_ceiling_immediately(self):
        seen = {}

        def locker(pt, m):
            me = yield pt.self_id()
            yield pt.mutex_lock(m)
            seen["during"] = me.effective_priority
            yield pt.mutex_unlock(m)
            seen["after"] = me.effective_priority

        def main(pt):
            m = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_PROTECT, prioceiling=77)
            )
            t = yield pt.create(locker, m, attr=ThreadAttr(priority=20))
            yield pt.join(t)

        run_program(main)
        assert seen == {"during": 77, "after": 20}

    def test_ceiling_violation_is_einval(self):
        out = {}

        def main(pt):
            m = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_PROTECT, prioceiling=30)
            )
            out["err"] = yield pt.mutex_lock(m)

        run_program(main, priority=50)
        assert out["err"] == EINVAL

    def test_set_get_prioceiling(self):
        out = {}

        def main(pt):
            m = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_PROTECT, prioceiling=60)
            )
            out["get"] = yield pt.mutex_getprioceiling(m)
            err, old = yield pt.mutex_setprioceiling(m, 80)
            out["set"] = (err, old)
            out["get2"] = yield pt.mutex_getprioceiling(m)

        run_program(main)
        assert out == {"get": 60, "set": (OK, 60), "get2": 80}

    def test_nested_ceilings_restore_in_lifo_order(self):
        levels = []

        def main(pt):
            me = yield pt.self_id()
            m1 = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_PROTECT, prioceiling=60)
            )
            m2 = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_PROTECT, prioceiling=90)
            )
            yield pt.mutex_lock(m1)
            levels.append(me.effective_priority)
            yield pt.mutex_lock(m2)
            levels.append(me.effective_priority)
            yield pt.mutex_unlock(m2)
            levels.append(me.effective_priority)
            yield pt.mutex_unlock(m1)
            levels.append(me.effective_priority)

        run_program(main, priority=20)
        assert levels == [60, 90, 60, 20]


class TestTable4Mixing:
    """The paper's Table 4: nesting an inheritance mutex inside a
    ceiling mutex makes the two unlock strategies diverge at step 4."""

    def _run(self, mode):
        trace = []

        def pi_thread(pt, inht, ceil, m_ready):
            me = yield pt.self_id()
            yield pt.mutex_lock(inht)  # step 1
            trace.append(("step1", me.effective_priority))
            yield pt.mutex_lock(ceil)  # step 2: ceiling 1... scaled to 40
            trace.append(("step2", me.effective_priority))
            yield pt.work(30_000)  # contender arrives: step 3
            trace.append(("step3", me.effective_priority))
            yield pt.mutex_unlock(ceil)  # step 4: divergence point
            trace.append(("step4", me.effective_priority))
            yield pt.mutex_unlock(inht)  # step 5
            trace.append(("step5", me.effective_priority))

        def contender(pt, inht):
            yield pt.mutex_lock(inht)
            yield pt.mutex_unlock(inht)

        def main(pt):
            inht = yield pt.mutex_init(
                MutexAttr(protocol=cfg.PRIO_INHERIT, name="inht")
            )
            ceil = yield pt.mutex_init(
                MutexAttr(
                    protocol=cfg.PRIO_PROTECT, prioceiling=40, name="ceil"
                )
            )
            t = yield pt.create(
                pi_thread, inht, ceil, None,
                attr=ThreadAttr(priority=10), name="Pi",
            )
            yield pt.delay_us(100)  # Pi holds both mutexes
            c = yield pt.create(
                contender, inht, attr=ThreadAttr(priority=70), name="C"
            )
            yield pt.join(t)
            yield pt.join(c)

        run_program(main, priority=100, mixed_protocol_unlock=mode)
        return dict(trace)

    def test_linear_search_keeps_inheritance_boost(self):
        """The paper's recommendation: a linear search at unlock keeps
        the priority at the contender's level until step 5."""
        trace = self._run("linear-search")
        assert trace["step1"] == 10
        assert trace["step2"] == 40  # ceiling boost
        assert trace["step3"] == 70  # inheritance on top
        assert trace["step4"] == 70  # boost survives the ceiling pop
        assert trace["step5"] == 10

    def test_pure_stack_pop_loses_the_boost(self):
        """Pure SRP popping restores the pre-ceiling level, silently
        dropping the inheritance boost -- the paper's Pc column."""
        trace = self._run("stack")
        assert trace["step3"] == 70
        assert trace["step4"] == 10  # divergence: boost lost
