"""Thread management: create, join, detach, exit, identity."""

import pytest

from repro.core import config as cfg
from repro.core.attr import ThreadAttr
from repro.core.errors import EDEADLK, EINVAL, ESRCH, OK
from repro.core.tcb import ThreadState
from tests.conftest import make_runtime, run_program


def test_create_and_join_returns_value():
    def child(pt, n):
        yield pt.work(10)
        return n + 1

    out = {}

    def main(pt):
        t = yield pt.create(child, 41)
        err, value = yield pt.join(t)
        out["result"] = (err, value)

    run_program(main)
    assert out["result"] == (OK, 42)


def test_join_self_deadlock():
    out = {}

    def main(pt):
        me = yield pt.self_id()
        err, _ = yield pt.join(me)
        out["err"] = err

    run_program(main)
    assert out["err"] == EDEADLK


def test_join_detached_thread_rejected():
    out = {}

    def child(pt):
        yield pt.work(10)

    def main(pt):
        t = yield pt.create(
            child, attr=ThreadAttr(detach_state=cfg.PTHREAD_CREATE_DETACHED)
        )
        err, _ = yield pt.join(t)
        out["err"] = err

    run_program(main)
    assert out["err"] == EINVAL


def test_second_joiner_rejected():
    out = {}

    def sleeper(pt):
        yield pt.delay_us(500)

    def joiner(pt, target):
        err, _ = yield pt.join(target)
        return err

    def main(pt):
        t = yield pt.create(sleeper, name="sleeper")
        j = yield pt.create(joiner, t, name="joiner")
        yield pt.yield_()  # let the first joiner block
        err, _ = yield pt.join(t)
        out["second"] = err
        out["first"] = (yield pt.join(j))[1]

    run_program(main)
    assert out["second"] == EINVAL
    assert out["first"] == OK


def test_detach_then_terminate_reclaims():
    def child(pt):
        yield pt.work(10)

    def main(pt):
        t = yield pt.create(child, name="kid")
        err = yield pt.detach(t)
        assert err == OK
        yield pt.delay_us(200)  # let it finish

    rt = run_program(main)
    kid = [t for t in rt.threads.values() if t.name == "kid"][0]
    assert kid.reclaimed


def test_join_already_terminated_thread():
    out = {}

    def child(pt):
        yield pt.work(5)
        return "done-early"

    def main(pt):
        t = yield pt.create(child)
        yield pt.delay_us(200)  # child completes while we sleep
        err, value = yield pt.join(t)
        out["r"] = (err, value)

    run_program(main)
    assert out["r"] == (OK, "done-early")


def test_joined_thread_is_reclaimed_and_stale():
    out = {}

    def child(pt):
        yield pt.work(1)

    def main(pt):
        t = yield pt.create(child)
        yield pt.join(t)
        err, _ = yield pt.join(t)  # stale handle
        out["again"] = err

    run_program(main)
    assert out["again"] == ESRCH


def test_explicit_exit_value():
    out = {}

    def child(pt):
        yield pt.work(1)
        yield pt.exit("early-exit")
        out["after"] = True  # must not run

    def main(pt):
        t = yield pt.create(child)
        err, value = yield pt.join(t)
        out["value"] = value

    run_program(main)
    assert out["value"] == "early-exit"
    assert "after" not in out


def test_self_and_equal():
    out = {}

    def child(pt, box):
        me = yield pt.self_id()
        box.append(me)
        yield pt.work(1)

    def main(pt):
        box = []
        t = yield pt.create(child, box)
        yield pt.join(t)
        me = yield pt.self_id()
        out["child_saw_itself"] = box[0] is t
        out["self_ne_child"] = not (yield pt.equal(me, t))
        out["self_eq_self"] = yield pt.equal(me, me)

    run_program(main)
    assert out == {
        "child_saw_itself": True,
        "self_ne_child": True,
        "self_eq_self": True,
    }


def test_detach_twice_rejected():
    out = {}

    def child(pt):
        yield pt.delay_us(300)

    def main(pt):
        t = yield pt.create(child)
        yield pt.detach(t)
        out["second"] = yield pt.detach(t)
        # Let the child finish so the run terminates cleanly.
        yield pt.delay_us(500)

    run_program(main)
    assert out["second"] == EINVAL


def test_thread_inherits_creator_sched_when_asked():
    out = {}

    def child(pt):
        me = yield pt.self_id()
        out["prio"] = me.base_priority
        yield pt.work(1)

    def main(pt):
        t = yield pt.create(child, attr=ThreadAttr(inherit_sched=True))
        yield pt.join(t)

    run_program(main, priority=99)
    assert out["prio"] == 99


def test_stack_reuse_through_pool():
    def child(pt):
        yield pt.work(1)

    def main(pt):
        for _ in range(10):
            t = yield pt.create(child)
            yield pt.join(t)

    rt = run_program(main, pool_size=2)
    assert rt.pool.hits >= 9  # recycled after the first round


def test_implicit_exit_equivalent_to_explicit():
    """Returning from the start routine behaves as pthread_exit."""
    out = {}

    def returns(pt):
        yield pt.work(1)
        return "r"

    def exits(pt):
        yield pt.work(1)
        yield pt.exit("e")

    def main(pt):
        t1 = yield pt.create(returns)
        t2 = yield pt.create(exits)
        out["r"] = (yield pt.join(t1))[1]
        out["e"] = (yield pt.join(t2))[1]

    run_program(main)
    assert out == {"r": "r", "e": "e"}
