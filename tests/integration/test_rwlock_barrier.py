"""Reader-writer locks and barriers (compositions over the primitives)."""

from repro.core.barrier import BARRIER_SERIAL_THREAD
from repro.core.errors import EPERM, OK
from tests.conftest import run_program


class TestRwLock:
    def test_readers_share(self):
        state = {"concurrent": 0, "max_concurrent": 0}

        def reader(pt, rw):
            yield pt.rwlock_rdlock(rw)
            state["concurrent"] += 1
            state["max_concurrent"] = max(
                state["max_concurrent"], state["concurrent"]
            )
            yield pt.delay_us(500)  # overlap window
            state["concurrent"] -= 1
            yield pt.rwlock_unlock(rw)

        def main(pt):
            rw = yield pt.rwlock_init()
            threads = []
            for i in range(4):
                threads.append((yield pt.create(reader, rw)))
            for t in threads:
                yield pt.join(t)

        run_program(main)
        assert state["max_concurrent"] == 4

    def test_writer_excludes_everyone(self):
        state = {"writer_in": False, "violation": False}

        def writer(pt, rw):
            yield pt.rwlock_wrlock(rw)
            state["writer_in"] = True
            yield pt.work(10_000)
            state["writer_in"] = False
            yield pt.rwlock_unlock(rw)

        def reader(pt, rw):
            yield pt.rwlock_rdlock(rw)
            if state["writer_in"]:
                state["violation"] = True
            yield pt.work(1_000)
            yield pt.rwlock_unlock(rw)

        def main(pt):
            rw = yield pt.rwlock_init()
            w = yield pt.create(writer, rw)
            readers = []
            for i in range(3):
                readers.append((yield pt.create(reader, rw)))
            yield pt.join(w)
            for t in readers:
                yield pt.join(t)

        run_program(main, timeslice_us=1_000.0)
        assert not state["violation"]

    def test_writer_preference_blocks_new_readers(self):
        order = []

        def long_reader(pt, rw):
            yield pt.rwlock_rdlock(rw)
            order.append("reader1-in")
            yield pt.delay_us(2_000)
            yield pt.rwlock_unlock(rw)

        def writer(pt, rw):
            yield pt.rwlock_wrlock(rw)
            order.append("writer-in")
            yield pt.work(100)
            yield pt.rwlock_unlock(rw)

        def late_reader(pt, rw):
            yield pt.rwlock_rdlock(rw)
            order.append("reader2-in")
            yield pt.rwlock_unlock(rw)

        def main(pt):
            rw = yield pt.rwlock_init()
            a = yield pt.create(long_reader, rw, name="r1")
            yield pt.delay_us(200)
            b = yield pt.create(writer, rw, name="w")
            yield pt.delay_us(200)
            c = yield pt.create(late_reader, rw, name="r2")
            for t in (a, b, c):
                yield pt.join(t)

        run_program(main, priority=100)
        # The late reader arrived while a writer was queued: the writer
        # goes first.
        assert order.index("writer-in") < order.index("reader2-in")

    def test_unlock_without_hold_is_eperm(self):
        out = {}

        def main(pt):
            rw = yield pt.rwlock_init()
            out["err"] = yield pt.rwlock_unlock(rw)

        run_program(main)
        assert out["err"] == EPERM


class TestBarrier:
    def test_all_arrivals_released_together(self):
        log = []

        def worker(pt, barrier, tag):
            yield pt.work(100 * (tag + 1))
            log.append(("before", tag))
            yield pt.barrier_wait(barrier)
            log.append(("after", tag))

        def main(pt):
            barrier = yield pt.barrier_init(3)
            threads = []
            for i in range(3):
                threads.append((yield pt.create(worker, barrier, i)))
            for t in threads:
                yield pt.join(t)

        run_program(main)
        befores = [i for i, e in enumerate(log) if e[0] == "before"]
        afters = [i for i, e in enumerate(log) if e[0] == "after"]
        assert max(befores) < min(afters)

    def test_exactly_one_serial_thread_per_cycle(self):
        results = []

        def worker(pt, barrier):
            for _ in range(3):  # three barrier cycles
                r = yield pt.barrier_wait(barrier)
                results.append(r)

        def main(pt):
            barrier = yield pt.barrier_init(4)
            threads = []
            for i in range(4):
                threads.append((yield pt.create(worker, barrier)))
            for t in threads:
                yield pt.join(t)

        run_program(main)
        assert results.count(BARRIER_SERIAL_THREAD) == 3
        assert results.count(0) == 9

    def test_barrier_is_reusable_across_generations(self):
        snapshots = []

        def worker(pt, barrier, sums, column):
            for step in range(4):
                sums[column] += step
                r = yield pt.barrier_wait(barrier)
                if r == BARRIER_SERIAL_THREAD:
                    # The releasing arrival snapshots the phase: every
                    # column must have completed the same steps.
                    snapshots.append(tuple(sums))
                # Second barrier: nobody mutates until the snapshot is
                # taken.
                yield pt.barrier_wait(barrier)

        def main(pt):
            barrier = yield pt.barrier_init(3)
            sums = [0, 0, 0]
            threads = []
            for i in range(3):
                threads.append((yield pt.create(worker, barrier, sums, i)))
            for t in threads:
                yield pt.join(t)
            assert barrier.cycles_completed == 8

        run_program(main)
        assert snapshots == [(0, 0, 0), (1, 1, 1), (3, 3, 3), (6, 6, 6)]

    def test_bad_count(self):
        from repro.core.errors import EINVAL

        out = {}

        def main(pt):
            out["r"] = yield pt.barrier_init(0)

        run_program(main)
        assert out["r"] == EINVAL
