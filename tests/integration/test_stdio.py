"""The thread-safe stdio layer (reentrancy future-work item)."""

from repro.core.attr import ThreadAttr
from repro.core.config import SCHED_RR
from repro.core.stdio import stdio_puts, stdio_puts_unlocked
from tests.conftest import run_program


def _writer_program(puts_fn, writers=3, lines_each=4):
    """Writers emitting tagged lines concurrently under time slicing."""
    streams = {}

    def writer(pt, stream, tag):
        for i in range(lines_each):
            yield pt.call(puts_fn, stream, "%s%d" % (tag * 6, i))
            yield pt.yield_()

    def main(pt):
        stream = yield pt.lib_raw("stdio_open", "shared-log")
        # Expensive characters: the RR slice lands mid-line, which is
        # exactly when unlocked stdio corrupts its shared buffer.
        stream.char_cost = 30_000
        streams["s"] = stream
        threads = []
        for i in range(writers):
            tag = chr(ord("a") + i)
            threads.append(
                (
                    yield pt.create(
                        writer, stream, tag, name="w-%s" % tag,
                        attr=ThreadAttr(priority=50, policy=SCHED_RR),
                    )
                )
            )
        for t in threads:
            yield pt.join(t)

    run_program(main, timeslice_us=1_000.0)
    return streams["s"]


def _expected(writers=3, lines_each=4):
    out = set()
    for i in range(writers):
        tag = chr(ord("a") + i)
        for n in range(lines_each):
            out.add("%s%d" % (tag * 6, n))
    return out


def test_locked_puts_keeps_lines_atomic():
    stream = _writer_program(stdio_puts)
    lines = stream.drain()
    assert set(lines) == _expected()
    assert len(lines) == 12


def test_unlocked_puts_garbles_concurrent_output():
    """The demonstration that motivates the layer: without flockfile,
    preemption inside the buffer manipulation corrupts lines."""
    stream = _writer_program(stdio_puts_unlocked)
    lines = stream.drain()
    assert set(lines) != _expected()  # interleaved garbage


def test_drain_empties_the_stream():
    stream = _writer_program(stdio_puts, writers=1, lines_each=2)
    assert len(stream.drain()) == 2
    assert stream.drain() == []


def test_independent_streams_do_not_contend():
    outputs = {}

    def writer(pt, stream, tag):
        for i in range(3):
            yield pt.call(stdio_puts, stream, "%s-%d" % (tag, i))

    def main(pt):
        s1 = yield pt.lib_raw("stdio_open", "one")
        s2 = yield pt.lib_raw("stdio_open", "two")
        a = yield pt.create(writer, s1, "x")
        b = yield pt.create(writer, s2, "y")
        yield pt.join(a)
        yield pt.join(b)
        outputs["one"] = s1.drain()
        outputs["two"] = s2.drain()

    run_program(main, timeslice_us=1_000.0)
    assert outputs["one"] == ["x-0", "x-1", "x-2"]
    assert outputs["two"] == ["y-0", "y-1", "y-2"]
