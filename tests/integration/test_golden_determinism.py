"""Golden determinism: host-speed optimizations must not move virtual time.

The host fast paths (cached event horizon, indexed ready queues,
inlined spend, ``__slots__``) are admissible only because simulated
time is bit-identical with and without them.  This test pins that down:
the full Table 2 measurement suite, run on both CPU models, must match
a checked-in snapshot *exactly* -- no tolerances.  If a future host
optimization changes any number here, it changed the simulation, not
just its speed.

Regenerating the snapshot is a deliberate act (a cost-model or
semantics change, never a performance PR):

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.bench.metrics import measure_all
    out = {m: measure_all(m) for m in ("sparc-1+", "sparc-ipx")}
    json.dump(out, open("tests/data/golden_table2.json", "w"), indent=2)
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.bench.metrics as metrics_mod
from repro.bench.metrics import measure_all
from repro.core.config import RuntimeConfig
from repro.core.runtime import PthreadsRuntime
from repro.debug.trace import Tracer
from repro.obs import Observability

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_table2.json"
MODELS = ("sparc-1+", "sparc-ipx")


def _observed_runtime(model: str) -> PthreadsRuntime:
    """``metrics._runtime`` with the full observability stack attached:
    metrics registry, cycle profiler (a clock watcher plus wrapped
    spend paths), and an unbounded tracer.  Virtual time must not
    move by a single cycle."""
    return PthreadsRuntime(
        model=model,
        config=RuntimeConfig(timeslice_us=None, pool_size=8),
        obs=Observability(trace=Tracer()),
    )


def _net_idle_runtime(model: str) -> PthreadsRuntime:
    """``metrics._runtime`` with a network stack attached but idle.

    Attaching the stack is pure construction -- no socket is ever
    created, so the networking subsystem must not move virtual time by
    a single cycle."""
    rt = PthreadsRuntime(
        model=model,
        config=RuntimeConfig(timeslice_us=None, pool_size=8),
    )
    rt.add_net_stack()
    return rt


def _net_idle_observed_runtime(model: str) -> PthreadsRuntime:
    """Idle network stack *and* the full observability stack."""
    rt = _observed_runtime(model)
    rt.add_net_stack()
    return rt


def _explicit_ncpus1_runtime(model: str) -> PthreadsRuntime:
    """``ncpus=1`` passed explicitly: the SMP code path must leave a
    uniprocessor world untouched (``world.smp is None``), so Table 2
    cannot move by a cycle."""
    rt = PthreadsRuntime(
        model=model,
        config=RuntimeConfig(timeslice_us=None, pool_size=8),
        ncpus=1,
    )
    assert rt.world.smp is None
    return rt


@pytest.fixture(
    params=["obs-off", "obs-on", "net-idle", "net-idle-obs-on", "ncpus-1"]
)
def obs_mode(request, monkeypatch):
    """Run the suite bare, observed, and with an idle network stack."""
    runtimes = {
        "obs-on": _observed_runtime,
        "net-idle": _net_idle_runtime,
        "net-idle-obs-on": _net_idle_observed_runtime,
        "ncpus-1": _explicit_ncpus1_runtime,
    }
    if request.param in runtimes:
        monkeypatch.setattr(metrics_mod, "_runtime", runtimes[request.param])
    return request.param


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("model", MODELS)
def test_table2_matches_golden_snapshot(model, golden, obs_mode):
    measured = measure_all(model)
    expected = golden[model]
    assert set(measured) == set(expected), (
        "Table 2 metric set changed: %s"
        % sorted(set(measured) ^ set(expected))
    )
    mismatches = {
        name: (measured[name], expected[name])
        for name in expected
        if measured[name] != expected[name]
    }
    assert not mismatches, (
        "virtual-time results diverged from the golden snapshot "
        "(mode=%s; got, expected): %r -- a host-speed or observability "
        "change altered simulated timing; see the module docstring "
        "before regenerating" % (obs_mode, mismatches)
    )


@pytest.mark.parametrize("model", MODELS)
def test_table2_repeatable_within_process(model, obs_mode):
    """Two in-process runs agree exactly (no hidden global state)."""
    assert measure_all(model) == measure_all(model)
