"""Edge cases across subsystems: errno, run bounds, termination,
mixed-priority slicing, I/O variants, longjmp out of handlers."""

import pytest

from repro.core.attr import ThreadAttr
from repro.core.errors import EINTR, OK
from repro.sim.world import DeadlockError
from repro.unix.sigset import SIGTERM, SIGUSR1
from tests.conftest import make_runtime, run_program


class TestErrno:
    def test_errno_is_per_thread_across_switches(self):
        seen = {}

        def setter(pt, value, tag):
            yield pt.set_errno(value)
            yield pt.yield_()  # give the other thread the CPU
            yield pt.yield_()
            seen[tag] = yield pt.get_errno()

        def main(pt):
            a = yield pt.create(setter, 11, "a")
            b = yield pt.create(setter, 22, "b")
            yield pt.join(a)
            yield pt.join(b)

        run_program(main)
        assert seen == {"a": 11, "b": 22}

    def test_dispatcher_loads_unix_errno(self):
        out = {}

        def child(pt):
            yield pt.set_errno(42)
            yield pt.yield_()
            out["unix_errno_while_running"] = pt.runtime.unix_errno

        def main(pt):
            t = yield pt.create(child)
            yield pt.join(t)

        run_program(main)
        assert out["unix_errno_while_running"] == 42


class TestRunBounds:
    def test_until_us_stops_early(self):
        def main(pt):
            yield pt.work(10_000_000)

        rt = make_runtime()
        rt.main(main)
        rt.run(until_us=1_000)
        assert rt.world.now_us >= 1_000
        assert rt.world.now_us < 5_000
        assert rt.live_threads()  # unfinished, as requested

    def test_max_steps_stops(self):
        def main(pt):
            while True:
                yield pt.yield_()

        rt = make_runtime()
        rt.main(main)
        rt.run(max_steps=50)
        assert rt.steps == 50

    def test_run_resumable_after_bound(self):
        out = {}

        def main(pt):
            yield pt.work(100_000)
            out["done"] = True

        rt = make_runtime()
        rt.main(main)
        rt.run(until_us=500)
        assert "done" not in out
        rt.run()  # resume to completion
        assert out["done"]


class TestProcessTermination:
    def test_default_action_stops_the_whole_run(self):
        progressed = []

        def other(pt):
            yield pt.delay_us(50_000)
            progressed.append(True)

        def main(pt):
            yield pt.create(other)
            yield pt.work(1_000)
            me = yield pt.self_id()
            yield pt.kill(me, SIGTERM)  # no handler: process dies
            progressed.append("after-kill")

        rt = run_program(main)
        assert rt.terminated_by == SIGTERM
        assert progressed == []

    def test_handled_sigterm_does_not_terminate(self):
        log = []

        def handler(pt, sig):
            log.append("handled")
            yield pt.work(1)

        def main(pt):
            yield pt.sigaction(SIGTERM, handler)
            me = yield pt.self_id()
            yield pt.kill(me, SIGTERM)
            log.append("survived")

        rt = run_program(main)
        assert rt.terminated_by is None
        assert log == ["handled", "survived"]


class TestSlicingEdges:
    def test_rr_and_fifo_threads_coexist(self):
        """Only RR threads are sliced; a FIFO thread at the same
        priority runs to completion once scheduled."""
        from repro.core.config import SCHED_FIFO, SCHED_RR

        order = []

        def worker(pt, tag, burst):
            yield pt.work(burst)
            order.append(tag)

        def main(pt):
            burst = pt.runtime.world.cycles_for_us(50_000)
            rr = ThreadAttr(priority=50, policy=SCHED_RR)
            fifo = ThreadAttr(priority=50, policy=SCHED_FIFO)
            a = yield pt.create(worker, "rr1", burst, attr=rr)
            b = yield pt.create(worker, "fifo", burst, attr=fifo)
            c = yield pt.create(worker, "rr2", burst, attr=rr)
            for t in (a, b, c):
                yield pt.join(t)

        run_program(main, timeslice_us=5_000.0, priority=90)
        assert sorted(order) == ["fifo", "rr1", "rr2"]

    def test_slice_of_idle_system_is_harmless(self):
        def main(pt):
            yield pt.delay_us(100_000)  # several quanta pass idle

        rt = run_program(main, timeslice_us=10_000.0)
        assert rt.terminated_by is None


class TestIoVariants:
    def test_write_and_random_latency_device(self):
        results = []

        def writer(pt, n):
            err, nbytes = yield pt.write(5, n)
            results.append((err, nbytes))

        def main(pt):
            threads = []
            for i in range(4):
                threads.append((yield pt.create(writer, 100 * (i + 1))))
            for t in threads:
                yield pt.join(t)

        rt = make_runtime(seed=7)
        rt.add_io_device("disk0", latency_us=400.0, deterministic=False)
        rt.main(main)
        rt.run()
        assert sorted(results) == [
            (OK, 100), (OK, 200), (OK, 300), (OK, 400)
        ]

    def test_io_interrupted_by_handler_gets_eintr(self):
        out = {}

        def handler(pt, sig):
            yield pt.work(1)

        def reader(pt):
            out["r"] = yield pt.read(1, 64)

        def main(pt):
            yield pt.sigaction(SIGUSR1, handler)
            t = yield pt.create(reader, name="reader")
            yield pt.delay_us(100)
            yield pt.kill(t, SIGUSR1)
            yield pt.join(t)

        rt = make_runtime()
        rt.add_io_device("disk0", latency_us=50_000.0)
        rt.main(main)
        rt.run()
        assert out["r"] == EINTR


class TestLongjmpFromHandler:
    def test_handler_redirect_plus_longjmp_unwinds_interrupted_code(self):
        """The Ada pattern end to end at the Pthreads level: a handler
        redirects to a routine that longjmps out of the interrupted
        computation."""
        log = []

        def escape(pt, buf):
            yield pt.longjmp(buf, "escaped")

        def handler(pt, sig):
            yield pt.sig_redirect(escape, log_buf[0])

        log_buf = [None]

        def interrupted_body(pt):
            yield pt.work(1_000_000)
            log.append("not-reached")

        def main(pt):
            me = yield pt.self_id()
            yield pt.sigaction(SIGUSR1, handler)
            buf = yield pt.jmp_buf()
            log_buf[0] = buf

            def body(pt2):
                # Signal ourselves mid-computation.
                yield pt2.kill(me, SIGUSR1)
                yield pt2.work(1_000_000)
                log.append("not-reached-either")

            jumped, value = yield pt.setjmp_block(buf, body)
            log.append((jumped, value))

        run_program(main)
        assert log == [(True, "escaped")]


class TestDeadlockMessage:
    def test_deadlock_error_names_the_wait_kinds(self):
        def main(pt):
            m = yield pt.mutex_init()
            cv = yield pt.cond_init()
            yield pt.mutex_lock(m)
            yield pt.cond_wait(cv, m)  # nobody will ever signal

        with pytest.raises(DeadlockError) as info:
            run_program(main)
        assert "cond" in str(info.value)
        assert "main" in str(info.value)


class TestLivelockDetection:
    def test_all_blocked_with_recurring_slicer_raises_deadlock(self):
        """With the time slicer rearming forever, a true deadlock must
        still be detected (not spin silently)."""
        from repro.sim.world import DeadlockError

        def main(pt):
            m = yield pt.mutex_init()
            cv = yield pt.cond_init()
            yield pt.mutex_lock(m)
            yield pt.cond_wait(cv, m)  # nobody will signal

        with pytest.raises(DeadlockError):
            run_program(main, timeslice_us=1_000.0)


class TestProcessPendRecheck:
    def test_new_thread_drains_process_pended_signal(self):
        """Rule 6: a signal pended on the process is delivered when a
        newly created thread becomes eligible."""
        from repro.core.signals import SIG_BLOCK
        from repro.unix.sigset import SIGUSR2, SigSet

        hits = []

        def handler(pt, sig):
            me = yield pt.self_id()
            hits.append(me.name)

        def open_armed(pt):
            yield pt.work(5_000)

        def main(pt):
            me = yield pt.self_id()
            yield pt.sigaction(SIGUSR2, handler)
            yield pt.sigmask(SIG_BLOCK, SigSet([SIGUSR2]))
            yield pt.kill(me, SIGUSR2)
            # Masked by us and directed at us: it pends on the thread,
            # so use the process route instead:
            pt.runtime.process_pending.append(
                (SIGUSR2, __import__(
                    "repro.unix.signals", fromlist=["SigCause"]
                ).SigCause(kind="external"))
            )
            t = yield pt.create(open_armed, name="fresh")
            yield pt.join(t)

        run_program(main)
        assert "fresh" in hits
